"""Smoke test for the saturation load harness (``--serve-load``).

One tiny single-stage run against a real server: slow-ish (~2 s) but
it is the only guard that the CI ``serve-load-smoke`` job's whole path
— harness, schema-4 report section, registry-gateable phase entries —
keeps working.
"""

from __future__ import annotations

from repro.bench import run_bench
from repro.bench.serve import format_serve_load, run_serve_load


def test_run_serve_load_single_stage_smoke():
    section = run_serve_load(
        clients=3, duration=0.5, worker_counts=[1],
        length=2_000, warm_pool=2,
    )
    assert section["worker_counts"] == [1]
    (stage,) = section["stages"]
    assert stage["workers"] == 1
    assert stage["completed"] > 0
    assert stage["failed"] == 0
    assert stage["uops"] > 0
    assert stage["requests_per_sec"] > 0
    assert stage["p50_ms"] is not None
    assert stage["p99_ms"] >= stage["p50_ms"]
    assert stage["speedup"] == 1.0
    # Error/backpressure counters are always present (zero or not).
    for counter in ("retries", "rejected_429", "server_failed"):
        assert stage[counter] >= 0
    rendered = format_serve_load(section)
    assert "w=1" in rendered
    assert "p99" in rendered


def test_run_bench_serve_load_phase_entries():
    report = run_bench(
        quick=True, phases=["serve_load"],
        load_clients=2, load_duration=0.4, load_workers=[1],
    )
    assert report["schema"] == 4
    assert "serve_load" in report
    assert set(report["phases"]) == {"serve_load_w1"}
    phase = report["phases"]["serve_load_w1"]
    # The perf registry ingests any phase with uops_per_sec; the wide
    # embedded tolerance keeps the gate sane on noisy saturation runs.
    assert phase["uops_per_sec"] > 0
    assert 0.0 < phase["tolerance"] < 1.0
