"""Tests for the ``repro bench`` harness and its regression gate."""

import json
import subprocess

import pytest

from repro.bench import (
    compare_to_baseline,
    format_report,
    resolve_phases,
    run_bench,
    write_report,
)
from repro.bench.harness import _git_rev
from repro.harness.runner import FRONTEND_KINDS


def _tiny_report(**kwargs):
    return run_bench(budget=3_000, quick=True, frontends=["xbc"], **kwargs)


class TestRunBench:
    def test_report_shape(self):
        report = _tiny_report()
        assert report["schema"] == 4
        assert report["quick"] is True
        # Schema 3: every report is stamped with a UTC ISO timestamp.
        assert "T" in report["timestamp"]
        assert report["timestamp"].endswith("+00:00")
        assert report["calibration_ops_per_sec"] > 0
        phases = report["phases"]
        assert set(phases) == {"trace_gen", "frontend_xbc"}
        assert report["phase_list"] == list(phases)
        assert "cpu_affinity" in report  # int on Linux, None elsewhere
        for phase in phases.values():
            assert phase["seconds"] > 0
            assert phase["uops_per_sec"] > 0
            assert phase["uops"] > 0

    def test_phases_filter_drops_trace_gen_timing(self):
        report = _tiny_report(phases=["xbc"])
        assert set(report["phases"]) == {"frontend_xbc"}
        assert report["phase_list"] == ["frontend_xbc"]

    def test_phases_filter_trace_gen_only(self):
        report = _tiny_report(phases=["trace_gen"])
        assert set(report["phases"]) == {"trace_gen"}

    def test_write_and_format(self, tmp_path):
        report = _tiny_report()
        path = write_report(report, str(tmp_path))
        assert path.endswith(f"BENCH_{report['rev']}.json")
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == report
        rendered = format_report(report)
        assert "trace_gen" in rendered
        assert "frontend_xbc" in rendered

    def test_write_report_records_into_registry(self, tmp_path):
        """``write_report(..., registry_dir=...)`` also extends the
        perf registry (the `repro bench --registry` path)."""
        from repro.perf.registry import PerfRegistry

        report = {
            "schema": 3,
            "rev": "abc1234",
            "calibration_ops_per_sec": 5e6,
            "phases": {"frontend_xbc": {
                "seconds": 0.5, "uops": 450_000,
                "uops_per_sec": 900_000.0,
            }},
        }
        registry_dir = str(tmp_path / "registry")
        write_report(report, str(tmp_path), registry_dir=registry_dir)
        registry = PerfRegistry(registry_dir)
        assert registry.revs() == ["abc1234"]
        entry = registry.load("abc1234")
        assert entry["phases"]["frontend_xbc"]["calibrated"] == \
            pytest.approx(900_000.0 / 5e6)


class TestGitRev:
    """The dirty-tree marker: registry entries must never attribute
    numbers from a modified working tree to the clean rev."""

    @pytest.fixture
    def git_repo(self, tmp_path, monkeypatch):
        def git(*argv):
            subprocess.run(
                ["git", *argv], cwd=str(tmp_path), check=True,
                capture_output=True,
            )

        git("init", "-q")
        git("config", "user.email", "bench@test")
        git("config", "user.name", "bench")
        (tmp_path / "file.txt").write_text("v1\n")
        git("add", "file.txt")
        git("commit", "-q", "-m", "seed")
        monkeypatch.chdir(tmp_path)
        return tmp_path

    def test_clean_tree_plain_rev(self, git_repo):
        rev = _git_rev()
        assert rev != "unknown"
        assert not rev.endswith("-dirty")

    def test_uncommitted_change_appends_dirty(self, git_repo):
        (git_repo / "file.txt").write_text("v2\n")
        assert _git_rev().endswith("-dirty")

    def test_untracked_file_appends_dirty(self, git_repo):
        (git_repo / "new.txt").write_text("x\n")
        assert _git_rev().endswith("-dirty")

    def test_outside_a_repo_is_unknown(self, tmp_path, monkeypatch):
        outside = tmp_path / "not-a-repo"
        outside.mkdir()
        monkeypatch.chdir(outside)
        assert _git_rev() == "unknown"


class TestResolvePhases:
    def test_default_runs_everything(self):
        time_gen, kinds, load = resolve_phases(None)
        assert time_gen is True
        assert kinds == list(FRONTEND_KINDS)
        # serve_load is opt-in: it stands up real server processes.
        assert load is False

    def test_subset_selection(self):
        time_gen, kinds, load = resolve_phases(["tc", "dc"])
        assert time_gen is False
        assert kinds == ["dc", "tc"]  # registry order, not request order
        assert load is False

    def test_trace_gen_token(self):
        time_gen, kinds, _ = resolve_phases(["trace_gen", "ic"])
        assert time_gen is True
        assert kinds == ["ic"]

    def test_serve_load_token(self):
        time_gen, kinds, load = resolve_phases(["serve_load"])
        assert time_gen is False
        assert kinds == []
        assert load is True

    def test_serve_load_combines_with_sim_phases(self):
        time_gen, kinds, load = resolve_phases(["serve_load", "xbc"])
        assert time_gen is False
        assert kinds == ["xbc"]
        assert load is True

    def test_intersects_legacy_frontend_filter(self):
        _, kinds, _ = resolve_phases(["tc", "dc"], frontends=["dc", "xbc"])
        assert kinds == ["dc"]

    def test_whitespace_and_empty_tokens_ignored(self):
        time_gen, kinds, _ = resolve_phases([" tc ", ""])
        assert time_gen is False
        assert kinds == ["tc"]

    def test_unknown_token_raises(self):
        with pytest.raises(ValueError, match="unknown bench phase"):
            resolve_phases(["tc", "bogus"])

    def test_unknown_token_error_lists_valid_tokens(self):
        """The error must name every valid phase so a typo'd --phases
        cannot silently bench an unintended subset."""
        with pytest.raises(ValueError) as excinfo:
            resolve_phases(["bogus"])
        message = str(excinfo.value)
        assert "bogus" in message
        for token in ("trace_gen", "serve_load") + tuple(FRONTEND_KINDS):
            assert token in message


class TestRegressionGate:
    def _fake(self, ups, calibration):
        return {
            "calibration_ops_per_sec": calibration,
            "phases": {"frontend_xbc": {"uops_per_sec": ups}},
        }

    def test_equal_reports_pass(self):
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(1000.0, 5e6), base) == []

    def test_within_tolerance_passes(self):
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(750.0, 5e6), base) == []

    def test_regression_fails(self):
        base = self._fake(1000.0, 5e6)
        failures = compare_to_baseline(self._fake(600.0, 5e6), base)
        assert len(failures) == 1
        assert "frontend_xbc" in failures[0]

    def test_calibration_rescales_slow_machine(self):
        """Half-speed machine at half throughput is NOT a regression."""
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(500.0, 2.5e6), base) == []

    def test_calibration_exposes_real_regression(self):
        """Same machine speed, halved throughput IS a regression."""
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(500.0, 5e6), base) != []

    def test_per_phase_tolerance_override_relaxes(self):
        """A baseline phase's own tolerance key widens its band."""
        base = self._fake(1000.0, 5e6)
        base["phases"]["frontend_xbc"]["tolerance"] = 0.50
        assert compare_to_baseline(self._fake(600.0, 5e6), base) == []

    def test_per_phase_tolerance_override_tightens(self):
        base = self._fake(1000.0, 5e6)
        base["phases"]["frontend_xbc"]["tolerance"] = 0.05
        failures = compare_to_baseline(self._fake(900.0, 5e6), base)
        assert failures and "tolerance 5%" in failures[0]

    def test_missing_phase_fails(self):
        base = self._fake(1000.0, 5e6)
        report = {"calibration_ops_per_sec": 5e6, "phases": {}}
        failures = compare_to_baseline(report, base)
        assert failures and "missing" in failures[0]
