"""Tests for the ``repro bench`` harness and its regression gate."""

import json

from repro.bench import (
    compare_to_baseline,
    format_report,
    run_bench,
    write_report,
)


def _tiny_report():
    return run_bench(budget=3_000, quick=True, frontends=["xbc"])


class TestRunBench:
    def test_report_shape(self):
        report = _tiny_report()
        assert report["schema"] == 1
        assert report["quick"] is True
        assert report["calibration_ops_per_sec"] > 0
        phases = report["phases"]
        assert set(phases) == {"trace_gen", "frontend_xbc"}
        for phase in phases.values():
            assert phase["seconds"] > 0
            assert phase["uops_per_sec"] > 0
            assert phase["uops"] > 0

    def test_write_and_format(self, tmp_path):
        report = _tiny_report()
        path = write_report(report, str(tmp_path))
        assert path.endswith(f"BENCH_{report['rev']}.json")
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == report
        rendered = format_report(report)
        assert "trace_gen" in rendered
        assert "frontend_xbc" in rendered


class TestRegressionGate:
    def _fake(self, ups, calibration):
        return {
            "calibration_ops_per_sec": calibration,
            "phases": {"frontend_xbc": {"uops_per_sec": ups}},
        }

    def test_equal_reports_pass(self):
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(1000.0, 5e6), base) == []

    def test_within_tolerance_passes(self):
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(750.0, 5e6), base) == []

    def test_regression_fails(self):
        base = self._fake(1000.0, 5e6)
        failures = compare_to_baseline(self._fake(600.0, 5e6), base)
        assert len(failures) == 1
        assert "frontend_xbc" in failures[0]

    def test_calibration_rescales_slow_machine(self):
        """Half-speed machine at half throughput is NOT a regression."""
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(500.0, 2.5e6), base) == []

    def test_calibration_exposes_real_regression(self):
        """Same machine speed, halved throughput IS a regression."""
        base = self._fake(1000.0, 5e6)
        assert compare_to_baseline(self._fake(500.0, 5e6), base) != []

    def test_missing_phase_fails(self):
        base = self._fake(1000.0, 5e6)
        report = {"calibration_ops_per_sec": 5e6, "phases": {}}
        failures = compare_to_baseline(report, base)
        assert failures and "missing" in failures[0]
