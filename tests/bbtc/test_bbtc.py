"""Tests for the block-based trace cache."""

import pytest

from repro.bbtc.config import BbtcConfig
from repro.bbtc.frontend import BbtcFrontend
from repro.common.errors import ConfigError
from repro.frontend.config import FrontendConfig


class TestConfig:
    def test_default_validates(self):
        BbtcConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(block_uops=1),
            dict(total_uops=1000),
            dict(table_entries=100, table_assoc=8),
            dict(blocks_per_trace=0),
            dict(max_cond_branches=0),
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            BbtcConfig(**kwargs).validate()

    def test_num_sets(self):
        config = BbtcConfig(total_uops=4096, block_uops=8, assoc=4)
        assert config.num_sets == 128


class TestFrontend:
    @pytest.fixture(scope="class")
    def stats(self, medium_trace):
        frontend = BbtcFrontend(FrontendConfig(), BbtcConfig(total_uops=4096))
        return frontend.run(medium_trace)

    def test_uop_conservation(self, stats, medium_trace):
        assert stats.total_uops == medium_trace.total_uops
        assert stats.retired_uops == medium_trace.total_uops

    def test_delivery_engages(self, stats):
        assert stats.uops_from_structure > 0
        assert stats.switches_to_delivery > 0

    def test_miss_rate_sane(self, stats):
        assert 0.0 < stats.uop_miss_rate < 0.8

    def test_bigger_cache_better(self, medium_trace):
        small = BbtcFrontend(
            FrontendConfig(), BbtcConfig(total_uops=1024)
        ).run(medium_trace)
        large = BbtcFrontend(
            FrontendConfig(), BbtcConfig(total_uops=16384)
        ).run(medium_trace)
        assert large.uop_miss_rate < small.uop_miss_rate

    def test_all_suites_conserve(self, suite_traces):
        for suite, trace in suite_traces.items():
            stats = BbtcFrontend(
                FrontendConfig(), BbtcConfig(total_uops=4096)
            ).run(trace)
            assert stats.total_uops == trace.total_uops, suite
