"""Tests for the findings corpus and bit-identical replay."""

import json

import pytest

from repro.common.errors import ConfigError
from repro.exec.engine import ExecPolicy
from repro.scenario.findings import (
    CORPUS_SCHEMA,
    Finding,
    FindingsCorpus,
    corpus_from_run,
    replay_finding,
)
from repro.scenario.minimize import MinimizeResult
from repro.scenario.search import (
    FuzzConfig,
    evaluate_point,
    fuzz_program_seed,
)
from repro.scenario.space import ParameterSpace


def _synthetic_finding(ident, objective=0.1, base="server-web"):
    return Finding(
        id=ident,
        base=base,
        point={"static_uops": 2101.0},
        deltas={"static_uops": 2101.0},
        program_seed=7932,
        length_uops=40_000,
        total_uops=8192,
        tc_hit_rate=0.9,
        xbc_hit_rate=0.9 - objective,
        objective=objective,
        trace_hash="t" + ident,
        trace_uops=1,
        trace_instructions=1,
        tc_stats_hash="tc" + ident,
        xbc_stats_hash="xbc" + ident,
    )


# -- corpus container --------------------------------------------------------


def test_add_dedups_and_sorts():
    corpus = FindingsCorpus()
    assert corpus.add(_synthetic_finding("aa", objective=0.05))
    assert corpus.add(_synthetic_finding("bb", objective=0.20))
    assert not corpus.add(_synthetic_finding("aa", objective=0.99))
    assert [f.id for f in corpus.findings] == ["bb", "aa"]
    assert [f.id for f in corpus.top(1)] == ["bb"]


def test_get_by_prefix():
    corpus = FindingsCorpus()
    corpus.add(_synthetic_finding("abc123"))
    corpus.add(_synthetic_finding("abd456"))
    assert corpus.get("abc").id == "abc123"
    with pytest.raises(ConfigError):
        corpus.get("ab")  # ambiguous
    with pytest.raises(ConfigError):
        corpus.get("zz")  # absent


def test_save_load_roundtrip(tmp_path):
    corpus = FindingsCorpus(meta={"seed": 1})
    corpus.add(_synthetic_finding("aa"))
    corpus.add(_synthetic_finding("bb", objective=0.3))
    path = str(tmp_path / "corpus.json")
    corpus.save(path)
    loaded = FindingsCorpus.load(path)
    assert loaded.meta == {"seed": 1}
    assert loaded.findings == corpus.findings


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "corpus.json"
    path.write_text(json.dumps(
        {"schema": CORPUS_SCHEMA + 1, "meta": {}, "findings": []}
    ))
    with pytest.raises(ConfigError):
        FindingsCorpus.load(str(path))


def test_load_rejects_garbage(tmp_path):
    path = tmp_path / "corpus.json"
    path.write_text("not json{")
    with pytest.raises(ConfigError):
        FindingsCorpus.load(str(path))
    with pytest.raises(ConfigError):
        FindingsCorpus.load(str(tmp_path / "missing.json"))


def test_corpus_from_run_metadata():
    config = FuzzConfig(budget=5, seed=9, base="server-oltp")
    corpus = corpus_from_run(config, [])
    assert corpus.meta["base"] == "server-oltp"
    assert corpus.meta["seed"] == 9
    assert corpus.meta["budget"] == 5
    assert corpus.findings == []


# -- real replay -------------------------------------------------------------


@pytest.fixture(scope="module")
def pinned_evaluation():
    """The known single-delta inversion, evaluated once per module."""
    space = ParameterSpace.default("server-web")
    point = space.point_from_base()
    point["static_uops"] = 2_101.0
    return evaluate_point(
        space, point,
        program_seed=fuzz_program_seed(1),
        total_uops=8192,
        length_uops=40_000,
    )


def test_finding_id_is_recipe_stable(pinned_evaluation):
    first = Finding.from_evaluation(pinned_evaluation, "server-web")
    second = Finding.from_evaluation(
        pinned_evaluation, "server-web", deltas={"static_uops": 2101.0}
    )
    # Deltas annotate a finding; the replay recipe (and so the id) is
    # the point itself.
    assert first.id == second.id
    assert first.objective > 0.02


def test_replay_is_bit_identical(pinned_evaluation):
    finding = Finding.from_evaluation(pinned_evaluation, "server-web")
    report = replay_finding(finding)
    assert report.ok, report.mismatches
    assert report.evaluation.tc.uop_hit_rate == finding.tc_hit_rate
    assert report.evaluation.xbc.uop_hit_rate == finding.xbc_hit_rate


def test_replay_through_cold_disk_cache(tmp_path, pinned_evaluation):
    # A cache-backed replay (fresh cache directory, so the first pass
    # populates and a second pass hits) must verify the same hashes.
    finding = Finding.from_evaluation(pinned_evaluation, "server-web")
    policy = ExecPolicy(use_cache=True, cache_dir=str(tmp_path))
    assert replay_finding(finding, policy=policy).ok
    assert replay_finding(finding, policy=policy).ok


def test_replay_roundtrips_through_json(tmp_path, pinned_evaluation):
    finding = Finding.from_evaluation(pinned_evaluation, "server-web")
    corpus = FindingsCorpus()
    corpus.add(finding)
    path = str(tmp_path / "corpus.json")
    corpus.save(path)
    loaded = FindingsCorpus.load(path).get(finding.id)
    assert replay_finding(loaded).ok


def test_replay_detects_tampering(pinned_evaluation):
    finding = Finding.from_evaluation(pinned_evaluation, "server-web")
    finding.trace_hash = "0" * len(finding.trace_hash)
    finding.xbc_hit_rate += 1e-6
    report = replay_finding(finding)
    assert not report.ok
    names = {m.split(":")[0] for m in report.mismatches}
    assert names == {"trace_hash", "xbc_hit_rate"}
