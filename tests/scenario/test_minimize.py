"""Tests for finding minimization."""

from types import SimpleNamespace

import pytest

import repro.scenario.minimize as minimize_mod
from repro.common.errors import ConfigError
from repro.scenario.minimize import minimize_evaluation
from repro.scenario.search import FuzzConfig
from repro.scenario.space import ParameterSpace


def _stub_evaluation(point, objective):
    return SimpleNamespace(
        point=dict(point),
        objective=objective,
        spec=SimpleNamespace(seed=7932, length_uops=6_000),
    )


def _patch_objective(monkeypatch, objective_fn, rejects=()):
    def fake(space, point, *, program_seed, total_uops=8192,
             length_uops=60_000, policy=None, clamp=True):
        if any(predicate(point) for predicate in rejects):
            raise ConfigError("rejected by test")
        return _stub_evaluation(point, objective_fn(point))

    monkeypatch.setattr(minimize_mod, "evaluate_point", fake)


def test_rejects_non_findings():
    space = ParameterSpace.default()
    evaluation = _stub_evaluation(space.point_from_base(), -0.2)
    with pytest.raises(ConfigError):
        minimize_evaluation(space, evaluation, FuzzConfig())


def test_reduces_to_the_load_bearing_delta(monkeypatch):
    # The inversion depends only on static_uops; every other deviation
    # must be reverted to base.
    space = ParameterSpace.default()
    start = space.point_from_base()
    start["static_uops"] = 2_101.0
    start["body_instrs"] = 9.9
    start["loop_gap"] = 7.7
    start["diamond"] = 0.66

    def objective(point):
        return 0.1 if point["static_uops"] < 3_000 else -0.1

    _patch_objective(monkeypatch, objective)
    result = minimize_evaluation(
        space, _stub_evaluation(start, 0.1), FuzzConfig()
    )
    assert set(result.deltas) == {"static_uops"}
    assert result.deltas["static_uops"] == 2_101.0
    assert result.evaluation.objective == 0.1
    # One greedy pass reverts the three bystanders, a second pass
    # (static alone) confirms the fixed point.
    assert result.evals_used >= 4


def test_keeps_conjunctions(monkeypatch):
    # When two deltas are jointly load-bearing, neither can be reverted
    # alone, so both survive.
    space = ParameterSpace.default()
    start = space.point_from_base()
    start["static_uops"] = 2_500.0
    start["diamond"] = 0.7
    start["loop_gap"] = 9.0

    def objective(point):
        small = point["static_uops"] < 3_000
        diamonds = point["diamond"] > 0.5
        return 0.1 if (small and diamonds) else -0.1

    _patch_objective(monkeypatch, objective)
    result = minimize_evaluation(
        space, _stub_evaluation(start, 0.1), FuzzConfig()
    )
    assert set(result.deltas) == {"static_uops", "diamond"}


def test_invalid_trials_are_skipped(monkeypatch):
    space = ParameterSpace.default()
    start = space.point_from_base()
    start["static_uops"] = 2_101.0
    start["diamond"] = 0.66

    def objective(point):
        return 0.1 if point["static_uops"] < 3_000 else -0.1

    # Reverting diamond to base produces a "generator-rejected" trial;
    # the delta then has to stay.
    base_diamond = space.point_from_base()["diamond"]
    _patch_objective(
        monkeypatch, objective,
        rejects=[lambda point: point["diamond"] == base_diamond
                 and point["static_uops"] < 3_000],
    )
    result = minimize_evaluation(
        space, _stub_evaluation(start, 0.1), FuzzConfig()
    )
    assert result.invalid_trials > 0
    assert "diamond" in result.deltas


def test_margin_override(monkeypatch):
    space = ParameterSpace.default()
    start = space.point_from_base()
    start["static_uops"] = 2_101.0

    _patch_objective(monkeypatch, lambda point: 0.05)
    with pytest.raises(ConfigError):
        minimize_evaluation(
            space, _stub_evaluation(start, 0.05), FuzzConfig(),
            margin=0.2,
        )


def test_real_minimize_of_pinned_inversion():
    # End to end on the real evaluator: the known single-delta
    # inversion (static_uops 2101 on server-web) must survive
    # minimization as exactly that delta.
    from repro.scenario.search import evaluate_point, fuzz_program_seed

    space = ParameterSpace.default("server-web")
    point = space.point_from_base()
    point["static_uops"] = 2_101.0
    evaluation = evaluate_point(
        space, point,
        program_seed=fuzz_program_seed(1),
        total_uops=8192,
        length_uops=40_000,
    )
    assert evaluation.objective > 0.02
    result = minimize_evaluation(
        space, evaluation,
        FuzzConfig(seed=1, length_uops=40_000),
    )
    assert set(result.deltas) == {"static_uops"}
    assert result.evaluation.objective > 0.02
    assert result.evals_used == 1
