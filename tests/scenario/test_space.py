"""Tests for the fuzzer's parameter space."""

import pytest

from repro.common.errors import ConfigError
from repro.common.rng import DeterministicRng
from repro.program.profiles import profile_by_name
from repro.scenario.space import Param, ParameterSpace


def test_default_space_rejects_unknown_base():
    with pytest.raises(ConfigError):
        ParameterSpace.default("server-mainframe")


def test_param_lookup():
    space = ParameterSpace.default()
    assert space.param("static_uops").integer
    with pytest.raises(ConfigError):
        space.param("no_such_knob")


def test_param_clamp():
    param = Param("x", 1.0, 5.0)
    assert param.clamp(0.0) == 1.0
    assert param.clamp(9.0) == 5.0
    assert param.clamp(3.0) == 3.0


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_sample_stays_in_bounds(seed):
    space = ParameterSpace.default()
    point = space.sample(DeterministicRng(seed))
    for param in space.params:
        assert param.lo <= point[param.name] <= param.hi


def test_sample_is_deterministic():
    space = ParameterSpace.default()
    assert space.sample(DeterministicRng(7)) == space.sample(
        DeterministicRng(7)
    )
    assert space.sample(DeterministicRng(7)) != space.sample(
        DeterministicRng(8)
    )


def test_perturb_stays_in_bounds():
    space = ParameterSpace.default()
    rng = DeterministicRng(3)
    for param in space.params:
        for anchor in (param.lo, param.hi, 0.5 * (param.lo + param.hi)):
            moved = param.perturb(anchor, rng, scale=1.0)
            assert param.lo <= moved <= param.hi


def test_mutate_changes_at_most_three_dims():
    space = ParameterSpace.default()
    point = space.point_from_base()
    for seed in range(1, 6):
        moved = space.mutate(point, DeterministicRng(seed))
        changed = [
            name for name in point if moved[name] != point[name]
        ]
        assert 1 <= len(changed) <= 3
    assert space.mutate(point, DeterministicRng(5)) == space.mutate(
        point, DeterministicRng(5)
    )


def test_point_from_base_covers_every_param():
    space = ParameterSpace.default()
    point = space.point_from_base()
    assert set(point) == {param.name for param in space.params}
    for param in space.params:
        assert param.lo <= point[param.name] <= param.hi


def test_point_from_base_roundtrips_to_base_profile():
    space = ParameterSpace.default("server-web")
    base = profile_by_name("server-web")
    profile, static = space.build(space.point_from_base())
    assert static == 20_000
    assert profile.name == "server-web+fuzz"
    assert profile.mean_blocks_per_function == pytest.approx(
        base.mean_blocks_per_function
    )
    assert profile.mean_body_instrs == pytest.approx(base.mean_body_instrs)
    assert profile.p_nested_loop == pytest.approx(base.p_nested_loop)
    assert profile.monotonic_bias == pytest.approx(base.monotonic_bias)
    # Weights are searched raw and renormalized, so only ratios survive
    # the roundtrip exactly.
    assert profile.p_cond / profile.p_jump == pytest.approx(
        base.p_cond / base.p_jump
    )
    mixture = dict(profile.cond_mixture)
    base_mixture = dict(base.cond_mixture)
    for kind, weight in base_mixture.items():
        assert mixture[kind] == pytest.approx(
            weight / sum(base_mixture.values())
        )


def test_build_rejects_missing_param():
    space = ParameterSpace.default()
    point = space.point_from_base()
    del point["static_uops"]
    with pytest.raises(ConfigError):
        space.build(point)


def test_build_clamps_by_default_but_not_on_replay():
    space = ParameterSpace.default()
    point = space.point_from_base()
    point["static_uops"] = 500_000.0
    _, clamped = space.build(point)
    assert clamped == space.param("static_uops").hi
    _, verbatim = space.build(point, clamp=False)
    assert verbatim == 500_000


def test_build_rounds_integer_params():
    space = ParameterSpace.default()
    point = space.point_from_base()
    point["static_uops"] = 2_100.7
    _, static = space.build(point)
    assert static == 2_101


def test_build_sorts_bias_range():
    space = ParameterSpace.default()
    point = space.point_from_base()
    point["bias_lo"] = 0.93
    point["bias_hi"] = 0.61
    profile, _ = space.build(point)
    assert profile.biased_range == (0.61, 0.93)


def test_built_profiles_always_validate():
    # Random corners of the space must realize as valid profiles (the
    # caps are derived from the searched means for exactly this).
    space = ParameterSpace.default()
    for seed in range(1, 9):
        profile, static = space.build(space.sample(DeterministicRng(seed)))
        profile.validate()
        assert static >= 2_000
