"""Tests for the inversion search loop."""

from types import SimpleNamespace

import pytest

import repro.scenario.search as search_mod
from repro.common.errors import ConfigError
from repro.scenario.search import (
    FuzzConfig,
    fuzz_program_seed,
    run_search,
)
from repro.scenario.space import ParameterSpace

#: Small-but-real search settings shared by the e2e tests below.
TINY = dict(budget=4, seed=1, length_uops=6_000)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"budget": 0},
        {"total_uops": 0},
        {"length_uops": 0},
        {"explore": 1.5},
        {"explore": -0.1},
        {"mutation_scale": 0.0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigError):
        FuzzConfig(**kwargs).validate()


def test_program_seed_is_stable_and_distinct():
    assert fuzz_program_seed(1) == fuzz_program_seed(1)
    assert fuzz_program_seed(1) != fuzz_program_seed(2)


def _fake_evaluator(objective_fn, rejects=()):
    """An evaluate_point stand-in driven by a pure objective function."""

    def fake(space, point, *, program_seed, total_uops=8192,
             length_uops=60_000, policy=None, clamp=True):
        if any(predicate(point) for predicate in rejects):
            raise ConfigError("rejected by test")
        objective = objective_fn(point)
        return SimpleNamespace(
            point=dict(point),
            objective=objective,
            spec=SimpleNamespace(seed=program_seed,
                                 length_uops=length_uops),
        )

    return fake


def test_budget_is_respected(monkeypatch):
    monkeypatch.setattr(
        search_mod, "evaluate_point",
        _fake_evaluator(lambda point: -0.5),
    )
    config = FuzzConfig(budget=9, seed=3)
    result = run_search(ParameterSpace.default(), config)
    # The base point costs one slot; the rest are candidates.
    assert 1 + len(result.evaluations) + result.invalid_points == 9
    assert result.findings == []


def test_findings_are_filtered_and_sorted(monkeypatch):
    # Reward small footprints so some candidates clear the threshold.
    monkeypatch.setattr(
        search_mod, "evaluate_point",
        _fake_evaluator(lambda point: 0.5 - point["static_uops"] / 40_000),
    )
    config = FuzzConfig(budget=16, seed=2, min_gain=0.01)
    result = run_search(ParameterSpace.default(), config)
    assert result.findings
    objectives = [ev.objective for ev in result.findings]
    assert objectives == sorted(objectives, reverse=True)
    assert all(obj > config.min_gain for obj in objectives)
    assert result.best.objective == max(
        ev.objective for ev in [result.base] + result.evaluations
    )


def test_invalid_points_count_against_budget(monkeypatch):
    # Reject a band that sampled candidates hit but the base point
    # (static 20000) does not: base rejection is a hard error by design.
    monkeypatch.setattr(
        search_mod, "evaluate_point",
        _fake_evaluator(
            lambda point: -0.5,
            rejects=[
                lambda point: 2_500 < point["static_uops"] < 20_000
            ],
        ),
    )
    config = FuzzConfig(budget=12, seed=5, explore=1.0)
    result = run_search(ParameterSpace.default(), config)
    assert result.invalid_points > 0
    assert 1 + len(result.evaluations) + result.invalid_points == 12


def test_progress_callback_sees_every_evaluation(monkeypatch):
    monkeypatch.setattr(
        search_mod, "evaluate_point",
        _fake_evaluator(lambda point: -0.1),
    )
    seen = []
    run_search(
        ParameterSpace.default(),
        FuzzConfig(budget=5, seed=1),
        progress=lambda done, budget, latest, best: seen.append(done),
    )
    assert seen[0] == 1
    assert seen[-1] == 5


# -- real (small) searches ---------------------------------------------------


def test_search_is_deterministic():
    space = ParameterSpace.default()
    config = FuzzConfig(**TINY)
    first = run_search(space, config)
    second = run_search(space, config)
    assert [ev.point for ev in first.evaluations] == [
        ev.point for ev in second.evaluations
    ]
    assert [ev.objective for ev in first.evaluations] == [
        ev.objective for ev in second.evaluations
    ]
    assert first.base.objective == second.base.objective
    assert first.invalid_points == second.invalid_points


def test_search_base_evaluation_shape():
    result = run_search(ParameterSpace.default(), FuzzConfig(**TINY))
    base = result.base
    assert base.spec.suite == "fuzz-server-web"
    assert base.spec.seed == fuzz_program_seed(1)
    assert base.spec.static_uops == 20_000
    assert base.total_uops == 8192
    # On a paper-faithful server profile the XBC wins clearly.
    assert base.objective < 0


def test_known_inversion_point_reproduces():
    # The committed CLI defaults (seed 1, base server-web, size 8192,
    # length 40000) minimize to a single delta: static_uops -> 2101.
    # Pin that regime: a near-TC-capacity footprint on the server-web
    # shape is a real inversion, independent of the search that found
    # it.
    space = ParameterSpace.default("server-web")
    point = space.point_from_base(static_uops=2_101)
    evaluation = search_mod.evaluate_point(
        space, point,
        program_seed=fuzz_program_seed(1),
        total_uops=8192,
        length_uops=40_000,
    )
    assert evaluation.objective > 0.02
    assert evaluation.tc.uop_hit_rate > evaluation.xbc.uop_hit_rate
