"""Tests for the shared build-mode fetch engine."""

import pytest

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.build_engine import BuildEngine
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import Instruction, InstrKind
from repro.trace.record import DynInstr, Trace


def alu(ip, size=2, uops=1):
    return Instruction(ip=ip, size=size, kind=InstrKind.ALU, num_uops=uops)


def rec(instr, taken=False, next_ip=None):
    return DynInstr(instr=instr, taken=taken, next_ip=next_ip or instr.next_ip)


def straight_line(start, count, size=2):
    records = []
    ip = start
    for _ in range(count):
        instr = alu(ip, size=size)
        records.append(rec(instr))
        ip += size
    return records


def make_engine(config=None):
    config = config or FrontendConfig()
    stats = FrontendStats()
    engine = BuildEngine(
        config=config,
        stats=stats,
        icache=InstructionCache(
            config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
        ),
        cond_predictor=GsharePredictor(8, 1024),
        btb=BranchTargetBuffer(64, 4),
        rsb=ReturnStackBuffer(8),
        indirect=IndirectPredictor(64, 4),
    )
    return engine, stats


class TestFetchLimits:
    def test_decode_width_limit(self):
        engine, _ = make_engine(FrontendConfig(decode_width=4))
        records = straight_line(0x1000, 12)
        pos, cycle = engine.fetch_cycle(Trace(records), 0)
        assert pos == 4
        assert len(cycle.records) == 4

    def test_fetch_block_boundary(self):
        engine, _ = make_engine(FrontendConfig(decode_width=8))
        # 2-byte instructions from 0x1000: eight fit in the 16-byte window.
        records = straight_line(0x1000, 16)
        pos, cycle = engine.fetch_cycle(Trace(records), 0)
        assert pos == 8

    def test_unaligned_start_shortens_window(self):
        engine, _ = make_engine(FrontendConfig(decode_width=8))
        records = straight_line(0x100A, 16)
        pos, cycle = engine.fetch_cycle(Trace(records), 0)
        assert pos == 3  # 0x100A, 0x100C, 0x100E fit before 0x1010

    def test_first_ic_access_misses(self):
        engine, stats = make_engine()
        trace = Trace(straight_line(0x1000, 4))
        _pos, cycle = engine.fetch_cycle(trace, 0)
        assert cycle.penalties.get("ic_miss") == engine.config.ic_miss_latency
        assert stats.ic_misses == 1
        # second access to the same line hits
        _pos, cycle = engine.fetch_cycle(trace, 0)
        assert "ic_miss" not in cycle.penalties


class TestBranchHandling:
    def _cond_record(self, taken):
        instr = Instruction(
            ip=0x1000, size=2, kind=InstrKind.COND_BRANCH,
            num_uops=1, target=0x2000,
        )
        return rec(instr, taken=taken, next_ip=0x2000 if taken else None)

    def test_taken_branch_ends_cycle(self):
        engine, _ = make_engine()
        records = [self._cond_record(True)] + straight_line(0x2000, 4)
        # Train the predictor so the branch predicts taken.
        for _ in range(8):
            engine.cond_predictor.update(0x1000, True)
        pos, cycle = engine.fetch_cycle(Trace(records), 0)
        assert pos == 1

    def test_not_taken_branch_continues(self):
        engine, _ = make_engine()
        records = [self._cond_record(False)] + straight_line(0x1002, 4)
        for _ in range(8):
            engine.cond_predictor.update(0x1000, False)
        pos, cycle = engine.fetch_cycle(Trace(records), 0)
        assert pos > 1

    def test_mispredict_charges_penalty(self):
        engine, stats = make_engine()
        for _ in range(8):
            engine.cond_predictor.update(0x1000, False)
        records = [self._cond_record(True)] + straight_line(0x2000, 2)
        _pos, cycle = engine.fetch_cycle(Trace(records), 0)
        assert cycle.penalties.get("mispredict") == engine.config.mispredict_penalty
        assert stats.cond_mispredicts == 1

    def test_btb_miss_then_hit_on_jump(self):
        engine, _ = make_engine()
        jump = Instruction(ip=0x1000, size=2, kind=InstrKind.JUMP,
                           num_uops=1, target=0x2000)
        trace = Trace([rec(jump, taken=True, next_ip=0x2000)])
        _pos, cycle = engine.fetch_cycle(trace, 0)
        assert cycle.penalties.get("btb_miss") == engine.config.btb_miss_penalty
        _pos, cycle = engine.fetch_cycle(trace, 0)
        assert cycle.penalties.get("redirect") == engine.config.taken_branch_bubble

    def test_call_pushes_return_address(self):
        engine, _ = make_engine()
        call = Instruction(ip=0x1000, size=3, kind=InstrKind.CALL,
                           num_uops=2, target=0x2000)
        engine.fetch_cycle(Trace([rec(call, taken=True, next_ip=0x2000)]), 0)
        assert engine.rsb.peek() == 0x1003

    def test_return_predicted_by_rsb(self):
        engine, stats = make_engine()
        engine.rsb.push(0x1003)
        ret = Instruction(ip=0x3000, size=1, kind=InstrKind.RETURN, num_uops=2)
        _pos, cycle = engine.fetch_cycle(
            Trace([rec(ret, taken=True, next_ip=0x1003)]), 0
        )
        assert stats.return_mispredicts == 0
        assert "mispredict" not in cycle.penalties

    def test_return_mispredict_on_empty_stack(self):
        engine, stats = make_engine()
        ret = Instruction(ip=0x3000, size=1, kind=InstrKind.RETURN, num_uops=2)
        _pos, cycle = engine.fetch_cycle(
            Trace([rec(ret, taken=True, next_ip=0x1003)]), 0
        )
        assert stats.return_mispredicts == 1

    def test_indirect_jump_trains_predictor(self):
        engine, stats = make_engine()
        ind = Instruction(ip=0x1000, size=2, kind=InstrKind.INDIRECT_JUMP,
                          num_uops=1)
        trace = Trace([rec(ind, taken=True, next_ip=0x4000)])
        engine.fetch_cycle(trace, 0)
        assert stats.indirect_mispredicts == 1  # cold
        engine.fetch_cycle(trace, 0)
        assert stats.indirect_mispredicts == 1  # learned


class TestUopAccounting:
    def test_cycle_uops_match_records(self):
        engine, _ = make_engine()
        records = straight_line(0x1000, 4)
        _pos, cycle = engine.fetch_cycle(Trace(records), 0)
        assert cycle.uops == sum(r.instr.num_uops for r in cycle.records)

    def test_full_trace_supplied_once(self):
        engine, _ = make_engine()
        records = straight_line(0x1000, 40)
        trace = Trace(records)
        pos = 0
        total = 0
        while pos < len(records):
            pos, cycle = engine.fetch_cycle(trace, pos)
            total += cycle.uops
        assert total == sum(r.instr.num_uops for r in records)
