"""Tests for the decoded-cache frontend (§2.2)."""

import pytest

from repro.common.errors import ConfigError
from repro.frontend.config import FrontendConfig
from repro.frontend.decoded_cache import DcConfig, DecodedCacheFrontend
from repro.frontend.ic_frontend import ICFrontend
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend


class TestConfig:
    def test_default_validates(self):
        DcConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(line_uops=2),
            dict(total_uops=1000),
            dict(total_uops=8 * 4 * 3),  # 3 sets
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            DcConfig(**kwargs).validate()


class TestBehaviour:
    @pytest.fixture(scope="class")
    def stats(self, medium_trace):
        frontend = DecodedCacheFrontend(FrontendConfig(), DcConfig(total_uops=4096))
        return frontend.run(medium_trace)

    def test_uop_conservation(self, stats, medium_trace):
        assert stats.total_uops == medium_trace.total_uops
        assert stats.retired_uops == medium_trace.total_uops

    def test_delivery_engages(self, stats):
        assert stats.uops_from_structure > 0
        assert stats.switches_to_delivery > 0

    def test_bandwidth_between_ic_and_tc(self, medium_trace):
        # §2.2: the decoded cache fixes latency, not bandwidth — one
        # consecutive run per cycle keeps it well under the TC.
        fe = FrontendConfig()
        dc = DecodedCacheFrontend(fe, DcConfig(total_uops=8192)).run(medium_trace)
        tc = TcFrontend(fe, TcConfig(total_uops=8192)).run(medium_trace)
        ic = ICFrontend(fe).run(medium_trace)
        assert dc.delivery_bandwidth < tc.delivery_bandwidth
        assert dc.overall_bandwidth > ic.overall_bandwidth

    def test_bigger_cache_better(self, medium_trace):
        fe = FrontendConfig()
        small = DecodedCacheFrontend(fe, DcConfig(total_uops=1024)).run(medium_trace)
        large = DecodedCacheFrontend(fe, DcConfig(total_uops=16384)).run(medium_trace)
        assert large.uop_miss_rate < small.uop_miss_rate

    def test_line_count_reported(self, stats):
        assert stats.extra["dc_resident_lines"] > 0

    def test_suite_conservation(self, suite_traces):
        for suite, trace in suite_traces.items():
            stats = DecodedCacheFrontend(
                FrontendConfig(), DcConfig(total_uops=4096)
            ).run(trace)
            assert stats.total_uops == trace.total_uops, suite
