"""Tests for the frontend statistics container."""

import pytest

from repro.frontend.metrics import FrontendStats


def test_zero_state_properties():
    s = FrontendStats()
    assert s.uop_miss_rate == 0.0
    assert s.fetch_bandwidth == 0.0
    assert s.delivery_bandwidth == 0.0
    assert s.overall_bandwidth == 0.0
    assert s.structure_hit_rate == 0.0
    assert s.cond_accuracy == 1.0
    assert s.ic_hit_rate == 1.0
    assert s.total_penalty_cycles == 0


def test_uop_miss_rate():
    s = FrontendStats(uops_from_ic=25, uops_from_structure=75)
    assert s.total_uops == 100
    assert s.uop_miss_rate == 0.25
    assert s.uop_hit_rate == 0.75


def test_bandwidths():
    s = FrontendStats(
        uops_from_structure=120,
        structure_fetch_cycles=10,
        delivery_cycles=20,
        cycles=60,
        uops_from_ic=60,
    )
    assert s.fetch_bandwidth == 12.0
    assert s.delivery_bandwidth == 6.0
    assert s.overall_bandwidth == 3.0


def test_add_penalty_accumulates_cycles():
    s = FrontendStats()
    s.add_penalty("mispredict", 8)
    s.add_penalty("mispredict", 8)
    s.add_penalty("ic_miss", 12)
    assert s.cycles == 28
    assert s.penalty_cycles == {"mispredict": 16, "ic_miss": 12}
    assert s.total_penalty_cycles == 28


def test_add_penalty_ignores_nonpositive():
    s = FrontendStats()
    s.add_penalty("x", 0)
    s.add_penalty("x", -5)
    assert s.cycles == 0
    assert s.penalty_cycles == {}


def test_bump():
    s = FrontendStats()
    s.bump("promotions")
    s.bump("promotions", 4)
    assert s.extra["promotions"] == 5


def test_cond_accuracy():
    s = FrontendStats(cond_predictions=100, cond_mispredicts=8)
    assert s.cond_accuracy == pytest.approx(0.92)


def test_summary_mentions_key_fields():
    s = FrontendStats(frontend="xbc", trace_name="t1",
                      uops_from_ic=10, uops_from_structure=90)
    s.bump("promotions", 3)
    text = s.summary()
    assert "xbc" in text
    assert "t1" in text
    assert "promotions=3" in text
    assert "0.1000" in text  # miss rate


def test_phase_breakdown_sums_to_one():
    s = FrontendStats(cycles=100, delivery_cycles=50, build_cycles=30)
    s.add_penalty("mispredict", 20)  # cycles now 120
    phases = s.phase_breakdown()
    assert abs(sum(phases.values()) - 1.0) < 1e-9
    assert phases["stall"] == pytest.approx(20 / 120)
    assert phases["transition"] == pytest.approx(30 / 120)


def test_phase_breakdown_empty():
    assert FrontendStats().phase_breakdown() == {
        "steady": 0.0, "transition": 0.0, "stall": 0.0,
    }


def test_verify_conservation():
    from repro.common.errors import SimulationError

    s = FrontendStats(uops_from_ic=40, uops_from_structure=60)
    s.verify_conservation(100)  # exact: fine
    with pytest.raises(SimulationError):
        s.verify_conservation(99)
