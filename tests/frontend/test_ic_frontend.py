"""Tests for the baseline IC frontend."""

from repro.frontend.config import FrontendConfig
from repro.frontend.ic_frontend import ICFrontend


def test_all_uops_come_from_ic(medium_trace):
    stats = ICFrontend(FrontendConfig()).run(medium_trace)
    assert stats.uops_from_ic == medium_trace.total_uops
    assert stats.uops_from_structure == 0
    assert stats.uop_miss_rate == 1.0


def test_everything_retires(medium_trace):
    stats = ICFrontend(FrontendConfig()).run(medium_trace)
    assert stats.retired_uops == medium_trace.total_uops


def test_bandwidth_bounded_by_decode(medium_trace):
    config = FrontendConfig(decode_width=4)
    stats = ICFrontend(config).run(medium_trace)
    # 4 instructions/cycle at <= 4 uops each is a hard ceiling; taken
    # branches and penalties keep the realistic value far below it.
    assert 0.5 < stats.overall_bandwidth <= 16.0


def test_predictions_happen(medium_trace):
    stats = ICFrontend(FrontendConfig()).run(medium_trace)
    assert stats.cond_predictions > 0
    assert 0.5 < stats.cond_accuracy <= 1.0


def test_cycles_breakdown(medium_trace):
    stats = ICFrontend(FrontendConfig()).run(medium_trace)
    assert stats.delivery_cycles == 0
    assert stats.build_cycles > 0
    assert stats.cycles >= stats.build_cycles


def test_narrower_decode_is_slower(medium_trace):
    wide = ICFrontend(FrontendConfig(decode_width=8)).run(medium_trace)
    narrow = ICFrontend(FrontendConfig(decode_width=1)).run(medium_trace)
    assert narrow.cycles > wide.cycles


class TestMultiPort:
    def test_ports_must_be_positive(self):
        import pytest as _pytest
        with _pytest.raises(ValueError):
            ICFrontend(FrontendConfig(), ports=0)

    def test_more_ports_more_bandwidth(self, medium_trace):
        one = ICFrontend(FrontendConfig(), ports=1).run(medium_trace)
        two = ICFrontend(FrontendConfig(), ports=2).run(medium_trace)
        assert two.overall_bandwidth > one.overall_bandwidth

    def test_diminishing_returns(self, medium_trace):
        # The paper's §2.1 point: multi-porting cannot keep scaling.
        bw = [
            ICFrontend(FrontendConfig(), ports=p).run(medium_trace).overall_bandwidth
            for p in (1, 2, 4)
        ]
        assert bw[1] - bw[0] > bw[2] - bw[1] > 0

    def test_conservation_with_ports(self, medium_trace):
        stats = ICFrontend(FrontendConfig(), ports=3).run(medium_trace)
        assert stats.total_uops == medium_trace.total_uops
