"""Differential equivalence: flat frontends vs their reference paths.

The IC/DC/TC/BBTC frontends each carry two implementations of the same
model: the fused flat loop that ``run()`` normally dispatches to, and
the original structured implementation kept behind the
``REPRO_REFERENCE_FRONTEND`` switch.  These tests run both on the same
traces and require *bit-identical* results — equal
:class:`~repro.frontend.metrics.FrontendStats` (every counter and
penalty dict) and an equal per-cycle uop-delivery log.

Two comparison modes matter because the flat loops fast-forward
through queue stalls only when no cycle log is requested:

* stats-only runs exercise the closed-form stall fast-forward, and
* ``cycle_log`` runs exercise the cycle-by-cycle path.

Both must match the reference exactly.
"""

import pytest

from repro.frontend.config import FrontendConfig
from repro.harness.runner import make_frontend
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend

#: The frontends rewritten with flat loops; the XBC joined with its
#: own packed-array rewrite (unit-less delivery + combined-XB fast
#: path) behind the same reference switch.
FLAT_KINDS = ("ic", "dc", "tc", "bbtc", "xbc")

SUITES = ("specint", "sysmark", "games")


def _run(kind, trace, monkeypatch, reference, cycle_log=None):
    """Build a fresh frontend and run it on *trace* in the given mode."""
    if reference:
        monkeypatch.setenv("REPRO_REFERENCE_FRONTEND", "1")
    else:
        monkeypatch.delenv("REPRO_REFERENCE_FRONTEND", raising=False)
    frontend = make_frontend(kind, FrontendConfig())
    return frontend.run(trace, cycle_log=cycle_log)


@pytest.mark.parametrize("suite", SUITES)
@pytest.mark.parametrize("kind", FLAT_KINDS)
class TestFlatMatchesReference:
    def test_stats_identical(self, kind, suite, suite_traces, monkeypatch):
        """Stats-only runs (stall fast-forward active) are bit-identical."""
        trace = suite_traces[suite]
        flat = _run(kind, trace, monkeypatch, reference=False)
        ref = _run(kind, trace, monkeypatch, reference=True)
        assert flat == ref

    def test_cycle_log_identical(self, kind, suite, suite_traces, monkeypatch):
        """Per-cycle uop delivery matches the reference cycle for cycle."""
        trace = suite_traces[suite]
        flat_log, ref_log = [], []
        flat = _run(kind, trace, monkeypatch, reference=False,
                    cycle_log=flat_log)
        ref = _run(kind, trace, monkeypatch, reference=True,
                   cycle_log=ref_log)
        assert flat == ref
        assert flat_log == ref_log
        assert sum(flat_log) == trace.total_uops


class TestDispatch:
    def test_reference_switch_off_by_default(self, monkeypatch, small_trace):
        """An unset/empty/"0" variable selects the flat path."""
        for value in (None, "", "0"):
            if value is None:
                monkeypatch.delenv("REPRO_REFERENCE_FRONTEND", raising=False)
            else:
                monkeypatch.setenv("REPRO_REFERENCE_FRONTEND", value)
            frontend = make_frontend("ic", FrontendConfig())

            def _boom(*args, **kwargs):  # pragma: no cover - guard
                raise AssertionError("reference path taken unexpectedly")

            monkeypatch.setattr(frontend, "_run_reference", _boom)
            frontend.run(small_trace)

    def test_tc_path_associativity_uses_reference(
        self, monkeypatch, small_trace
    ):
        """Path-associative TC always routes to the reference model.

        The flat TC loop only implements the default single-path
        lookup; the path-associative variant (Figure 10's sweep) must
        keep working through the original implementation even with the
        switch unset.
        """
        monkeypatch.delenv("REPRO_REFERENCE_FRONTEND", raising=False)
        frontend = TcFrontend(
            FrontendConfig(), TcConfig(path_associativity=True)
        )

        def _boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("flat path taken for path-assoc TC")

        monkeypatch.setattr(frontend, "_run_flat", _boom)
        stats = frontend.run(small_trace)
        assert stats.retired_uops == small_trace.total_uops

    def test_run_is_deterministic(self, monkeypatch, small_trace):
        """Structures are per-run: repeat runs are exactly repeatable."""
        monkeypatch.delenv("REPRO_REFERENCE_FRONTEND", raising=False)
        frontend = make_frontend("bbtc", FrontendConfig())
        assert frontend.run(small_trace) == frontend.run(small_trace)


class TestXbcFlatPath:
    """XBC-specific differential coverage beyond the shared matrix."""

    def test_warm_rerun_identical(self, suite_traces, monkeypatch):
        """Re-running a frontend leaves trace-derived memos (columns,
        rev tuples, XB stream) warm; the second run must still match
        the reference bit for bit, and itself."""
        trace = suite_traces["specint"]
        monkeypatch.delenv("REPRO_REFERENCE_FRONTEND", raising=False)
        flat_fe = make_frontend("xbc", FrontendConfig())
        flat_cold = flat_fe.run(trace)
        flat_warm = flat_fe.run(trace)
        monkeypatch.setenv("REPRO_REFERENCE_FRONTEND", "1")
        ref_fe = make_frontend("xbc", FrontendConfig())
        ref_cold = ref_fe.run(trace)
        ref_warm = ref_fe.run(trace)
        assert flat_cold == ref_cold
        assert flat_warm == ref_warm
        assert flat_cold == flat_warm  # per-run structures: deterministic

    @pytest.mark.parametrize("suite", ("specint", "sysmark"))
    def test_storage_churn_keeps_memos_sound(self, suite, suite_traces,
                                             monkeypatch):
        """Heavy-eviction regression test for the id()-keyed memos.

        A tiny data array (512 uops) keeps the storage churning:
        constant evictions and refills recycle trimmed rev-tuples from
        partial fetches, which are exactly the objects whose id() the
        probe/rev memos key on.  Without the strong-reference pins a
        freed tuple's address can be reused by a different tuple and
        silently alias a memo entry; flat and reference must stay
        bit-identical (and cycle-log identical) under this load.
        """
        from repro.xbc.config import XbcConfig

        trace = suite_traces[suite]
        results = {}
        for label, env in (("flat", None), ("ref", "1")):
            if env is None:
                monkeypatch.delenv("REPRO_REFERENCE_FRONTEND",
                                   raising=False)
            else:
                monkeypatch.setenv("REPRO_REFERENCE_FRONTEND", env)
            frontend = make_frontend(
                "xbc", FrontendConfig(),
                xbc_config=XbcConfig(total_uops=512),
            )
            log = []
            stats = frontend.run(trace, cycle_log=log)
            results[label] = (stats, log)
        assert results["flat"][0] == results["ref"][0]
        assert results["flat"][1] == results["ref"][1]
        assert sum(results["flat"][1]) == trace.total_uops
