"""Tests for frontend configuration validation."""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigError
from repro.frontend.config import FrontendConfig


def test_default_validates():
    FrontendConfig().validate()


@pytest.mark.parametrize(
    "field,value",
    [
        ("renamer_width", 0),
        ("uop_queue_depth", 8),
        ("decode_width", 0),
        ("fetch_block_bytes", 24),       # not a power of two
        ("ic_line_bytes", 48),           # not a power of two
        ("fetch_block_bytes", 128),      # exceeds the 64-byte line
        ("ic_size_bytes", 1000),         # not divisible by line*assoc
        ("ic_miss_latency", -1),
        ("mispredict_penalty", -2),
        ("mode_switch_penalty", -1),
        ("taken_branch_bubble", -1),
        ("btb_miss_penalty", -1),
    ],
)
def test_invalid_fields_rejected(field, value):
    with pytest.raises(ConfigError):
        replace(FrontendConfig(), **{field: value}).validate()


def test_frozen():
    config = FrontendConfig()
    with pytest.raises(Exception):
        config.renamer_width = 4  # type: ignore[misc]
