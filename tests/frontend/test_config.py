"""Tests for frontend configuration validation."""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigError
from repro.frontend.config import FrontendConfig


def test_default_validates():
    FrontendConfig().validate()


@pytest.mark.parametrize(
    "field,value",
    [
        ("renamer_width", 0),
        ("uop_queue_depth", 8),
        ("decode_width", 0),
        ("fetch_block_bytes", 24),       # not a power of two
        ("ic_line_bytes", 48),           # not a power of two
        ("fetch_block_bytes", 128),      # exceeds the 64-byte line
        ("ic_size_bytes", 1000),         # not divisible by line*assoc
        ("ic_miss_latency", -1),
        ("mispredict_penalty", -2),
        ("mode_switch_penalty", -1),
        ("taken_branch_bubble", -1),
        ("btb_miss_penalty", -1),
    ],
)
def test_invalid_fields_rejected(field, value):
    with pytest.raises(ConfigError):
        replace(FrontendConfig(), **{field: value}).validate()


def test_frozen():
    config = FrontendConfig()
    with pytest.raises(Exception):
        config.renamer_width = 4  # type: ignore[misc]


class TestNoSharedDefaultConfigs:
    """Regression: default-constructed frontends must not alias configs.

    The classic hazard is ``def __init__(self, config=FrontendConfig())``
    — one instance created at function-definition time and shared by
    every frontend built with defaults.  All frontends use a
    ``None``-sentinel instead; these tests pin that.
    """

    def _frontend_classes(self):
        from repro.bbtc.frontend import BbtcFrontend
        from repro.frontend.decoded_cache import DecodedCacheFrontend
        from repro.frontend.ic_frontend import ICFrontend
        from repro.tc.frontend import TcFrontend
        from repro.xbc.frontend import XbcFrontend

        return [
            ICFrontend, DecodedCacheFrontend, TcFrontend,
            XbcFrontend, BbtcFrontend,
        ]

    def test_default_frontend_configs_are_distinct_instances(self):
        for cls in self._frontend_classes():
            a, b = cls(), cls()
            assert a.config is not b.config, cls.name
            assert a.config == b.config, cls.name

    def test_default_structure_configs_are_distinct_instances(self):
        from repro.bbtc.frontend import BbtcFrontend
        from repro.frontend.decoded_cache import DecodedCacheFrontend
        from repro.tc.frontend import TcFrontend
        from repro.xbc.frontend import XbcFrontend

        for cls, attr in [
            (DecodedCacheFrontend, "dc_config"),
            (TcFrontend, "tc_config"),
            (XbcFrontend, "xbc_config"),
            (BbtcFrontend, "bbtc_config"),
        ]:
            a, b = cls(), cls()
            assert getattr(a, attr) is not getattr(b, attr), cls.name
            assert getattr(a, attr) == getattr(b, attr), cls.name

    def test_explicit_config_does_not_leak_to_other_frontends(self):
        from dataclasses import replace

        from repro.xbc.frontend import XbcFrontend

        custom = replace(FrontendConfig(), renamer_width=5)
        configured = XbcFrontend(config=custom)
        fresh = XbcFrontend()
        assert configured.config.renamer_width == 5
        assert fresh.config.renamer_width == FrontendConfig().renamer_width
