"""Tests for the uop-flow (queue + renamer) helper."""

from repro.frontend.base import UopFlow
from repro.frontend.config import FrontendConfig
from repro.frontend.metrics import FrontendStats


def make_flow(depth=48, width=8):
    config = FrontendConfig(uop_queue_depth=depth, renamer_width=width)
    stats = FrontendStats()
    return UopFlow(config, stats), stats


def test_drain_limited_by_renamer_width():
    flow, stats = make_flow(width=8)
    flow.push(20)
    assert flow.drain() == 8
    assert flow.occupancy == 12
    assert stats.retired_uops == 8


def test_drain_limited_by_occupancy():
    flow, stats = make_flow(width=8)
    flow.push(3)
    assert flow.drain() == 3
    assert flow.occupancy == 0


def test_can_accept_backpressure():
    flow, _ = make_flow(depth=32)
    flow.push(20)
    assert flow.can_accept(12)
    assert not flow.can_accept(13)


def test_drain_all_counts_cycles():
    flow, stats = make_flow(depth=48, width=8)
    flow.push(25)
    flow.drain_all()
    assert flow.occupancy == 0
    assert stats.retired_uops == 25
    assert stats.cycles == 4  # ceil(25/8) renamer cycles


def test_retired_accumulates():
    flow, stats = make_flow()
    for _ in range(5):
        flow.push(8)
        flow.drain()
    assert stats.retired_uops == 40
