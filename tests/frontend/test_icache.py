"""Tests for the instruction cache model."""

import pytest

from repro.common.errors import ConfigError
from repro.frontend.icache import InstructionCache


def test_cold_miss_then_hit():
    ic = InstructionCache(size_bytes=4096, line_bytes=64, assoc=2)
    assert ic.access(0x1000) is False
    assert ic.access(0x1000) is True
    assert ic.access(0x103F) is True   # same line
    assert ic.access(0x1040) is False  # next line


def test_lru_eviction():
    ic = InstructionCache(size_bytes=256, line_bytes=64, assoc=2)  # 2 sets
    stride = 2 * 64  # same-set addresses
    a, b, c = 0x0, stride, 2 * stride
    ic.access(a)
    ic.access(b)
    ic.access(a)      # refresh a
    ic.access(c)      # evicts b
    assert ic.contains(a)
    assert not ic.contains(b)
    assert ic.contains(c)


def test_hit_rate():
    ic = InstructionCache(size_bytes=4096, line_bytes=64, assoc=2)
    assert ic.hit_rate == 1.0
    ic.access(0)
    ic.access(0)
    assert ic.hit_rate == 0.5


def test_contains_has_no_side_effects():
    ic = InstructionCache(size_bytes=4096, line_bytes=64, assoc=2)
    assert not ic.contains(0x40)
    assert ic.lookups == 0


def test_geometry_validation():
    with pytest.raises(ConfigError):
        InstructionCache(size_bytes=1000, line_bytes=64, assoc=4)
    with pytest.raises(ValueError):
        # divisible size, but 48 is not a power of two
        InstructionCache(size_bytes=48 * 4 * 4, line_bytes=48, assoc=4)


def test_fills_up_to_capacity():
    ic = InstructionCache(size_bytes=1024, line_bytes=64, assoc=4)
    for line in range(16):  # exactly capacity
        ic.access(line * 64)
    for line in range(16):
        assert ic.contains(line * 64)
