"""Tests for the offline analysis tools."""

import pytest

from repro.analysis.fragmentation import measure_fragmentation
from repro.analysis.redundancy import measure_tc_redundancy
from repro.analysis.workingset import measure_stack_distances
from repro.analysis.xbstats import measure_xb_usage
from repro.isa.instruction import Instruction, InstrKind
from repro.trace.record import DynInstr, Trace


def alu(ip, uops=1):
    return Instruction(ip=ip, size=2, kind=InstrKind.ALU, num_uops=uops)


def cond(ip, target=0x9000):
    return Instruction(ip=ip, size=2, kind=InstrKind.COND_BRANCH,
                       num_uops=1, target=target)


def rec(instr, taken=False, next_ip=None):
    return DynInstr(instr=instr, taken=taken, next_ip=next_ip or instr.next_ip)


def loop_trace(iterations=10):
    """A two-block loop executed repeatedly."""
    records = []
    for i in range(iterations):
        records.append(rec(alu(0x100)))
        records.append(rec(alu(0x102)))
        last = i == iterations - 1
        records.append(rec(cond(0x104, target=0x100), taken=not last,
                           next_ip=0x200 if last else 0x100))
    records.append(rec(alu(0x200)))
    records.append(rec(cond(0x202), taken=False))
    return Trace(records=records)


class TestXbUsage:
    def test_counts_on_loop(self):
        report = measure_xb_usage(loop_trace(10))
        assert report.dynamic_xbs == 11
        assert report.distinct_xbs == 2
        assert report.executions_histogram.count_of(10) == 1

    def test_multi_entry_detection(self):
        # Enter the same run at two different points: two entry offsets.
        records = [
            rec(alu(0x100)), rec(alu(0x102)),
            rec(cond(0x104, target=0x102), taken=False),
            rec(alu(0x106)), rec(cond(0x108, target=0x102), taken=True,
                                 next_ip=0x102),
            rec(alu(0x102)),  # re-entry mid-run
            rec(alu(0x106)), rec(cond(0x108, target=0x102), taken=False),
        ]
        # fix next ips for clarity is not needed; only kinds matter here
        report = measure_xb_usage(Trace(records=records))
        assert report.multi_entry_fraction > 0.0

    def test_quota_fraction(self):
        records = [rec(alu(0x100 + 2 * i)) for i in range(20)]
        records.append(rec(cond(0x100 + 40), taken=False))
        report = measure_xb_usage(Trace(records=records))
        assert report.quota_ended_dynamic == 1
        assert report.dynamic_xbs == 2
        assert report.quota_fraction == 0.5

    def test_on_real_trace(self, small_trace):
        report = measure_xb_usage(small_trace)
        assert report.distinct_xbs > 10
        assert report.dynamic_xbs > report.distinct_xbs
        assert 0.0 <= report.multi_entry_fraction <= 1.0
        assert "XB usage" in report.summary()


class TestRedundancy:
    def test_loop_shows_alignment_redundancy(self):
        # Even a single-path loop is redundant in a TC: iterations pack
        # into 16-uop traces at rotating alignments, so the same uop
        # appears at several trace positions (§2.3's alignment copies).
        report = measure_tc_redundancy(loop_trace(20))
        assert report.redundancy > 1.5
        assert report.distinct_traces >= 1

    def test_real_trace_tc_exceeds_xbc(self, small_trace):
        report = measure_tc_redundancy(small_trace)
        assert report.redundancy > 1.2
        assert report.xb_redundancy == pytest.approx(1.0, abs=0.05)
        assert report.redundancy > report.xb_redundancy
        assert "redundancy factor" in report.summary()

    def test_copies_histogram_consistent(self, small_trace):
        report = measure_tc_redundancy(small_trace)
        assert report.copies_histogram.total == report.distinct_uops
        mean = report.copies_histogram.mean
        assert mean == pytest.approx(report.redundancy)


class TestStackDistances:
    def test_loop_reuses_at_small_distance(self):
        report = measure_stack_distances(loop_trace(20))
        assert report.cold_accesses == 2  # loop XB + exit XB
        # everything fits in a tiny store
        assert report.miss_rate_at(64) == pytest.approx(
            report.cold_uops / report.total_uops
        )

    def test_curve_monotone(self, small_trace):
        report = measure_stack_distances(small_trace)
        curve = report.curve((256, 1024, 4096, 16384))
        values = list(curve.values())
        assert values == sorted(values, reverse=True)

    def test_zero_capacity_misses_all_noncold_reuses(self, small_trace):
        report = measure_stack_distances(small_trace)
        # capacity 0 can hold nothing: every access is a miss
        assert report.miss_uops_at(0) == pytest.approx(
            report.total_uops, rel=0.05
        )

    def test_infinite_capacity_only_cold(self, small_trace):
        report = measure_stack_distances(small_trace)
        assert report.miss_uops_at(10**9) == report.cold_uops

    def test_summary_renders(self, small_trace):
        text = measure_stack_distances(small_trace).summary()
        assert "reuse-distance" in text


class TestFragmentation:
    def test_single_run(self):
        # 9 uops + cond = 10-uop XB: 3 XBC lines (2 wasted slots),
        # 1 TC line (6 wasted slots).
        records = [rec(alu(0x100 + 2 * i)) for i in range(9)]
        records.append(rec(cond(0x100 + 18), taken=False))
        report = measure_fragmentation(Trace(records=records))
        assert report.xbc_lines == 3
        assert report.xbc_stored_uops == 10
        assert report.xbc_waste == pytest.approx(2 / 12)
        assert report.tc_lines == 1
        assert report.tc_waste == pytest.approx(6 / 16)

    def test_distinct_uops_counted_once(self):
        records = []
        for _ in range(5):
            records.append(rec(alu(0x100)))
            records.append(rec(cond(0x102, target=0x100), taken=True,
                               next_ip=0x100))
        report = measure_fragmentation(Trace(records=records))
        assert report.distinct_uops == 2

    def test_combined_metric_on_real_trace(self, small_trace):
        report = measure_fragmentation(small_trace)
        # Perfect storage is 1.0; every organization pays something.
        assert report.slots_per_distinct_uop("xbc") >= 1.0
        assert report.slots_per_distinct_uop("tc") >= 1.0
        assert report.slots_per_distinct_uop("dc") >= 1.0
        # The paper's conclusion: the XBC's capacity cost per distinct
        # uop beats the TC's (redundancy dwarfs line padding).
        assert (report.slots_per_distinct_uop("xbc")
                < report.slots_per_distinct_uop("tc"))

    def test_summary_renders(self, small_trace):
        text = measure_fragmentation(small_trace).summary()
        assert "slots wasted" in text
        assert "slots per distinct uop" in text
