"""End-to-end tests over real HTTP against a BackgroundServer.

These exercise the acceptance criteria of the serve subsystem: a
submitted job's result must be byte-identical to inline execution of
the same spec, concurrent identical submissions must trigger exactly
one engine execution, and error mapping must be precise (400/404/405/
429 with Retry-After).
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.exec.engine import ExecPolicy
from repro.harness.registry import clear_trace_cache
from repro.serve.app import BackgroundServer, build_app
from repro.serve.client import ServeClient, ServeError, execute_inline
from repro.serve.protocol import parse_job, request_key

#: One small simulation point, shared by the tests below.
REQUEST = {
    "kind": "sim", "frontend": "xbc", "suite": "specint",
    "index": 0, "length": 15_000, "total_uops": 2048,
}


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


@pytest.fixture()
def server(tmp_path):
    """A serve instance on an ephemeral port with its own cache root."""
    policy = ExecPolicy(
        use_cache=True, cache_dir=str(tmp_path / "cache"),
        max_attempts=1, progress=False,
    )
    app = build_app(policy=policy, port=0, queue_size=16)
    background = BackgroundServer(app)
    base_url = background.start()
    client = ServeClient(base_url, timeout=60.0)
    yield client
    background.stop()


def test_healthz_and_metrics_shape(server):
    health = server.healthz()
    assert health["status"] == "ok"
    assert health["ready"] is True
    assert health["queue_depth"] == 0
    assert health["uptime_seconds"] >= 0

    metrics = server.metrics()
    assert metrics["requests"]["total"] >= 1
    assert metrics["jobs"]["submitted"] == 0
    assert metrics["engine"]["runs"] == 0
    assert "cache" in metrics
    assert metrics["draining"] is False


def test_submitted_result_is_byte_identical_to_inline(server):
    """The served payload must equal what the CLI computes locally."""
    acknowledgement = server.submit(REQUEST)
    assert acknowledgement["disposition"] == "new"
    assert acknowledgement["job_id"] == request_key(REQUEST)
    document = server.wait(acknowledgement["job_id"], timeout=60.0)
    assert document["status"] == "done"
    assert document["wall_ms"] is not None

    clear_trace_cache()
    job = parse_job(REQUEST)
    expected = job.encode_result(job.execute())
    clear_trace_cache()
    assert canonical(document["result"]) == canonical(expected)

    # The inline fallback path (``repro submit`` with no server) must
    # agree byte-for-byte as well.
    inline = execute_inline(
        REQUEST, policy=ExecPolicy(use_cache=False, progress=False)
    )
    clear_trace_cache()
    assert inline["disposition"] == "inline"
    assert canonical(inline["result"]) == canonical(document["result"])


def test_concurrent_clients_share_one_execution(server):
    """Satellite: N parallel clients, one engine execution, identical
    byte-for-byte results."""
    clients = 8
    barrier = threading.Barrier(clients)
    outcomes = []
    errors = []

    def one_client():
        try:
            client = ServeClient(server.base_url, timeout=60.0)
            barrier.wait(timeout=10.0)
            acknowledgement = client.submit(REQUEST)
            document = client.wait(acknowledgement["job_id"], timeout=60.0)
            outcomes.append(
                (acknowledgement["disposition"],
                 document["status"],
                 canonical(document["result"]))
            )
        except Exception as exc:  # surfaced after the join
            errors.append(exc)

    threads = [
        threading.Thread(target=one_client) for _ in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120.0)
    assert not errors
    assert len(outcomes) == clients

    dispositions = [disposition for disposition, _, _ in outcomes]
    assert dispositions.count("new") == 1
    assert set(dispositions) <= {"new", "coalesced", "memoized"}
    assert all(status == "done" for _, status, _ in outcomes)
    # Byte-for-byte identical result payloads for every client.
    assert len({payload for _, _, payload in outcomes}) == 1

    metrics = server.metrics()
    assert metrics["jobs"]["submitted"] == 1
    assert metrics["engine"]["executed"] == 1
    assert metrics["engine"]["runs"] == 1
    assert metrics["jobs"]["coalesced"] + metrics["jobs"]["memoized"] \
        == clients - 1


def test_repeat_submission_is_memoized_with_cache_attribution(server):
    first = server.wait(server.submit(REQUEST)["job_id"], timeout=60.0)
    again = server.submit(REQUEST)
    assert again["disposition"] == "memoized"
    document = server.job(again["job_id"])
    assert canonical(document["result"]) == canonical(first["result"])
    assert document["submissions"] == 2


def test_event_stream_replays_the_full_lifecycle(server):
    job_id = server.submit(REQUEST)["job_id"]
    events = [event for event in server.events(job_id, timeout=60.0)]
    names = [event["event"] for event in events]
    assert names[0] == "queued"
    assert "running" in names
    assert names[-1] == "done"
    assert events[-1]["status"] == "done"


def test_error_mapping(server):
    with pytest.raises(ServeError) as info:
        server.submit({"frontend": "warp-drive"})
    assert info.value.status == 400
    assert "frontend" in str(info.value)

    with pytest.raises(ServeError) as info:
        server.job("no-such-job")
    assert info.value.status == 404

    with pytest.raises(ServeError) as info:
        server._checked("GET", "/teapot")
    assert info.value.status == 404

    with pytest.raises(ServeError) as info:
        server._checked("DELETE", "/jobs")
    assert info.value.status == 405

    status, _, document = server._request("POST", "/jobs", None)
    # An empty body parses to {} and fails validation, not the server.
    assert status == 400
    assert "frontend" in document["error"]


def test_jobs_listing_has_no_result_payloads(server):
    server.wait(server.submit(REQUEST)["job_id"], timeout=60.0)
    listing = server.jobs()
    assert len(listing["jobs"]) == 1
    entry = listing["jobs"][0]
    assert entry["status"] == "done"
    assert "result" not in entry


def test_full_queue_maps_to_429_with_retry_after(tmp_path):
    policy = ExecPolicy(use_cache=False, max_attempts=1, progress=False)
    app = build_app(policy=policy, port=0, queue_size=1)
    # Suppress the run loop so the queue genuinely fills.
    app.scheduler.start = lambda: None
    background = BackgroundServer(app)
    client = ServeClient(background.start(), timeout=30.0)
    try:
        first = client.submit({**REQUEST, "index": 1})
        assert first["disposition"] == "new"
        with pytest.raises(ServeError) as info:
            client.submit({**REQUEST, "index": 2})
        assert info.value.status == 429
        assert info.value.retry_after is not None
        assert info.value.retry_after >= 1
    finally:
        summary = background.stop()
    # The queued job was drained into a resubmit manifest.
    assert summary is not None
    assert summary["cancelled"] == 1
    assert summary["requests"] == [{**REQUEST, "index": 1}]
