"""Tests for the client's bounded retry/backoff (:class:`RetryPolicy`).

Pure unit tests: delays are checked with an injected rng, and
``submit_with_retry`` is driven against a stubbed ``submit`` with an
injected sleep, so nothing here touches the network or the clock.
"""

from __future__ import annotations

import pytest

from repro.serve.client import (
    RetryPolicy,
    ServeClient,
    ServeError,
    ServeUnavailable,
)


def _mid(_: float = 0.5) -> float:
    """rng stub returning 0.5: jitter factor exactly 1.0."""
    return 0.5


class TestRetryPolicyDelay:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(base=0.1, cap=100.0, jitter=0.5)
        delays = [policy.delay(attempt, rng=_mid) for attempt in range(4)]
        assert delays == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_cap_bounds_every_delay(self):
        policy = RetryPolicy(base=1.0, cap=3.0, jitter=0.0)
        assert policy.delay(10, rng=_mid) == pytest.approx(3.0)

    def test_retry_after_stretches_but_stays_capped(self):
        policy = RetryPolicy(base=0.1, cap=5.0, jitter=0.5)
        assert policy.delay(0, retry_after=2, rng=_mid) == pytest.approx(2.0)
        # A hostile/huge Retry-After must not exceed the cap.
        assert policy.delay(0, retry_after=600, rng=_mid) == \
            pytest.approx(5.0)

    def test_jitter_spreads_around_the_base_delay(self):
        policy = RetryPolicy(base=1.0, cap=10.0, jitter=0.5)
        low = policy.delay(0, rng=lambda: 0.0)   # factor 1 - jitter
        high = policy.delay(0, rng=lambda: 1.0)  # factor 1 + jitter
        assert low == pytest.approx(0.5)
        assert high == pytest.approx(1.5)

    def test_never_negative(self):
        policy = RetryPolicy(base=0.1, cap=5.0, jitter=1.0)
        assert policy.delay(0, rng=lambda: 0.0) == pytest.approx(0.0)


class TestRetryableClassification:
    def test_429_is_retryable(self):
        assert RetryPolicy().retryable(ServeError(429, "queue full"))

    def test_other_http_errors_are_not(self):
        policy = RetryPolicy()
        assert not policy.retryable(ServeError(400, "bad request"))
        assert not policy.retryable(ServeError(503, "draining"))

    def test_connection_reset_is_retryable(self):
        assert RetryPolicy().retryable(
            ServeUnavailable("reset by peer", reset=True)
        )

    def test_connection_refused_is_not(self):
        """Refusal means no server: it is the inline-fallback signal
        and must never be retried."""
        assert not RetryPolicy().retryable(
            ServeUnavailable("refused", reset=False)
        )


class _ScriptedClient(ServeClient):
    """ServeClient whose ``submit`` plays back a scripted outcome list."""

    def __init__(self, script):
        super().__init__("http://127.0.0.1:1")
        self.script = list(script)
        self.calls = 0

    def submit(self, request):
        self.calls += 1
        outcome = self.script.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


class TestSubmitWithRetry:
    def test_retries_429_until_success(self):
        client = _ScriptedClient([
            ServeError(429, "full", retry_after=1),
            ServeError(429, "full", retry_after=1),
            {"job_id": "abc"},
        ])
        sleeps = []
        document = client.submit_with_retry(
            {"kind": "sim"}, retry=RetryPolicy(attempts=5, jitter=0.0),
            sleep=sleeps.append, rng=_mid,
        )
        assert document == {"job_id": "abc"}
        assert client.calls == 3
        assert len(sleeps) == 2
        # Retry-After=1 stretches both backoff sleeps to >= 1s.
        assert all(delay >= 1.0 for delay in sleeps)

    def test_retries_connection_reset(self):
        client = _ScriptedClient([
            ServeUnavailable("reset", reset=True),
            {"job_id": "abc"},
        ])
        sleeps = []
        assert client.submit_with_retry(
            {}, retry=RetryPolicy(attempts=3), sleep=sleeps.append,
            rng=_mid,
        ) == {"job_id": "abc"}
        assert len(sleeps) == 1

    def test_refused_propagates_immediately(self):
        client = _ScriptedClient([ServeUnavailable("refused", reset=False)])
        sleeps = []
        with pytest.raises(ServeUnavailable):
            client.submit_with_retry({}, sleep=sleeps.append)
        assert client.calls == 1
        assert sleeps == []

    def test_400_propagates_immediately(self):
        client = _ScriptedClient([ServeError(400, "bad field")])
        with pytest.raises(ServeError) as excinfo:
            client.submit_with_retry({}, sleep=lambda _: None)
        assert excinfo.value.status == 400
        assert client.calls == 1

    def test_budget_exhaustion_reraises_last_error(self):
        client = _ScriptedClient([
            ServeError(429, "full") for _ in range(3)
        ])
        sleeps = []
        with pytest.raises(ServeError) as excinfo:
            client.submit_with_retry(
                {}, retry=RetryPolicy(attempts=3), sleep=sleeps.append,
                rng=_mid,
            )
        assert excinfo.value.status == 429
        assert client.calls == 3
        assert len(sleeps) == 2  # no sleep after the final attempt

    def test_single_attempt_means_no_retry(self):
        client = _ScriptedClient([ServeError(429, "full")])
        with pytest.raises(ServeError):
            client.submit_with_retry(
                {}, retry=RetryPolicy(attempts=1), sleep=lambda _: None
            )
        assert client.calls == 1
