"""Tests for the fixed-bucket latency histogram and /metrics gauges."""

from __future__ import annotations

import pytest

from repro.serve.metrics import (
    LATENCY_BUCKET_BOUNDS,
    LatencyHistogram,
    ServiceMetrics,
)


class TestLatencyHistogram:
    def test_empty_histogram_reports_none(self):
        histogram = LatencyHistogram()
        assert histogram.quantile(0.5) is None
        assert histogram.mean() is None
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p99_ms"] is None

    def test_quantile_never_underestimates(self):
        """The reported quantile is a bucket upper bound: always >= the
        true value, at most one bucket width above it."""
        histogram = LatencyHistogram()
        samples = [0.0005, 0.001, 0.004, 0.01, 0.05, 0.2, 1.5]
        for sample in samples:
            histogram.record(sample)
        for q in (0.5, 0.9, 0.99):
            true_rank = sorted(samples)[
                min(len(samples) - 1, int(q * len(samples)))
            ]
            assert histogram.quantile(q) >= true_rank

    def test_mean_and_max_are_exact(self):
        histogram = LatencyHistogram()
        for sample in (0.010, 0.020, 0.030):
            histogram.record(sample)
        assert histogram.mean() == pytest.approx(0.020)
        assert histogram.max == pytest.approx(0.030)

    def test_overflow_bucket_reports_the_max(self):
        histogram = LatencyHistogram()
        histogram.record(500.0)  # beyond the last bound (~100 s)
        assert histogram.quantile(0.99) == pytest.approx(500.0)

    def test_merge_is_count_additive(self):
        """Merging per-thread histograms must equal recording every
        sample into one — the property the load harness relies on."""
        merged = LatencyHistogram()
        reference = LatencyHistogram()
        chunks = [[0.001, 0.02], [0.005, 0.3, 2.0], [0.0001]]
        for chunk in chunks:
            part = LatencyHistogram()
            for sample in chunk:
                part.record(sample)
                reference.record(sample)
            merged.merge(part)
        assert merged.counts == reference.counts
        assert merged.count == reference.count
        assert merged.max == reference.max
        assert merged.total == pytest.approx(reference.total)
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == reference.quantile(q)

    def test_merge_rejects_mismatched_bounds(self):
        histogram = LatencyHistogram()
        other = LatencyHistogram(bounds=(0.1, 1.0))
        with pytest.raises(ValueError):
            histogram.merge(other)

    def test_shared_bounds_cover_serving_range(self):
        """100 µs to 100 s: sub-ms warm hits and multi-second cold
        simulations both land inside the binned range."""
        assert LATENCY_BUCKET_BOUNDS[0] <= 1e-4
        assert LATENCY_BUCKET_BOUNDS[-1] >= 100.0


class TestServiceMetricsSnapshot:
    def test_latency_section_uses_histograms(self):
        metrics = ServiceMetrics()
        metrics.job_latency.record(0.002)
        metrics.job_latency.record(0.004)
        snapshot = metrics.snapshot()
        latency = snapshot["latency"]["job"]
        assert latency["count"] == 2
        assert latency["p50_ms"] is not None
        assert latency["p99_ms"] is not None

    def test_per_shard_gauges_present_when_sharded(self):
        metrics = ServiceMetrics()
        snapshot = metrics.snapshot(
            queue_depth=3, inflight=2,
            queue_depths=[1, 2], inflights=[0, 2],
        )
        jobs = snapshot["jobs"]
        assert jobs["shards"] == 2
        assert jobs["queue_depths"] == [1, 2]
        assert jobs["inflights"] == [0, 2]
        assert jobs["queue_depth"] == 3

    def test_per_shard_gauges_absent_single_worker(self):
        snapshot = ServiceMetrics().snapshot(queue_depth=1, inflight=0)
        assert "shards" not in snapshot["jobs"]
        assert "queue_depths" not in snapshot["jobs"]
