"""Tests for the serve scheduler: coalescing, backpressure, drain.

Everything runs through ``asyncio.run`` on small duck-typed jobs
(serial engine, no process pool) so the scheduling semantics are
isolated from simulation cost.
"""

from __future__ import annotations

import asyncio
import json
import os
import time

import pytest

from repro.exec.engine import ExecPolicy
from repro.serve.protocol import parse_job
from repro.serve.scheduler import Backpressure, Draining, Scheduler


# ---------------------------------------------------------------------------
# Jobs (module-level for picklability; runs here are serial anyway)
# ---------------------------------------------------------------------------


class SlowEchoJob:
    """Cacheable job that takes long enough to coalesce against."""

    def __init__(self, value: int, seconds: float = 0.05) -> None:
        self.value = value
        self.seconds = seconds

    def execute(self):
        time.sleep(self.seconds)
        return self.value * 2

    def key_payload(self):
        return {"kind": "test-serve-echo", "value": self.value}

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "serve-echo", "value": self.value}


class FailingJob(SlowEchoJob):
    """Always fails; keyed so resubmission semantics are observable."""

    def execute(self):
        raise RuntimeError("injected serve failure")

    def key_payload(self):
        return {"kind": "test-serve-fail", "value": self.value}


def make_scheduler(**kwargs) -> Scheduler:
    policy = kwargs.pop(
        "policy", ExecPolicy(max_attempts=1, backoff=0.001)
    )
    return Scheduler(policy=policy, batch_window=0.01, **kwargs)


# ---------------------------------------------------------------------------
# Single-flight coalescing (the acceptance property)
# ---------------------------------------------------------------------------


def test_concurrent_identical_submissions_run_once():
    """N submissions of one key -> one entry, one engine execution,
    and every waiter observes byte-identical result payloads."""

    async def scenario():
        scheduler = make_scheduler()
        scheduler.start()
        job = SlowEchoJob(7, seconds=0.08)
        first, disposition = scheduler.submit(job)
        assert disposition == "new"
        coalesced = [
            scheduler.submit(SlowEchoJob(7, seconds=0.08))
            for _ in range(5)
        ]
        for entry, extra_disposition in coalesced:
            assert entry is first
            assert extra_disposition == "coalesced"
        # Every "client" waits on the shared entry concurrently.
        await asyncio.gather(
            *[first.done_event.wait() for _ in range(6)]
        )
        assert first.status == "done"
        assert first.submissions == 6
        payloads = {
            json.dumps(entry.to_dict()["result"], sort_keys=True)
            for entry, _ in [(first, "new")] + coalesced
        }
        assert payloads == {json.dumps(14)}
        assert scheduler.metrics.engine_runs == 1
        assert scheduler.metrics.engine_executed == 1
        assert scheduler.metrics.jobs_submitted == 1
        assert scheduler.metrics.jobs_coalesced == 5
        await scheduler.drain()

    asyncio.run(scenario())


def test_terminal_entry_memoizes_repeat_submissions():
    async def scenario():
        scheduler = make_scheduler()
        scheduler.start()
        entry, _ = scheduler.submit(SlowEchoJob(3, seconds=0.0))
        await entry.done_event.wait()
        again, disposition = scheduler.submit(SlowEchoJob(3, seconds=0.0))
        assert disposition == "memoized"
        assert again is entry
        assert scheduler.metrics.jobs_memoized == 1
        assert scheduler.metrics.engine_runs == 1
        await scheduler.drain()

    asyncio.run(scenario())


def test_distinct_keys_do_not_coalesce():
    async def scenario():
        scheduler = make_scheduler()
        scheduler.start()
        a, da = scheduler.submit(SlowEchoJob(1, seconds=0.0))
        b, db = scheduler.submit(SlowEchoJob(2, seconds=0.0))
        assert (da, db) == ("new", "new")
        assert a is not b
        await asyncio.gather(a.done_event.wait(), b.done_event.wait())
        assert (a.payload, b.payload) == (2, 4)
        await scheduler.drain()

    asyncio.run(scenario())


def test_failed_entry_reports_error_and_allows_resubmit():
    async def scenario():
        scheduler = make_scheduler()
        scheduler.start()
        entry, _ = scheduler.submit(FailingJob(1, seconds=0.0))
        await entry.done_event.wait()
        assert entry.status == "failed"
        assert "injected serve failure" in entry.error
        assert "error" in entry.to_dict()
        assert scheduler.metrics.jobs_failed == 1
        # A failed terminal entry must not memoize: resubmission gets
        # a fresh attempt under the same key.
        fresh, disposition = scheduler.submit(FailingJob(1, seconds=0.0))
        assert disposition == "new"
        assert fresh is not entry
        await fresh.done_event.wait()
        await scheduler.drain()

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Backpressure and drain
# ---------------------------------------------------------------------------


def test_full_queue_rejects_with_retry_hint():
    async def scenario():
        # No runner: nothing consumes the queue, so it must fill.
        scheduler = make_scheduler(queue_size=2)
        scheduler.submit(SlowEchoJob(1))
        scheduler.submit(SlowEchoJob(2))
        with pytest.raises(Backpressure) as info:
            scheduler.submit(SlowEchoJob(3))
        assert 1 <= info.value.retry_after <= 60
        assert scheduler.metrics.jobs_rejected == 1
        # Rejected submissions leave no entry behind.
        assert len(scheduler.entries()) == 2

    asyncio.run(scenario())


def test_drain_cancels_queued_and_writes_resubmit_manifest(tmp_path):
    async def scenario():
        scheduler = make_scheduler(queue_size=8)
        requests = [
            {"frontend": "xbc", "length": 20_000, "total_uops": 2048},
            {"frontend": "tc", "length": 20_000, "total_uops": 2048},
            {"kind": "blockstats", "length": 20_000},
        ]
        entries = [
            scheduler.submit(parse_job(request), request=request)[0]
            for request in requests
        ]
        summary = await scheduler.drain(manifest_dir=str(tmp_path))
        assert summary["cancelled"] == 3
        for entry in entries:
            assert entry.status == "cancelled"
            assert entry.done_event.is_set()
            assert entry.history[-1]["event"] == "cancelled"
        path = summary["resubmit_manifest"]
        assert path is not None and os.path.exists(path)
        with open(path) as handle:
            document = json.load(handle)
        assert document["kind"] == "repro-serve-resubmit"
        assert document["jobs"] == requests
        # Every persisted request must be replayable as-is.
        for request in document["jobs"]:
            parse_job(request)

    asyncio.run(scenario())


def test_draining_scheduler_rejects_new_but_memoizes_done():
    async def scenario():
        scheduler = make_scheduler()
        scheduler.start()
        entry, _ = scheduler.submit(SlowEchoJob(5, seconds=0.0))
        await entry.done_event.wait()
        await scheduler.drain()
        with pytest.raises(Draining):
            scheduler.submit(SlowEchoJob(6, seconds=0.0))
        # Finished results stay servable while draining.
        again, disposition = scheduler.submit(SlowEchoJob(5, seconds=0.0))
        assert disposition == "memoized"
        assert again is entry

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# Event streams
# ---------------------------------------------------------------------------


def test_subscriber_sees_lifecycle_then_end_of_stream():
    async def scenario():
        scheduler = make_scheduler()
        scheduler.start()
        entry, _ = scheduler.submit(SlowEchoJob(9, seconds=0.02))
        queue = scheduler.subscribe(entry)
        events = []
        while True:
            event = await asyncio.wait_for(queue.get(), timeout=10.0)
            if event is None:
                break
            events.append(event["event"])
        assert events[0] == "queued"
        assert "running" in events
        assert events[-1] == "done"
        await scheduler.drain()

    asyncio.run(scenario())


def test_late_subscriber_gets_history_replay():
    async def scenario():
        scheduler = make_scheduler()
        scheduler.start()
        entry, _ = scheduler.submit(SlowEchoJob(4, seconds=0.0))
        await entry.done_event.wait()
        queue = scheduler.subscribe(entry)
        events = []
        while True:
            event = queue.get_nowait()
            if event is None:
                break
            events.append(event["event"])
        assert events[0] == "queued"
        assert events[-1] == "done"
        await scheduler.drain()

    asyncio.run(scenario())
