"""Tests for multi-worker sharded serving (the PR's acceptance bars).

Covers: stable consistent hashing of keys to shards, single-flight
coalescing within a shard, a drain that writes ONE resubmit manifest
covering queued jobs on every shard, byte-identity of sharded versus
single-worker results (cold and warm), and the kill-one-worker fault
path (respawn + retry, no poisoned cache entries, no lost jobs).
"""

from __future__ import annotations

import asyncio
import glob
import json
import threading
import time

from repro.exec.engine import ExecPolicy, ExecutionEngine, job_key
from repro.serve.pool import ShardWorker
from repro.serve.protocol import parse_job
from repro.serve.scheduler import Scheduler, shard_for_key

from tests.serve.test_scheduler import SlowEchoJob


def _request(frontend: str = "xbc", length: int = 2_000,
             total_uops: int = 512) -> dict:
    return {
        "kind": "sim", "frontend": frontend, "suite": "specint",
        "index": 0, "length": length, "total_uops": total_uops,
    }


def _policy(tmp_path, **kwargs) -> ExecPolicy:
    kwargs.setdefault("workers", 1)
    kwargs.setdefault("use_cache", True)
    kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
    kwargs.setdefault("progress", False)
    return ExecPolicy(**kwargs)


# ---------------------------------------------------------------------------
# shard_for_key: the routing invariant coalescing depends on
# ---------------------------------------------------------------------------


class TestShardForKey:
    def test_stable_and_in_range(self):
        keys = [f"key-{index}" for index in range(200)]
        for shards in (1, 2, 4, 7):
            for key in keys:
                shard = shard_for_key(key, shards)
                assert 0 <= shard < shards
                assert shard == shard_for_key(key, shards)  # deterministic

    def test_spreads_keys_across_shards(self):
        keys = [f"key-{index}" for index in range(400)]
        assignments = {shard_for_key(key, 4) for key in keys}
        assert assignments == {0, 1, 2, 3}

    def test_resize_moves_only_a_minority_of_keys(self):
        """Rendezvous hashing: going 3 -> 4 shards should move ~1/4 of
        the keyspace, not reshuffle everything like ``hash % N``."""
        keys = [f"key-{index}" for index in range(1000)]
        moved = sum(
            1 for key in keys
            if shard_for_key(key, 3) != shard_for_key(key, 4)
        )
        assert moved < len(keys) // 2


# ---------------------------------------------------------------------------
# per-shard coalescing and the multi-shard drain manifest
# ---------------------------------------------------------------------------


def test_identical_keys_coalesce_within_a_shard():
    """Identical keys always route to one shard, so single-flight
    coalescing still holds with a sharded scheduler."""

    async def scenario():
        scheduler = Scheduler(
            policy=ExecPolicy(max_attempts=1, backoff=0.001),
            batch_window=0.01, shards=3, use_pool=False,
        )
        scheduler.start()
        first, disposition = scheduler.submit(SlowEchoJob(11, seconds=0.08))
        assert disposition == "new"
        for _ in range(4):
            entry, extra = scheduler.submit(SlowEchoJob(11, seconds=0.08))
            assert entry is first
            assert extra == "coalesced"
        other, disposition = scheduler.submit(SlowEchoJob(12, seconds=0.0))
        assert disposition == "new"
        await asyncio.gather(first.done_event.wait(),
                             other.done_event.wait())
        assert first.status == "done"
        assert first.submissions == 5
        assert scheduler.metrics.jobs_coalesced == 4
        await scheduler.drain()

    asyncio.run(scenario())


def test_drain_writes_one_manifest_covering_every_shard(tmp_path):
    """Queued jobs scattered over several shards land in a single
    resubmit manifest, none lost."""

    async def scenario():
        scheduler = Scheduler(
            policy=ExecPolicy(max_attempts=1),
            shards=4, use_pool=False, queue_size=64,
        )
        # Never started: every submission stays queued on its shard.
        requests = [
            _request(frontend=frontend, length=2_000 + 100 * step)
            for frontend in ("xbc", "tc")
            for step in range(6)
        ]
        for request in requests:
            scheduler.submit(parse_job(request), request=request)
        depths = scheduler.queue_depths
        assert sum(depths) == len(requests)
        assert sum(1 for depth in depths if depth) > 1  # really sharded
        summary = await scheduler.drain(manifest_dir=str(tmp_path))
        assert summary["cancelled"] == len(requests)
        manifests = glob.glob(str(tmp_path / "resubmit-*.json"))
        assert len(manifests) == 1
        with open(manifests[0], "r", encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["kind"] == "repro-serve-resubmit"

        def keyset(payloads):
            return {job_key(parse_job(payload)) for payload in payloads}

        assert keyset(document["jobs"]) == keyset(requests)

    asyncio.run(scenario())


# ---------------------------------------------------------------------------
# byte-identity: sharded pool results == single-worker results
# ---------------------------------------------------------------------------


def test_sharded_results_byte_identical_to_single_worker(tmp_path):
    """The same request set served by a 2-shard pool and by the classic
    single-worker path must produce byte-identical result payloads,
    cold and warm."""
    from repro.serve.app import BackgroundServer, build_app
    from repro.serve.client import ServeClient

    requests = [
        _request(frontend="xbc", length=2_000),
        _request(frontend="xbc", length=3_000),
        _request(frontend="tc", length=2_000),
        _request(frontend="tc", length=3_000),
    ]

    def serve_all(serve_workers: int, cache_dir: str):
        policy = ExecPolicy(
            workers=1, use_cache=True, cache_dir=cache_dir, progress=False
        )
        app = build_app(
            policy=policy, port=0, serve_workers=serve_workers
        )
        server = BackgroundServer(app)
        base_url = server.start()
        try:
            client = ServeClient(base_url, timeout=60.0)
            payloads = {}
            for phase in ("cold", "warm"):
                for request in requests:
                    acknowledgement = client.submit(request)
                    document = client.wait(
                        acknowledgement["job_id"], timeout=60.0
                    )
                    assert document["status"] == "done", document
                    payloads[(phase, acknowledgement["job_id"])] = (
                        json.dumps(document["result"], sort_keys=True)
                    )
            return payloads
        finally:
            server.stop()

    single = serve_all(1, str(tmp_path / "single"))
    sharded = serve_all(2, str(tmp_path / "sharded"))
    assert single == sharded


# ---------------------------------------------------------------------------
# fault injection: kill one worker
# ---------------------------------------------------------------------------


class TestWorkerCrash:
    def test_idle_kill_respawns_and_serves(self, tmp_path):
        policy = _policy(tmp_path, coordinate=True)
        job = parse_job(_request(length=2_000))
        worker = ShardWorker(0, policy)
        try:
            first = worker.run_batch("t", [job])
            assert first[0]["ok"]
            worker.kill()
            assert not worker.alive
            second = worker.run_batch("t", [job])
            assert worker.restarts == 1
            assert second[0]["ok"]
            assert second[0]["cached"]  # served by the shared cache
            assert second[0]["payload"] == first[0]["payload"]
        finally:
            worker.stop()

    def test_mid_batch_kill_retries_without_poisoning_cache(self, tmp_path):
        """Kill the worker while it is simulating: the batch must be
        retried on a fresh process, every accepted job must still get
        a result, and the cache must hold only valid entries (a fresh
        engine reads them back byte-identically)."""
        policy = _policy(tmp_path, coordinate=True)
        jobs = [
            parse_job(_request(length=150_000)),
            parse_job(_request(length=2_000)),
        ]
        worker = ShardWorker(0, policy)
        try:
            # Kill only once the batch is observably in flight (first
            # engine event), so the fault always lands mid-batch.
            running = threading.Event()

            def kill_when_running():
                if running.wait(timeout=10.0):
                    time.sleep(0.05)
                    worker.kill()

            killer = threading.Thread(target=kill_when_running)
            killer.start()
            outcomes = worker.run_batch(
                "t", jobs, on_event=lambda event: running.set()
            )
            killer.join(timeout=10.0)
            assert worker.restarts >= 1, "kill fired too late to matter"
            assert [outcome["ok"] for outcome in outcomes] == [True, True]
        finally:
            worker.stop()
        # No poisoned entries: a clean engine resolves both keys from
        # the cache and the payloads match what the worker returned.
        engine = ExecutionEngine(_policy(tmp_path))
        results = engine.run(jobs, label="verify")
        for job, outcome, result in zip(jobs, outcomes, results):
            assert result.ok
            assert result.cached
            assert json.dumps(
                job.encode_result(result.value), sort_keys=True
            ) == json.dumps(outcome["payload"], sort_keys=True)

    def test_scheduler_completes_jobs_across_a_worker_kill(self, tmp_path):
        """End-to-end: kill a pooled shard's process mid-service; every
        accepted job still reaches a terminal done state."""

        async def scenario():
            scheduler = Scheduler(
                policy=_policy(tmp_path),
                shards=2, use_pool=True, batch_window=0.01,
            )
            scheduler.start()
            try:
                requests = [
                    _request(length=30_000 + 1_000 * step)
                    for step in range(6)
                ]
                entries = [
                    scheduler.submit(parse_job(request), request=request)[0]
                    for request in requests
                ]
                # Let the first batches get going, then kill a worker.
                await asyncio.sleep(0.05)
                victim = next(
                    worker for worker in scheduler._workers
                    if worker is not None
                )
                victim.kill()
                await asyncio.gather(
                    *[entry.done_event.wait() for entry in entries]
                )
                statuses = {entry.status for entry in entries}
                assert statuses == {"done"}
            finally:
                await scheduler.drain()

        asyncio.run(scenario())
