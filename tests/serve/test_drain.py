"""Graceful-shutdown test against a real ``repro serve`` process.

The acceptance property: a server that received SIGTERM finishes its
in-flight work, reports the drain on stderr and exits 0.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import threading
import time

import pytest

import repro

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def _spawn_server(tmp_path, extra_args=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         *extra_args],
        env=env, stderr=subprocess.PIPE, text=True,
    )


def _wait_for_url(process, lines, timeout=30.0):
    """Collect stderr lines on a thread until the listen line appears."""

    def pump():
        for line in process.stderr:
            lines.append(line)

    thread = threading.Thread(target=pump, daemon=True)
    thread.start()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for line in lines:
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if match:
                return match.group(1), thread
        if process.poll() is not None:
            raise AssertionError(
                f"serve exited early (rc={process.returncode}): "
                f"{''.join(lines)}"
            )
        time.sleep(0.05)
    process.kill()
    raise AssertionError(f"serve never came up: {''.join(lines)}")


@pytest.mark.skipif(
    not hasattr(signal, "SIGTERM"), reason="needs POSIX signals"
)
def test_sigterm_drains_and_exits_zero(tmp_path):
    from repro.serve.client import ServeClient

    process = _spawn_server(tmp_path)
    lines: list = []
    try:
        base_url, pump = _wait_for_url(process, lines)
        client = ServeClient(base_url, timeout=30.0)
        assert client.healthz()["ready"] is True

        request = {"frontend": "xbc", "length": 10_000,
                   "total_uops": 1024}
        acknowledgement = client.submit(request)
        document = client.wait(acknowledgement["job_id"], timeout=60.0)
        assert document["status"] == "done"

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=30.0)
        assert returncode == 0
        pump.join(timeout=10.0)
        stderr = "".join(lines)
        assert "drained" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)
