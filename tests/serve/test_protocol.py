"""Tests for the serve wire format: validation and key stability."""

from __future__ import annotations

import pytest

from repro.exec.engine import job_key
from repro.exec.job import BlockStatsJob, SimJob
from repro.serve.protocol import (
    MAX_INDEX,
    MAX_LENGTH_UOPS,
    MAX_TOTAL_UOPS,
    ProtocolError,
    job_request,
    parse_job,
    request_key,
)


# ---------------------------------------------------------------------------
# Acceptance
# ---------------------------------------------------------------------------


def test_minimal_sim_request_uses_defaults():
    job = parse_job({"frontend": "xbc"})
    assert isinstance(job, SimJob)
    assert job.frontend == "xbc"
    assert job.spec.suite == "specint"
    assert job.spec.index == 0
    assert job.total_uops == 8192
    assert job.assoc == 0
    assert job.xbc_config is None


def test_full_sim_request_round_trips():
    request = {
        "kind": "sim", "frontend": "tc", "suite": "games",
        "index": 2, "length": 40_000, "total_uops": 4096, "assoc": 4,
    }
    job = parse_job(request)
    assert job.spec.suite == "games"
    assert job.spec.index == 2
    assert job.spec.length_uops == 40_000
    assert job.total_uops == 4096
    assert job.assoc == 4
    # job_request must reconstruct an equivalent request (same key).
    rebuilt = job_request(job)
    assert request_key(rebuilt) == job_key(job)


def test_blockstats_request():
    job = parse_job({
        "kind": "blockstats", "suite": "sysmark", "length": 25_000,
        "promotion_threshold": 0.95,
    })
    assert isinstance(job, BlockStatsJob)
    assert job.spec.suite == "sysmark"
    assert job.promotion_threshold == 0.95
    rebuilt = job_request(job)
    assert request_key(rebuilt) == job_key(job)


def test_config_overrides_reach_the_dataclass():
    job = parse_job({
        "frontend": "xbc", "length": 20_000,
        "config": {"banks": 8, "enable_promotion": False},
    })
    assert job.xbc_config is not None
    assert job.xbc_config.banks == 8
    assert job.xbc_config.enable_promotion is False
    # total_uops flows into the config, not the overrides.
    assert job.xbc_config.total_uops == 8192
    rebuilt = job_request(job)
    assert request_key(rebuilt) == job_key(job)


def test_request_key_is_order_independent_and_param_sensitive():
    base = {"frontend": "xbc", "length": 20_000, "total_uops": 2048}
    shuffled = {"total_uops": 2048, "length": 20_000, "frontend": "xbc"}
    assert request_key(base) == request_key(shuffled)
    assert request_key(base) != request_key({**base, "total_uops": 4096})
    assert request_key(base) != request_key({**base, "frontend": "tc"})


def test_defaulted_and_explicit_requests_share_a_key():
    """Omitting a field and sending its default must coalesce."""
    assert request_key({"frontend": "xbc"}) == request_key({
        "kind": "sim", "frontend": "xbc", "suite": "specint",
        "index": 0, "total_uops": 8192, "assoc": 0,
    })


# ---------------------------------------------------------------------------
# Rejections (each message must name the offending field)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("payload, fragment", [
    ("not a dict", "JSON object"),
    ([], "JSON object"),
    ({"kind": "mystery"}, "kind"),
    ({"frontend": "xbc", "suite": "spec95"}, "suite"),
    ({"frontend": "l0"}, "frontend"),
    ({"kind": "sim"}, "frontend"),
    ({"frontend": "xbc", "index": -1}, "index"),
    ({"frontend": "xbc", "index": MAX_INDEX + 1}, "index"),
    ({"frontend": "xbc", "length": 10}, "length"),
    ({"frontend": "xbc", "length": MAX_LENGTH_UOPS + 1}, "length"),
    ({"frontend": "xbc", "length": True}, "length"),
    ({"frontend": "xbc", "length": "long"}, "length"),
    ({"frontend": "xbc", "total_uops": 1}, "total_uops"),
    ({"frontend": "xbc", "total_uops": MAX_TOTAL_UOPS * 2}, "total_uops"),
    ({"frontend": "xbc", "assoc": 65}, "assoc"),
    ({"frontend": "xbc", "surprise": 1}, "surprise"),
    ({"frontend": "xbc", "config": "big"}, "config"),
    ({"frontend": "ic", "config": {"banks": 2}}, "config"),
    ({"frontend": "xbc", "config": {"bankz": 2}}, "bankz"),
    ({"frontend": "xbc", "config": {"banks": "four"}}, "banks"),
    ({"frontend": "xbc", "config": {"enable_promotion": 1}},
     "enable_promotion"),
    ({"kind": "blockstats", "promotion_threshold": 0.2},
     "promotion_threshold"),
    ({"kind": "blockstats", "promotion_threshold": 2},
     "promotion_threshold"),
    ({"kind": "blockstats", "frontend": "xbc"}, "frontend"),
])
def test_bad_requests_are_rejected(payload, fragment):
    with pytest.raises(ProtocolError, match=fragment):
        parse_job(payload)
