"""Tests for XB pointers."""

import pytest

from repro.xbc.pointer import XbPointer


def test_matches():
    ptr = XbPointer(0x900, 0b0011, 7)
    assert ptr.matches(0x900, 7)
    assert not ptr.matches(0x900, 6)
    assert not ptr.matches(0x902, 7)


def test_mask_is_mutable_for_set_search_repair():
    ptr = XbPointer(0x900, 0b0011, 7)
    ptr.mask = 0b1100
    assert ptr.mask == 0b1100


def test_offset_must_be_positive():
    with pytest.raises(ValueError):
        XbPointer(0x900, 0b0011, 0)


def test_mask_must_be_non_negative():
    with pytest.raises(ValueError):
        XbPointer(0x900, -1, 3)
