"""Property-based tests of the XFU build algorithm.

The invariant that makes the XBC sound: after ``install`` returns a
pointer, the data array must serve exactly the installed occurrence's
uops through that pointer — whatever sequence of containments,
extensions, sibling prefixes, truncations and way-sharing placements
led up to it.
"""

from hypothesis import given, settings, strategies as st

from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.xbc.config import XbcConfig
from repro.xbc.fill import XbcFillUnit
from repro.xbc.storage import XbcStorage
from repro.xbc.xbtb import Xbtb


def uops_for(ip, count):
    return [(ip + 2 * i) << 4 for i in range(count)]


# An XB family: one shared suffix reached through several prefixes.
# Occurrences are (prefix_index, entry_offset) pairs.
families = st.builds(
    lambda sfx_len, prefix_lens: (sfx_len, prefix_lens),
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=4),
)


@st.composite
def install_sequences(draw):
    sfx_len, prefix_lens = draw(families)
    # keep every occurrence within the 16-uop XB limit
    prefix_lens = [min(p, 16 - sfx_len) for p in prefix_lens]
    prefix_lens = [p for p in prefix_lens if p > 0] or [1]
    suffix = uops_for(0x9000, sfx_len)
    prefixes = [
        uops_for(0x1000 * (i + 1), length)
        for i, length in enumerate(prefix_lens)
    ]
    count = draw(st.integers(min_value=1, max_value=12))
    occurrences = []
    for _ in range(count):
        which = draw(st.integers(min_value=0, max_value=len(prefixes) - 1))
        full = prefixes[which] + suffix
        # entry anywhere inside the occurrence (suffix of `full`)
        offset = draw(st.integers(min_value=1, max_value=len(full)))
        occurrences.append(full[len(full) - offset:])
    return occurrences


@given(occurrences=install_sequences(),
       policy=st.sampled_from(["complex", "split"]))
@settings(max_examples=300, deadline=None)
def test_install_pointer_always_serves_occurrence(occurrences, policy):
    config = XbcConfig(total_uops=128, xbtb_entries=32, xbtb_assoc=4,
                       overlap_policy=policy)
    storage = XbcStorage(config)
    xbtb = Xbtb(config)
    stats = FrontendStats()
    fill = XbcFillUnit(config, storage, xbtb, stats)
    xb_ip = 0x9000 + 2 * 7  # just a stable identity for the family end

    for occurrence in occurrences:
        entry, ptr = fill.install(xb_ip, InstrKind.COND_BRANCH, occurrence)
        if ptr is None:
            continue  # placement failure is legal; silence is not checked
        # The pointer must serve the occurrence: under the split policy
        # it may cover only the leading prefix of the occurrence.
        if ptr.xb_ip == xb_ip:
            covered = occurrence
        else:
            covered = occurrence[: ptr.offset]
        assert ptr.offset == len(covered)
        expected_rev = list(reversed(covered))
        mapping = storage.probe(ptr.xb_ip, ptr.mask, ptr.offset, expected_rev)
        if mapping is None:
            # stale mask after internal reshuffling must be repairable
            found = storage.set_search(ptr.xb_ip, ptr.offset, expected_rev)
            assert found is not None, "pointer unservable right after install"


@given(occurrences=install_sequences())
@settings(max_examples=150, deadline=None)
def test_variant_records_stay_consistent(occurrences):
    config = XbcConfig(total_uops=128, xbtb_entries=32, xbtb_assoc=4)
    storage = XbcStorage(config)
    xbtb = Xbtb(config)
    fill = XbcFillUnit(config, storage, xbtb, FrontendStats())
    xb_ip = 0x9000 + 2 * 7

    for occurrence in occurrences:
        entry, _ptr = fill.install(xb_ip, InstrKind.COND_BRANCH, occurrence)
        for variant in entry.valid_variants(storage):
            content = variant.read(storage, xb_ip)
            assert content is not None
            assert len(content) >= variant.length
            # every live variant of one XB shares the XB's true suffix
            n = min(len(content), len(occurrence))
            tail_a = content[-n:]
            tail_b = occurrence[-n:]
            # suffix agreement holds up to the shared part
            shared = 0
            while (shared < n
                   and tail_a[n - 1 - shared] == tail_b[n - 1 - shared]):
                shared += 1
            assert shared >= 1  # at least the ending instruction's uop
