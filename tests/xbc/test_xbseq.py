"""Tests for the canonical XB-stream builder."""

import pytest

from repro.isa.instruction import Instruction, InstrKind
from repro.isa.uop import uop_uid_ip
from repro.trace.record import DynInstr, Trace
from repro.xbc.xbseq import build_xb_stream


def alu(ip, uops=1, size=2):
    return Instruction(ip=ip, size=size, kind=InstrKind.ALU, num_uops=uops)


def cond(ip, target=0x9000):
    return Instruction(ip=ip, size=2, kind=InstrKind.COND_BRANCH,
                       num_uops=1, target=target)


def jump(ip, target):
    return Instruction(ip=ip, size=2, kind=InstrKind.JUMP, num_uops=1,
                       target=target)


def rec(instr, taken=False, next_ip=None):
    return DynInstr(instr=instr, taken=taken, next_ip=next_ip or instr.next_ip)


def trace_of(records):
    return Trace(records=records, name="t", suite="test")


class TestBasicPartitioning:
    def test_cond_ends_step(self):
        records = [rec(alu(0x100)), rec(alu(0x102)),
                   rec(cond(0x104), taken=True, next_ip=0x9000)]
        steps = build_xb_stream(trace_of(records))
        assert len(steps) == 1
        step = steps[0]
        assert step.end_ip == 0x104
        assert step.end_kind is InstrKind.COND_BRANCH
        assert step.taken is True
        assert len(step.uops) == 3
        assert step.first_record == 0 and step.last_record == 2

    def test_jump_does_not_end_step(self):
        records = [
            rec(alu(0x100)),
            rec(jump(0x102, 0x200), taken=True, next_ip=0x200),
            rec(alu(0x200)),
            rec(cond(0x202), taken=False),
        ]
        steps = build_xb_stream(trace_of(records))
        assert len(steps) == 1
        assert steps[0].end_ip == 0x202
        assert len(steps[0].uops) == 4

    @pytest.mark.parametrize("kind", [
        InstrKind.CALL, InstrKind.INDIRECT_CALL,
        InstrKind.INDIRECT_JUMP, InstrKind.RETURN,
    ])
    def test_other_enders(self, kind):
        target = 0x9000 if kind is InstrKind.CALL else None
        instr = Instruction(ip=0x102, size=2, kind=kind, num_uops=2,
                            target=target)
        records = [rec(alu(0x100)), rec(instr, taken=True, next_ip=0x9000)]
        steps = build_xb_stream(trace_of(records))
        assert len(steps) == 1
        assert steps[0].end_kind is kind

    def test_trailing_open_run_closes_as_quota(self):
        records = [rec(alu(0x100)), rec(alu(0x102))]
        steps = build_xb_stream(trace_of(records))
        assert len(steps) == 1
        assert steps[0].end_kind is None


class TestQuotaChunking:
    def test_backward_anchored_cuts(self):
        # 20 single-uop ALUs + cond: chunks must be [4][16] not [16][4].
        records = [rec(alu(0x100 + 2 * i)) for i in range(20)]
        records.append(rec(cond(0x100 + 40), taken=False))
        steps = build_xb_stream(trace_of(records), quota=16)
        assert [len(s.uops) for s in steps] == [5, 16]
        assert steps[0].end_kind is None
        assert steps[1].end_kind is InstrKind.COND_BRANCH

    def test_entry_point_independence(self):
        # The same run entered 3 instructions later must produce chunks
        # with identical end IPs (the no-redundancy invariant).
        full = [rec(alu(0x100 + 2 * i)) for i in range(20)]
        full.append(rec(cond(0x100 + 40), taken=False))
        late = full[3:]
        ends_full = [s.end_ip for s in build_xb_stream(trace_of(full))]
        ends_late = [s.end_ip for s in build_xb_stream(trace_of(late))]
        assert ends_late == ends_full[-len(ends_late):] or (
            # the earliest late chunk may be a truncated version of a
            # full chunk — end IPs must still align on the shared suffix
            ends_late[1:] == ends_full[-(len(ends_late) - 1):]
            if len(ends_late) > 1 else True
        )
        assert ends_late[-1] == ends_full[-1]

    def test_atomic_instructions_at_cut(self):
        # Five 4-uop instructions + a 1-uop cond = 21 uops.  Chunking
        # backward from the end: cond + three ALUs = 13 uops (a fourth
        # ALU would exceed 16), leaving two ALUs = 8 uops upstream.
        records = [rec(alu(0x100 + 2 * i, uops=4)) for i in range(5)]
        records.append(rec(cond(0x100 + 10), taken=False))
        steps = build_xb_stream(trace_of(records), quota=16)
        assert [len(s.uops) for s in steps] == [8, 13]

    def test_quota_steps_link_by_next_ip(self):
        records = [rec(alu(0x100 + 2 * i)) for i in range(20)]
        records.append(rec(cond(0x100 + 40), taken=False))
        steps = build_xb_stream(trace_of(records))
        first, second = steps
        assert first.next_ip == records[first.last_record].next_ip
        assert second.first_record == first.last_record + 1


class TestCoverage:
    def test_steps_partition_all_records(self, small_trace):
        steps = build_xb_stream(small_trace)
        cursor = 0
        for step in steps:
            assert step.first_record == cursor
            cursor = step.last_record + 1
        assert cursor == len(small_trace.records)

    def test_uop_totals_match(self, small_trace):
        steps = build_xb_stream(small_trace)
        assert sum(len(s.uops) for s in steps) == small_trace.total_uops

    def test_uops_belong_to_their_records(self, small_trace):
        steps = build_xb_stream(small_trace)
        for step in steps[:200]:
            record_ips = {
                small_trace.records[i].ip
                for i in range(step.first_record, step.last_record + 1)
            }
            assert {uop_uid_ip(u) for u in step.uops} == record_ips

    def test_quota_respected_everywhere(self, small_trace):
        for step in build_xb_stream(small_trace, quota=16):
            assert 1 <= len(step.uops) <= 16

    def test_same_end_ip_same_suffix_content(self, small_trace):
        # Any two occurrences of one XB must agree on their common
        # suffix — this is what makes end-IP identity sound.
        by_end = {}
        for step in build_xb_stream(small_trace):
            other = by_end.setdefault(step.end_ip, step)
            n = min(len(other.uops), len(step.uops))
            assert other.uops[-n:] == step.uops[-n:]
