"""Tests for the banked XBC storage array."""

import pytest

from repro.common.bitutils import iter_bits, popcount
from repro.xbc.config import XbcConfig
from repro.xbc.storage import XbcStorage


def uops_for(ip, count):
    """Distinct uop uids tagged by instruction ip (1 uop per instr)."""
    return [(ip + 2 * i) << 4 for i in range(count)]


@pytest.fixture()
def storage():
    # 4 sets of 4 banks x 2 ways x 4 uops.
    return XbcStorage(XbcConfig(total_uops=128))


class TestInsertAndRead:
    def test_roundtrip_program_order(self, storage):
        uops = uops_for(0x100, 10)
        mask = storage.insert_xb(0x900, uops)
        assert mask is not None
        assert storage.read_variant(0x900, mask) == uops

    def test_lines_store_reverse_order(self, storage):
        uops = uops_for(0x100, 6)
        mask = storage.insert_xb(0x900, uops)
        mapping = storage.probe(0x900, mask, 6)
        set_lines = storage._sets[storage.index_of(0x900)]
        order0 = set_lines[mapping[0][0]][mapping[0][1]]
        # order-0 line slot 0 = last uop (distance 0)
        assert order0.uops[0] == uops[-1]
        assert order0.uops[3] == uops[-4]
        order1 = set_lines[mapping[1][0]][mapping[1][1]]
        assert order1.uops == [uops[1], uops[0]]

    def test_banks_are_distinct(self, storage):
        mask = storage.insert_xb(0x900, uops_for(0x100, 16))
        assert popcount(mask) == 4

    def test_small_xb_one_bank(self, storage):
        mask = storage.insert_xb(0x900, uops_for(0x100, 3))
        assert popcount(mask) == 1

    def test_oversized_rejected(self, storage):
        from repro.common.errors import SimulationError
        with pytest.raises(SimulationError):
            storage.insert_xb(0x900, uops_for(0x100, 17))

    def test_empty_rejected(self, storage):
        from repro.common.errors import SimulationError
        with pytest.raises(SimulationError):
            storage.insert_xb(0x900, [])

    def test_avoid_mask_steers_placement(self, storage):
        mask_a = storage.insert_xb(0x900, uops_for(0x100, 4))
        mask_b = storage.insert_xb(0x902, uops_for(0x200, 4),
                                   avoid_mask=mask_a)
        # Same set (0x900>>1 and 0x902>>1 differ... ensure same set first)
        if storage.index_of(0x900) == storage.index_of(0x902):
            assert mask_a & mask_b == 0


class TestProbe:
    def test_probe_needs_only_offset_orders(self, storage):
        mask = storage.insert_xb(0x900, uops_for(0x100, 12))
        assert storage.probe(0x900, mask, 4) is not None
        assert storage.probe(0x900, mask, 12) is not None

    def test_probe_wrong_tag_misses(self, storage):
        mask = storage.insert_xb(0x900, uops_for(0x100, 8))
        assert storage.probe(0x902, mask, 4) is None

    def test_probe_content_check(self, storage):
        uops = uops_for(0x100, 8)
        mask = storage.insert_xb(0x900, uops)
        good = list(reversed(uops))
        bad = list(good)
        bad[0] ^= 0xFFF0
        assert storage.probe(0x900, mask, 8, good) is not None
        assert storage.probe(0x900, mask, 8, bad) is None

    def test_probe_partial_offset_content(self, storage):
        uops = uops_for(0x100, 10)
        mask = storage.insert_xb(0x900, uops)
        # Entry covering only the last 5 uops.
        expected = list(reversed(uops[-5:]))
        assert storage.probe(0x900, mask, 5, expected) is not None


class TestExtension:
    def test_extend_in_place(self, storage):
        suffix = uops_for(0x200, 6)
        mask = storage.insert_xb(0x900, suffix)
        prefix = uops_for(0x100, 5)
        new_mask = storage.extend_xb(0x900, mask, 6, prefix)
        assert new_mask is not None
        assert storage.read_variant(0x900, new_mask) == prefix + suffix

    def test_extension_does_not_move_existing_lines(self, storage):
        suffix = uops_for(0x200, 6)
        mask = storage.insert_xb(0x900, suffix)
        before = storage.probe(0x900, mask, 6)
        storage.extend_xb(0x900, mask, 6, uops_for(0x100, 4))
        after = storage.probe(0x900, mask, 6)
        assert before == after  # reverse-order storage: nothing moved

    def test_extend_counts(self, storage):
        mask = storage.insert_xb(0x900, uops_for(0x200, 4))
        storage.extend_xb(0x900, mask, 4, uops_for(0x100, 4))
        assert storage.extensions == 1


class TestVariants:
    def test_add_variant_shares_full_suffix_lines(self, storage):
        suffix = uops_for(0x300, 8)  # two full lines
        v1 = uops_for(0x100, 4) + suffix
        mask1 = storage.insert_xb(0x900, v1)
        slots1 = dict(storage.last_placement)
        mapping = storage.probe(0x900, mask1, len(v1))
        v2 = uops_for(0x200, 4) + suffix
        mask2 = storage.add_variant(0x900, v2, mapping, reuse_len=8,
                                    reuse_mask=mask1)
        slots2 = dict(storage.last_placement)
        assert mask2 is not None
        # slot-based reads are unambiguous even under way sharing
        assert storage.read_slots(0x900, slots2) == v2
        assert storage.read_slots(0x900, slots1) == v1
        # the two full suffix lines are physically shared
        assert slots1[0] == slots2[0]
        assert slots1[1] == slots2[1]
        # ...and the prefixes occupy different slots
        assert slots1[2] != slots2[2]

    def test_variant_with_unaligned_suffix_restores_boundary(self, storage):
        suffix = uops_for(0x300, 6)  # 1.5 lines: only one full line shared
        v1 = uops_for(0x100, 4) + suffix
        mask1 = storage.insert_xb(0x900, v1)
        mapping = storage.probe(0x900, mask1, len(v1))
        v2 = uops_for(0x200, 2) + suffix
        mask2 = storage.add_variant(0x900, v2, mapping, reuse_len=6,
                                    reuse_mask=mask1)
        assert mask2 is not None
        assert storage.read_slots(0x900, storage.last_placement) == v2


class TestEviction:
    def test_gc_removes_stranded_higher_orders(self, storage):
        uops = uops_for(0x100, 12)  # orders 0,1,2
        mask = storage.insert_xb(0x900, uops)
        mapping = storage.probe(0x900, mask, 12)
        set_idx = storage.index_of(0x900)
        bank, way = mapping[1]
        storage._evict(set_idx, bank, way)
        # order 2 (earlier uops) must be GC'd, order 0 must survive
        assert storage.probe(0x900, mask, 4) is not None
        assert storage.probe(0x900, mask, 12) is None
        orders_left = {
            line.order
            for line in storage.resident_lines()
            if line.tag == 0x900
        }
        assert orders_left == {0}
        assert storage.gc_evictions >= 1

    def test_fresh_insert_purges_stale_tag(self, storage):
        storage.insert_xb(0x900, uops_for(0x100, 8))
        storage.insert_xb(0x900, uops_for(0x500, 4))
        # only the new content remains
        lines = [l for l in storage.resident_lines() if l.tag == 0x900]
        assert len(lines) == 1
        assert lines[0].uops[0] == uops_for(0x500, 4)[-1]


class TestSetSearchAndRelocation:
    def test_set_search_finds_relocated_lines(self, storage):
        uops = uops_for(0x100, 8)
        mask = storage.insert_xb(0x900, uops)
        mapping = storage.probe(0x900, mask, 8)
        set_idx = storage.index_of(0x900)
        bank, way = mapping[0]
        moved = storage.relocate_line(set_idx, bank, way, forbidden_mask=0)
        assert moved is not None and moved != bank
        # stale mask may now miss; set search must repair
        found = storage.set_search(0x900, 8, list(reversed(uops)))
        assert found is not None
        repaired_mask, _ = found
        assert storage.read_variant(0x900, repaired_mask) == uops

    def test_set_search_respects_content(self, storage):
        uops = uops_for(0x100, 8)
        storage.insert_xb(0x900, uops)
        wrong = list(reversed(uops_for(0x700, 8)))
        assert storage.set_search(0x900, 8, wrong) is None

    def test_note_deferral_threshold(self):
        storage = XbcStorage(XbcConfig(total_uops=128,
                                       conflict_move_threshold=3))
        assert not storage.note_deferral(0x900)
        assert not storage.note_deferral(0x900)
        assert storage.note_deferral(0x900)
        assert not storage.note_deferral(0x900)  # counter reset

    def test_age_variant_drops_lru(self, storage):
        uops = uops_for(0x100, 4)
        mask = storage.insert_xb(0x900, uops)
        storage.age_variant(0x900, mask)
        line = [l for l in storage.resident_lines() if l.tag == 0x900][0]
        assert line.stamp == 0


class TestAudits:
    def test_redundancy_single_copy(self, storage):
        storage.insert_xb(0x900, uops_for(0x100, 8))
        storage.insert_xb(0xA00, uops_for(0x200, 8))
        assert storage.redundancy() == 1.0

    def test_resident_uops(self, storage):
        storage.insert_xb(0x900, uops_for(0x100, 7))
        assert storage.resident_uops() == 7

    def test_orders_for(self, storage):
        assert storage.orders_for(1) == 1
        assert storage.orders_for(4) == 1
        assert storage.orders_for(5) == 2
        assert storage.orders_for(16) == 4
