"""Targeted XBC-frontend path tests on hand-crafted traces.

Each scenario pins one §3 mechanism: promotion and combined fetches,
promotion misses and de-promotion, bank-conflict deferral, XRSB-based
return prediction, and split-prefix delivery chains.
"""

from typing import List

import pytest

from repro.frontend.config import FrontendConfig
from repro.isa.instruction import Instruction, InstrKind
from repro.trace.record import DynInstr, Trace
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend


class TraceBuilder:
    """Composable builder for consistent dynamic instruction streams."""

    def __init__(self) -> None:
        self.records: List[DynInstr] = []
        self._instrs = {}

    def _instr(self, ip, kind, uops, size, target=None):
        key = (ip, kind, uops, size, target)
        if key not in self._instrs:
            self._instrs[key] = Instruction(
                ip=ip, size=size, kind=kind, num_uops=uops, target=target
            )
        return self._instrs[key]

    def alus(self, start_ip, count, uops=1, size=2):
        ip = start_ip
        for _ in range(count):
            instr = self._instr(ip, InstrKind.ALU, uops, size)
            self.records.append(DynInstr(instr, False, instr.next_ip))
            ip += size
        return ip

    def cond(self, ip, taken, target, size=2):
        instr = self._instr(ip, InstrKind.COND_BRANCH, 1, size, target)
        next_ip = target if taken else instr.next_ip
        self.records.append(DynInstr(instr, taken, next_ip))
        return next_ip

    def call(self, ip, target, size=3):
        instr = self._instr(ip, InstrKind.CALL, 2, size, target)
        self.records.append(DynInstr(instr, True, target))
        return instr.next_ip

    def ret(self, ip, return_to, size=1):
        instr = self._instr(ip, InstrKind.RETURN, 2, size)
        self.records.append(DynInstr(instr, True, return_to))

    def jump(self, ip, target, size=2):
        instr = self._instr(ip, InstrKind.JUMP, 1, size, target)
        self.records.append(DynInstr(instr, True, target))

    def indirect(self, ip, target, size=2):
        instr = self._instr(ip, InstrKind.INDIRECT_JUMP, 1, size)
        self.records.append(DynInstr(instr, True, target))

    def trace(self):
        return Trace(records=self.records, name="crafted")


def run_xbc(trace, **config_kwargs):
    config = XbcConfig(**{"total_uops": 2048, **config_kwargs})
    return XbcFrontend(FrontendConfig(), config).run(trace)


class TestPromotionPaths:
    def _loop_trace(self, iterations, wrong_every=0):
        """XB_A (monotonic taken cond) -> XB_B (loop-back cond)."""
        b = TraceBuilder()
        for i in range(iterations):
            # XB_A: 4 alus + cond at 0x108 -> 0x200 (monotonic taken)
            b.alus(0x100, 4)
            wrong = wrong_every and i and i % wrong_every == 0
            if wrong:
                b.cond(0x108, False, 0x200)
                b.alus(0x10A, 1)
                b.jump(0x10C, 0x200)
            else:
                b.cond(0x108, True, 0x200)
            # XB_B: 4 alus + loop-back cond at 0x208
            b.alus(0x200, 4)
            last = i == iterations - 1
            b.cond(0x208, not last, 0x100)
        b.alus(0x20A, 2)
        b.cond(0x20E, False, 0x400)
        return b.trace()

    def test_monotonic_branch_promotes_and_combs(self):
        stats = run_xbc(self._loop_trace(400))
        assert stats.extra.get("promotions", 0) >= 1
        assert stats.extra.get("comb_fetches", 0) > 50
        assert stats.total_uops == self._loop_trace(400).total_uops

    def test_promotion_survives_rare_misses(self):
        stats = run_xbc(self._loop_trace(400, wrong_every=200))
        assert stats.extra.get("promotions", 0) >= 1
        assert stats.extra.get("promotion_misses", 0) >= 1
        assert stats.extra.get("depromotions", 0) == 0

    def test_sustained_misbehaviour_depromotes(self):
        # Phase 1 promotes cleanly; in phase 2 the branch reverses its
        # behaviour outright (the paper's misbehaving case), walking the
        # bias counter off the rail past the de-promotion slack.
        b = TraceBuilder()
        for i in range(700):
            b.alus(0x100, 4)
            wrong = i > 400  # the branch's behaviour flips outright
            if wrong:
                b.cond(0x108, False, 0x200)
                b.alus(0x10A, 1)
                b.jump(0x10C, 0x200)
            else:
                b.cond(0x108, True, 0x200)
            b.alus(0x200, 4)
            b.cond(0x208, i != 699, 0x100)
        b.alus(0x20A, 2)
        b.cond(0x20E, False, 0x400)
        trace = b.trace()
        stats = run_xbc(trace)
        assert stats.extra.get("promotions", 0) >= 1
        assert stats.extra.get("depromotions", 0) >= 1
        assert stats.total_uops == trace.total_uops

    def test_promotion_disabled_baseline(self):
        stats = run_xbc(self._loop_trace(400), enable_promotion=False)
        assert "promotions" not in stats.extra
        assert "comb_fetches" not in stats.extra


class TestBankConflicts:
    def _conflicting_pair(self, iterations):
        """Two 13-uop XBs whose end IPs share a set: every dual fetch
        conflicts on all four banks."""
        b = TraceBuilder()
        for i in range(iterations):
            b.alus(0x100, 4, uops=3)       # 12 uops
            b.cond(0x108, True, 0x200)     # end 0x108: set (0x84 & 3) = 0
            b.alus(0x200, 4, uops=3)
            last = i == iterations - 1
            b.cond(0x208, not last, 0x100)  # end 0x208: set (0x104 & 3) = 0
        b.alus(0x20A, 2)
        b.cond(0x20E, False, 0x400)
        return b.trace()

    def test_conflicts_defer_and_count(self):
        trace = self._conflicting_pair(300)
        # total_uops=128 -> 4 sets; both XBs land in set 0.
        stats = run_xbc(trace, total_uops=128, enable_dynamic_placement=False)
        assert stats.extra.get("bank_conflict_deferrals", 0) > 50
        assert stats.total_uops == trace.total_uops
        # With every pair conflicting, fetch bandwidth approaches one
        # 13-uop XB per fetch cycle instead of two.
        assert stats.fetch_bandwidth < 15.0

    def test_small_xbs_avoid_conflicts(self):
        # Two 7-uop XBs need two banks each; smart placement (§3.10)
        # puts consecutive XBs in disjoint banks, so the pair fetches
        # in one cycle with no deferrals.
        b = TraceBuilder()
        for i in range(300):
            b.alus(0x100, 2, uops=3)
            b.cond(0x104, True, 0x202)
            b.alus(0x202, 2, uops=3)
            last = i == 299
            b.cond(0x206, not last, 0x100)
        b.alus(0x208, 2)
        b.cond(0x20C, False, 0x400)
        stats = run_xbc(b.trace(), total_uops=128,
                        enable_dynamic_placement=False)
        deferrals = stats.extra.get("bank_conflict_deferrals", 0)
        conflicting = TestBankConflicts()._conflicting_pair(300)
        heavy = run_xbc(conflicting, total_uops=128,
                        enable_dynamic_placement=False)
        assert deferrals < heavy.extra.get("bank_conflict_deferrals", 0)


class TestReturnLinkage:
    def _call_loop(self, iterations):
        """main loop: call f; f returns; repeat (fixed call site)."""
        b = TraceBuilder()
        for i in range(iterations):
            b.alus(0x100, 2)
            b.call(0x104, 0x500)           # XB ends with the call
            b.alus(0x500, 3)               # f body
            b.ret(0x506, 0x107)            # back to call fallthrough
            b.alus(0x107, 2)
            last = i == iterations - 1
            b.cond(0x10B, not last, 0x100)
        b.alus(0x10D, 1)
        b.cond(0x10F, False, 0x800)
        return b.trace()

    def test_returns_predicted_by_xrsb(self):
        trace = self._call_loop(300)
        stats = run_xbc(trace)
        assert stats.return_predictions > 100
        # After warmup the XRSB nails the fixed call/return pair.
        assert stats.return_mispredicts < stats.return_predictions * 0.1
        assert stats.total_uops == trace.total_uops

    def test_delivery_mode_carries_the_loop(self):
        stats = run_xbc(self._call_loop(300))
        assert stats.uops_from_structure > stats.uops_from_ic


class TestSplitPrefixDelivery:
    def _two_prefix_trace(self, iterations):
        """Two alternating jump-prefixes into one shared suffix.

        The dispatcher is an indirect jump (the only legal way one
        instruction reaches two places), alternating targets — a
        pattern the history-hashed XiBTB learns.
        """
        b = TraceBuilder()
        for i in range(iterations):
            last = i == iterations - 1
            prefix = 0x100 if i % 2 == 0 else 0x200
            b.alus(prefix, 3)
            b.jump(prefix + 6, 0x300)
            b.alus(0x300, 4)               # shared suffix
            b.cond(0x308, True, 0x400)     # suffix's ending branch
            b.alus(0x400, 2)
            if last:
                b.cond(0x404, False, 0x900)
            else:
                b.cond(0x404, True, 0x500)
                b.alus(0x500, 1)
                b.indirect(0x502, 0x200 if i % 2 == 0 else 0x100)
        b.alus(0x406, 1)
        b.cond(0x408, False, 0x900)
        return b.trace()

    def test_split_policy_chains_deliver(self):
        trace = self._two_prefix_trace(300)
        stats = run_xbc(trace, overlap_policy="split")
        assert stats.extra.get("xfu_case3_split", 0) >= 1
        assert stats.uops_from_structure > 0
        assert stats.total_uops == trace.total_uops

    def test_complex_policy_on_same_trace(self):
        trace = self._two_prefix_trace(300)
        stats = run_xbc(trace, overlap_policy="complex")
        assert stats.extra.get("xfu_case3_complex", 0) >= 1
        assert stats.total_uops == trace.total_uops

    def test_policies_agree_on_miss_rate_direction(self):
        trace = self._two_prefix_trace(300)
        complex_stats = run_xbc(trace, overlap_policy="complex")
        split_stats = run_xbc(trace, overlap_policy="split")
        # Both must keep the loop in delivery mode.
        assert complex_stats.uop_miss_rate < 0.5
        assert split_stats.uop_miss_rate < 0.5
