"""Behavioural tests for the full XBC frontend."""

import pytest

from repro.frontend.config import FrontendConfig
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend


@pytest.fixture(scope="module")
def stats_medium(medium_trace):
    frontend = XbcFrontend(FrontendConfig(), XbcConfig(total_uops=4096))
    return frontend.run(medium_trace)


class TestConservation:
    def test_every_uop_supplied_once(self, stats_medium, medium_trace):
        assert stats_medium.total_uops == medium_trace.total_uops

    def test_everything_retires(self, stats_medium, medium_trace):
        assert stats_medium.retired_uops == medium_trace.total_uops

    def test_all_suites(self, suite_traces):
        for suite, trace in suite_traces.items():
            stats = XbcFrontend(
                FrontendConfig(), XbcConfig(total_uops=4096)
            ).run(trace)
            assert stats.total_uops == trace.total_uops, suite


class TestDelivery:
    def test_delivery_mode_dominates(self, stats_medium):
        assert stats_medium.uops_from_structure > stats_medium.uops_from_ic

    def test_redundancy_near_one(self, stats_medium):
        # The XBC's design goal: each uop stored (at most) once, modulo
        # line-boundary duplicates of complex variants.
        assert stats_medium.extra["xbc_redundancy_x1000"] < 1150

    def test_bigger_cache_misses_less(self, medium_trace):
        small = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=1024)
        ).run(medium_trace)
        large = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=16384)
        ).run(medium_trace)
        assert large.uop_miss_rate < small.uop_miss_rate

    def test_fetch_bandwidth_exceeds_single_xb(self, stats_medium):
        # Two XBs per cycle must beat the ~8-uop average XB length.
        assert stats_medium.fetch_bandwidth > 8.0


class TestFeatureFlags:
    def test_no_set_search_hurts(self, medium_trace):
        base = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=2048)
        ).run(medium_trace)
        crippled = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=2048, enable_set_search=False)
        ).run(medium_trace)
        assert "set_search_hits" not in crippled.extra
        assert crippled.uop_miss_rate >= base.uop_miss_rate

    def test_promotion_produces_comb_fetches(self, stats_medium):
        assert stats_medium.extra.get("promotions", 0) > 0
        assert stats_medium.extra.get("comb_fetches", 0) > 0

    def test_promotion_disabled_no_combs(self, medium_trace):
        stats = XbcFrontend(
            FrontendConfig(),
            XbcConfig(total_uops=4096, enable_promotion=False),
        ).run(medium_trace)
        assert "promotions" not in stats.extra
        assert "comb_fetches" not in stats.extra
        assert stats.total_uops == medium_trace.total_uops

    def test_split_policy_runs_and_conserves(self, medium_trace):
        stats = XbcFrontend(
            FrontendConfig(),
            XbcConfig(total_uops=4096, overlap_policy="split"),
        ).run(medium_trace)
        assert stats.total_uops == medium_trace.total_uops

    def test_single_pointer_lowers_fetch_bandwidth(self, medium_trace):
        two = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=4096, xbs_per_cycle=2)
        ).run(medium_trace)
        one = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=4096, xbs_per_cycle=1)
        ).run(medium_trace)
        assert one.fetch_bandwidth < two.fetch_bandwidth
        assert one.total_uops == medium_trace.total_uops

    def test_dynamic_placement_disabled_runs(self, medium_trace):
        stats = XbcFrontend(
            FrontendConfig(),
            XbcConfig(total_uops=4096, enable_dynamic_placement=False),
        ).run(medium_trace)
        assert stats.extra["xbc_relocations"] == 0
        assert stats.total_uops == medium_trace.total_uops

    def test_alternative_bank_geometries(self, medium_trace):
        for banks, line in ((2, 8), (8, 2)):
            stats = XbcFrontend(
                FrontendConfig(),
                XbcConfig(total_uops=4096, banks=banks, line_uops=line),
            ).run(medium_trace)
            assert stats.total_uops == medium_trace.total_uops


class TestAccounting:
    def test_structure_stats_consistent(self, stats_medium):
        assert stats_medium.structure_hits <= stats_medium.structure_lookups
        assert stats_medium.structure_fetch_cycles <= stats_medium.delivery_cycles

    def test_mode_switches_roughly_balance(self, stats_medium):
        delta = abs(
            stats_medium.switches_to_delivery - stats_medium.switches_to_build
        )
        assert delta <= 1

    def test_blocks_built_positive(self, stats_medium):
        assert stats_medium.blocks_built > 0
