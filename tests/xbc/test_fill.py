"""Tests for the XFU build algorithm (§3.3's cases)."""

import pytest

from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.xbc.config import XbcConfig
from repro.xbc.fill import XbcFillUnit, common_suffix_len
from repro.xbc.storage import XbcStorage
from repro.xbc.xbtb import Xbtb


def uops_for(ip, count):
    return [(ip + 2 * i) << 4 for i in range(count)]


def make_fill(policy="complex"):
    config = XbcConfig(total_uops=128, xbtb_entries=32, xbtb_assoc=4,
                       overlap_policy=policy)
    storage = XbcStorage(config)
    xbtb = Xbtb(config)
    stats = FrontendStats()
    return XbcFillUnit(config, storage, xbtb, stats), storage, xbtb, stats


class TestCommonSuffix:
    def test_full_match(self):
        assert common_suffix_len([1, 2, 3], [1, 2, 3]) == 3

    def test_partial(self):
        assert common_suffix_len([9, 2, 3], [1, 2, 3]) == 2

    def test_none(self):
        assert common_suffix_len([1, 2], [3, 4]) == 0

    def test_different_lengths(self):
        assert common_suffix_len([2, 3], [0, 1, 2, 3]) == 2


class TestCases:
    def test_case0_fresh_insert(self):
        fill, storage, xbtb, stats = make_fill()
        uops = uops_for(0x100, 6)
        entry, ptr = fill.install(0x900, InstrKind.COND_BRANCH, uops)
        assert ptr is not None and ptr.offset == 6
        assert storage.read_variant(0x900, ptr.mask) == uops
        assert stats.extra["xfu_fresh_inserts"] == 1
        assert entry.variants[0].length == 6

    def test_case1_contained(self):
        fill, storage, _, stats = make_fill()
        full = uops_for(0x100, 8)
        fill.install(0x900, InstrKind.COND_BRANCH, full)
        # Re-entry deeper inside the same XB: suffix of the stored copy.
        entry, ptr = fill.install(0x900, InstrKind.COND_BRANCH, full[3:])
        assert stats.extra["xfu_case1_contained"] == 1
        assert ptr.offset == 5
        assert storage.inserts == 1  # nothing new stored

    def test_case2_extension(self):
        fill, storage, _, stats = make_fill()
        suffix = uops_for(0x200, 5)
        fill.install(0x900, InstrKind.COND_BRANCH, suffix)
        longer = uops_for(0x100, 4) + suffix
        entry, ptr = fill.install(0x900, InstrKind.COND_BRANCH, longer)
        assert stats.extra["xfu_case2_extended"] == 1
        assert ptr.offset == 9
        assert storage.read_variant(0x900, ptr.mask) == longer
        assert len(entry.variants) == 1  # extended in place, not duplicated

    def test_case3_complex_variant(self):
        fill, storage, _, stats = make_fill()
        suffix = uops_for(0x300, 8)
        v1 = uops_for(0x100, 4) + suffix
        fill.install(0x900, InstrKind.COND_BRANCH, v1)
        v2 = uops_for(0x200, 4) + suffix
        entry, ptr = fill.install(0x900, InstrKind.COND_BRANCH, v2)
        assert stats.extra["xfu_case3_complex"] == 1
        assert entry.variants[-1].read(storage, 0x900) == v2
        assert len(entry.variants) == 2

    def test_exact_duplicate_is_case1(self):
        fill, storage, _, stats = make_fill()
        uops = uops_for(0x100, 6)
        fill.install(0x900, InstrKind.COND_BRANCH, uops)
        fill.install(0x900, InstrKind.COND_BRANCH, uops)
        assert stats.extra["xfu_case1_contained"] == 1
        assert storage.inserts == 1

    def test_stale_variant_reinserted(self):
        fill, storage, xbtb, stats = make_fill()
        uops = uops_for(0x100, 6)
        entry, ptr = fill.install(0x900, InstrKind.COND_BRANCH, uops)
        # Evict everything of this tag behind the XBTB's back.
        storage._purge_tag(storage.index_of(0x900), 0x900)
        entry2, ptr2 = fill.install(0x900, InstrKind.COND_BRANCH, uops)
        assert ptr2 is not None
        assert storage.read_variant(0x900, ptr2.mask) == uops
        assert stats.extra["xfu_fresh_inserts"] == 2


class TestTruncationFallback:
    def _three_variants(self):
        """Three 16-uop variants of one XB: the first two fit by sharing
        banks in different ways (§3.3's placement hint); the third finds
        every way of every non-suffix bank holding this tag already."""
        fill, storage, xbtb, stats = make_fill()
        suffix = uops_for(0x300, 4)  # one full shared line
        pointers = []
        for base in (0x100, 0x200, 0x400):
            v = uops_for(base, 12) + suffix
            entry, ptr = fill.install(0x900, InstrKind.COND_BRANCH, v)
            pointers.append((v, ptr))
        return fill, storage, xbtb, stats, entry, suffix, pointers

    def test_way_sharing_fits_two_deep_variants(self):
        _fill, storage, _xbtb, stats, entry, _suffix, pointers = (
            self._three_variants()
        )
        # The first two coexisted without truncation.
        assert stats.extra.get("xfu_case3_complex", 0) >= 2
        assert pointers[0][1] is not None
        assert pointers[1][1] is not None

    def test_saturated_set_truncates_and_places(self):
        """Regression: a tag whose deep prefixes fill the set must not
        become permanently unplaceable (it would stay IC-served forever)."""
        _fill, storage, _xbtb, stats, entry, _suffix, pointers = (
            self._three_variants()
        )
        v3, p3 = pointers[2]
        assert p3 is not None
        assert entry.variants[-1].read(storage, 0x900) == v3
        assert stats.extra.get("xfu_truncations", 0) == 1
        assert stats.extra.get("xfu_unplaced", 0) == 0

    def test_truncation_preserves_shared_suffix_entries(self):
        _fill, storage, _xbtb, _stats, _entry, suffix, pointers = (
            self._three_variants()
        )
        _v3, p3 = pointers[2]
        # An entry covering only the shared suffix still probes fine.
        assert storage.probe(0x900, p3.mask, 4, list(reversed(suffix)))


class TestSplitPolicy:
    def test_split_creates_prefix_xb(self):
        fill, storage, xbtb, stats = make_fill(policy="split")
        suffix = uops_for(0x300, 8)
        v1 = uops_for(0x100, 4) + suffix
        fill.install(0x900, InstrKind.COND_BRANCH, v1)
        prefix2 = uops_for(0x200, 4)
        v2 = prefix2 + suffix
        entry, ptr = fill.install(0x900, InstrKind.COND_BRANCH, v2)
        assert stats.extra["xfu_case3_split"] == 1
        # The returned pointer covers only the prefix...
        assert ptr.offset == 4
        prefix_ip = (0x200 + 2 * 3)  # ip of the prefix's last instruction
        assert ptr.xb_ip == prefix_ip
        # ...and the prefix entry chains to the shared suffix.
        prefix_entry = xbtb.peek(prefix_ip)
        assert prefix_entry is not None
        assert prefix_entry.nt_ptr is not None
        assert prefix_entry.nt_ptr.xb_ip == 0x900
        assert prefix_entry.nt_ptr.offset == 8
