"""Tests for branch promotion (§3.8)."""

import pytest

from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.xbc.config import XbcConfig
from repro.xbc.fill import XbcFillUnit
from repro.xbc.pointer import XbPointer
from repro.xbc.promotion import Promoter
from repro.xbc.storage import XbcStorage
from repro.xbc.xbtb import Xbtb


def uops_for(ip, count):
    return [(ip + 2 * i) << 4 for i in range(count)]


def setup(enable=True, total_uops=256):
    config = XbcConfig(total_uops=total_uops, xbtb_entries=64, xbtb_assoc=4,
                       enable_promotion=enable)
    storage = XbcStorage(config)
    xbtb = Xbtb(config)
    stats = FrontendStats()
    fill = XbcFillUnit(config, storage, xbtb, stats)
    promoter = Promoter(config, storage, xbtb, stats)
    return config, storage, xbtb, stats, fill, promoter


def install_pair(fill, xbtb, len0=5, len1=6):
    """XB0 (cond-ended) whose taken path leads to XB1."""
    uops0 = uops_for(0x100, len0)
    uops1 = uops_for(0x200, len1)
    e0, p0 = fill.install(0x900, InstrKind.COND_BRANCH, uops0)
    e1, p1 = fill.install(0xA00, InstrKind.COND_BRANCH, uops1)
    e0.set_pointer(True, p1)
    return e0, e1, uops0, uops1


class TestPromotion:
    def test_saturated_counter_promotes(self):
        _, storage, xbtb, stats, fill, promoter = setup()
        e0, e1, uops0, uops1 = install_pair(fill, xbtb)
        for _ in range(130):
            promoter.on_outcome(e0, True)
        assert e0.promoted is True
        assert e0.forward_xb_ip == 0xA00
        assert e0.forward_len1 == 6
        assert stats.extra["promotions"] == 1
        # XBcomb is a variant of XB1 containing XB0's uops then XB1's.
        comb = [v for v in e1.variants if v.length == 11]
        assert comb
        assert storage.read_variant(0xA00, comb[0].mask) == uops0 + uops1

    def test_not_taken_promotion(self):
        _, storage, xbtb, stats, fill, promoter = setup()
        e0, e1, uops0, uops1 = install_pair(fill, xbtb)
        e0.set_pointer(False, e0.pointer_for(True))
        e0.set_pointer(True, None) if False else None
        for _ in range(130):
            promoter.on_outcome(e0, False)
        assert e0.promoted is False

    def test_disabled_never_promotes(self):
        _, _, xbtb, stats, fill, promoter = setup(enable=False)
        e0, _, _, _ = install_pair(fill, xbtb)
        for _ in range(200):
            promoter.on_outcome(e0, True)
        assert e0.promoted is None
        assert "promotions" not in stats.extra

    def test_oversized_combination_skipped(self):
        _, _, xbtb, stats, fill, promoter = setup()
        e0, _, _, _ = install_pair(fill, xbtb, len0=10, len1=10)
        for _ in range(200):
            promoter.on_outcome(e0, True)
        assert e0.promoted is None
        assert stats.extra["promotions_skipped_length"] > 0

    def test_missing_pointer_skipped(self):
        _, _, xbtb, stats, fill, promoter = setup()
        uops0 = uops_for(0x100, 5)
        e0, _ = fill.install(0x900, InstrKind.COND_BRANCH, uops0)
        for _ in range(200):
            promoter.on_outcome(e0, True)
        assert e0.promoted is None

    def test_non_cond_never_promotes(self):
        _, _, xbtb, stats, fill, promoter = setup()
        uops0 = uops_for(0x100, 5)
        e0, _ = fill.install(0x900, InstrKind.CALL, uops0)
        e0.set_pointer(True, XbPointer(0xA00, 0b0001, 4))
        for _ in range(200):
            promoter.on_outcome(e0, True)
        assert e0.promoted is None


class TestDepromotion:
    def _promoted_entry(self):
        config, storage, xbtb, stats, fill, promoter = setup()
        e0, e1, _, _ = install_pair(fill, xbtb)
        for _ in range(130):
            promoter.on_outcome(e0, True)
        assert e0.promoted is True
        return e0, promoter, stats

    def test_occasional_miss_keeps_promotion(self):
        e0, promoter, stats = self._promoted_entry()
        promoter.on_outcome(e0, False)
        assert e0.promoted is True

    def test_sustained_misbehaviour_demotes(self):
        e0, promoter, stats = self._promoted_entry()
        for _ in range(40):
            promoter.on_outcome(e0, False)
        assert e0.promoted is None
        assert stats.extra["depromotions"] == 1

    def test_counter_keeps_collecting_after_promotion(self):
        e0, promoter, _ = self._promoted_entry()
        value_before = e0.bias.value
        promoter.on_outcome(e0, False)
        assert e0.bias.value == value_before - 1
