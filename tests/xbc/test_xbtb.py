"""Tests for the XBTB table and entries."""

import pytest

from repro.isa.instruction import InstrKind
from repro.xbc.config import XbcConfig
from repro.xbc.pointer import XbPointer
from repro.xbc.storage import XbcStorage
from repro.xbc.xbtb import Xbtb, XbtbEntry, XbVariant


def uops_for(ip, count):
    return [(ip + 2 * i) << 4 for i in range(count)]


@pytest.fixture()
def xbtb():
    return Xbtb(XbcConfig(total_uops=128, xbtb_entries=32, xbtb_assoc=4))


@pytest.fixture()
def storage():
    return XbcStorage(XbcConfig(total_uops=128))


class TestTable:
    def test_get_or_create_then_lookup(self, xbtb):
        entry = xbtb.get_or_create(0x900, InstrKind.COND_BRANCH)
        assert xbtb.lookup(0x900) is entry
        assert xbtb.hits == 1

    def test_lookup_miss(self, xbtb):
        assert xbtb.lookup(0x900) is None
        assert xbtb.hit_rate == 0.0

    def test_peek_no_stats(self, xbtb):
        xbtb.get_or_create(0x900, None)
        assert xbtb.peek(0x900) is not None
        assert xbtb.lookups == 0

    def test_get_or_create_idempotent(self, xbtb):
        a = xbtb.get_or_create(0x900, InstrKind.COND_BRANCH)
        b = xbtb.get_or_create(0x900, InstrKind.COND_BRANCH)
        assert a is b
        assert xbtb.allocations == 1

    def test_end_kind_upgrade_from_none(self, xbtb):
        entry = xbtb.get_or_create(0x900, None)
        xbtb.get_or_create(0x900, InstrKind.RETURN)
        assert entry.end_kind is InstrKind.RETURN

    def test_lru_eviction(self, xbtb):
        sets = xbtb.num_sets
        ips = [0x900 + 2 * sets * i for i in range(5)]  # same XBTB set
        for ip in ips[:4]:
            xbtb.get_or_create(ip, None)
        xbtb.lookup(ips[0])  # refresh
        xbtb.get_or_create(ips[4], None)
        assert xbtb.peek(ips[0]) is not None
        assert xbtb.peek(ips[1]) is None
        assert xbtb.evictions == 1

    def test_resident_entries(self, xbtb):
        xbtb.get_or_create(0x900, None)
        xbtb.get_or_create(0x902, None)
        assert xbtb.resident_entries() == 2


class TestEntry:
    def test_pointer_roundtrip(self):
        entry = XbtbEntry(0x900, InstrKind.COND_BRANCH)
        taken_ptr = XbPointer(0xA00, 0b0001, 4)
        nt_ptr = XbPointer(0xB00, 0b0010, 6)
        entry.set_pointer(True, taken_ptr)
        entry.set_pointer(False, nt_ptr)
        assert entry.pointer_for(True) is taken_ptr
        assert entry.pointer_for(False) is nt_ptr

    def test_demote_clears_forward_state(self):
        entry = XbtbEntry(0x900, InstrKind.COND_BRANCH)
        entry.promoted = True
        entry.forward_xb_ip = 0xA00
        entry.forward_len1 = 5
        entry.demote()
        assert entry.promoted is None
        assert entry.forward_xb_ip is None
        assert entry.forward_len1 == 0

    def test_valid_variants_drops_stale(self, storage):
        entry = XbtbEntry(0x900, None)
        uops = uops_for(0x100, 8)
        mask = storage.insert_xb(0x900, uops)
        entry.variants.append(XbVariant(mask, 8))
        entry.variants.append(XbVariant(0b1111, 12))  # never stored
        alive = entry.valid_variants(storage)
        assert len(alive) == 1
        assert alive[0].mask == mask
        assert len(entry.variants) == 1

    def test_variant_covering_picks_smallest_sufficient(self, storage):
        entry = XbtbEntry(0x900, None)
        suffix = uops_for(0x300, 8)
        m1 = storage.insert_xb(0x900, suffix)
        entry.variants.append(XbVariant(m1, 8))
        mapping = storage.probe(0x900, m1, 8)
        longer = uops_for(0x100, 4) + suffix
        m2 = storage.add_variant(0x900, longer, mapping, reuse_len=8,
                                 reuse_mask=m1)
        entry.variants.append(XbVariant(m2, 12))
        chosen = entry.variant_covering(storage, 6)
        assert chosen.length == 8
        chosen = entry.variant_covering(storage, 10)
        assert chosen.length == 12
        assert entry.variant_covering(storage, 16) is None
