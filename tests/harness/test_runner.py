"""Tests for the frontend factory."""

import pytest

from repro.bbtc.frontend import BbtcFrontend
from repro.common.errors import ConfigError
from repro.frontend.decoded_cache import DecodedCacheFrontend
from repro.frontend.ic_frontend import ICFrontend
from repro.harness.runner import FRONTEND_KINDS, make_frontend, run_frontend
from repro.tc.frontend import TcFrontend
from repro.xbc.frontend import XbcFrontend


def test_factory_builds_every_kind():
    expected = {
        "ic": ICFrontend,
        "dc": DecodedCacheFrontend,
        "tc": TcFrontend,
        "xbc": XbcFrontend,
        "bbtc": BbtcFrontend,
    }
    for kind in FRONTEND_KINDS:
        assert isinstance(make_frontend(kind), expected[kind])


def test_unknown_kind_rejected():
    with pytest.raises(ConfigError):
        make_frontend("l1")


def test_total_uops_applied():
    tc = make_frontend("tc", total_uops=2048)
    assert tc.tc_config.total_uops == 2048
    xbc = make_frontend("xbc", total_uops=2048)
    assert xbc.xbc_config.total_uops == 2048


def test_assoc_override():
    tc = make_frontend("tc", assoc=2)
    assert tc.tc_config.assoc == 2
    xbc = make_frontend("xbc", assoc=4)
    assert xbc.xbc_config.ways_per_bank == 4


def test_run_frontend_end_to_end(small_trace):
    stats = run_frontend("xbc", small_trace, total_uops=2048)
    assert stats.total_uops == small_trace.total_uops
    assert stats.frontend == "xbc"
