"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST = ["--traces-per-suite", "1", "--length", "12000"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_fig1(capsys):
    assert main(["fig1"] + FAST) == 0
    out = capsys.readouterr().out
    assert "Figure 1" in out
    assert "paper" in out


def test_fig8(capsys):
    assert main(["fig8", "--size", "4096"] + FAST) == 0
    assert "Figure 8" in capsys.readouterr().out


def test_fig9(capsys):
    assert main(["fig9", "--sizes", "2048", "8192"] + FAST) == 0
    assert "Figure 9" in capsys.readouterr().out


def test_fig10(capsys):
    assert main(["fig10", "--assocs", "1", "2", "--size", "4096"] + FAST) == 0
    assert "Figure 10" in capsys.readouterr().out


def test_claims(capsys):
    args = ["claims", "--sizes", "2048", "4096",
            "--reference-size", "2048"] + FAST
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "T2" in out and "T3" in out


def test_claims_csv(tmp_path, capsys):
    path = str(tmp_path / "claims.csv")
    args = ["claims", "--sizes", "2048", "4096",
            "--reference-size", "2048", "--csv", path] + FAST
    assert main(args) == 0
    with open(path) as handle:
        header = handle.readline()
    assert header.strip() == "metric,value"


def test_jobs_flag_matches_serial_output(capsys):
    args = ["fig9", "--sizes", "2048"] + FAST
    assert main(args + ["--jobs", "1", "--no-cache"]) == 0
    serial = capsys.readouterr().out
    assert main(args + ["--jobs", "2", "--no-cache"]) == 0
    parallel = capsys.readouterr().out
    assert parallel == serial


def test_warm_cache_rerun_is_identical(tmp_path, capsys):
    """Second run hits the persistent cache and prints the same table."""
    cache = str(tmp_path / "cache")
    args = ["fig9", "--sizes", "2048", "--cache-dir", cache] + FAST
    assert main(args) == 0
    cold = capsys.readouterr().out
    assert main(args) == 0
    warm = capsys.readouterr().out
    assert warm == cold
    import os
    assert os.listdir(os.path.join(cache, "results"))


def test_run_command(capsys):
    assert main(["run", "xbc", "--length", "12000", "--size", "2048"]) == 0
    out = capsys.readouterr().out
    assert "frontend=xbc" in out
    assert "uop miss rate" in out


def test_run_every_frontend(capsys):
    for kind in ("ic", "tc", "bbtc"):
        assert main(["run", kind, "--length", "8000"]) == 0


def test_info(capsys):
    assert main(["info"] + FAST) == 0
    out = capsys.readouterr().out
    assert "specint" in out and "games" in out
    assert "[trace cache]" in out
    assert "[persistent cache]" in out


def test_info_reports_populated_cache(tmp_path, capsys):
    cache = str(tmp_path / "cache")
    assert main(["fig9", "--sizes", "2048", "--cache-dir", cache] + FAST) == 0
    capsys.readouterr()
    assert main(["info", "--cache-dir", cache] + FAST) == 0
    out = capsys.readouterr().out
    assert f"[persistent cache] {cache}:" in out
    assert "results entries=0" not in out


def test_run_command_selects_registry_trace(capsys):
    """run/analyze address the same trace the registry would build."""
    assert main(["run", "xbc", "--suite", "games", "--index", "1",
                 "--length", "8000", "--size", "2048"]) == 0
    out = capsys.readouterr().out
    assert "games-1" in out


def test_suite_filter(capsys):
    assert main(["fig1", "--suite", "games"] + FAST) == 0
    out = capsys.readouterr().out
    assert "games" in out
    assert "sysmark" not in out.replace("sysmark |", "")


def test_generate_command(tmp_path, capsys):
    out = str(tmp_path / "traces")
    assert main(["generate", "--traces-per-suite", "1",
                 "--length", "5000", "--out", out]) == 0
    import os
    files = sorted(os.listdir(out))
    assert files == ["games-0.trace", "specint-0.trace", "sysmark-0.trace"]
    from repro.trace.tracefile import load_trace
    trace = load_trace(os.path.join(out, "specint-0.trace"))
    assert trace.total_uops >= 5000


def test_analyze_command(capsys):
    assert main(["analyze", "--length", "15000"]) == 0
    out = capsys.readouterr().out
    assert "redundancy factor" in out
    assert "XB usage" in out
    assert "reuse-distance" in out


def test_scenario_command(tmp_path, capsys):
    path = str(tmp_path / "scenario.csv")
    args = ["scenario", "--server-uops", "20000", "--csv", path] + FAST
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "server-web" in out and "specint" in out
    assert "MEAN:suite" in out and "MEAN:server" in out
    with open(path) as handle:
        header = handle.readline()
    assert header.strip() == "scenario,group,tc_hit,xbc_hit,delta,inverted"


def test_scenario_can_drop_server_group(capsys):
    assert main(["scenario", "--server-traces", "0"] + FAST) == 0
    out = capsys.readouterr().out
    assert "server-" not in out


def test_info_lists_profiles(capsys):
    assert main(["info"] + FAST) == 0
    out = capsys.readouterr().out
    assert "[profiles]" in out
    assert "server-oltp" in out and "server-micro" in out


def test_info_json_includes_profiles(capsys):
    import json
    assert main(["info", "--json"] + FAST) == 0
    data = json.loads(capsys.readouterr().out)
    names = [entry["name"] for entry in data["profiles"]]
    assert "server-web" in names and "specint" in names


def test_fuzz_run_writes_corpus(tmp_path, capsys):
    path = str(tmp_path / "findings.json")
    args = ["fuzz", "run", "--budget", "4", "--seed", "1",
            "--length", "6000", "--out", path, "--no-cache"]
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "[fuzz] corpus written to" in out
    from repro.scenario.findings import FindingsCorpus
    corpus = FindingsCorpus.load(path)
    assert corpus.meta["seed"] == 1
    assert corpus.meta["base"] == "server-web"


def _pinned_corpus(path):
    """A one-finding corpus for the known static_uops=2101 inversion."""
    from repro.scenario.findings import Finding, FindingsCorpus
    from repro.scenario.search import evaluate_point, fuzz_program_seed
    from repro.scenario.space import ParameterSpace

    space = ParameterSpace.default("server-web")
    point = space.point_from_base()
    point["static_uops"] = 2_101.0
    evaluation = evaluate_point(
        space, point, program_seed=fuzz_program_seed(1),
        total_uops=8192, length_uops=40_000,
    )
    corpus = FindingsCorpus(meta={"seed": 1})
    corpus.add(Finding.from_evaluation(
        evaluation, "server-web", deltas={"static_uops": 2_101.0}
    ))
    corpus.save(path)
    return corpus


def test_fuzz_replay_and_report(tmp_path, capsys):
    path = str(tmp_path / "findings.json")
    corpus = _pinned_corpus(path)
    finding = corpus.findings[0]

    assert main(["fuzz", "replay", "--corpus", path, "--no-cache"]) == 0
    assert "OK" in capsys.readouterr().out

    args = ["fuzz", "replay", "--corpus", path,
            "--id", finding.id[:8], "--no-cache"]
    assert main(args) == 0
    assert finding.id[:12] in capsys.readouterr().out

    assert main(["fuzz", "report", "--corpus", path]) == 0
    out = capsys.readouterr().out
    assert finding.id[:12] in out
    assert "static_uops" in out


def test_fuzz_replay_detects_corruption(tmp_path, capsys):
    import json
    path = str(tmp_path / "findings.json")
    _pinned_corpus(path)
    with open(path) as handle:
        payload = json.load(handle)
    payload["findings"][0]["trace_hash"] = "deadbeef"
    with open(path, "w") as handle:
        json.dump(payload, handle)
    assert main(["fuzz", "replay", "--corpus", path, "--no-cache"]) == 1
    assert "MISMATCH" in capsys.readouterr().out


def test_fuzz_replay_empty_corpus_fails(tmp_path, capsys):
    from repro.scenario.findings import FindingsCorpus
    path = str(tmp_path / "findings.json")
    FindingsCorpus().save(path)
    assert main(["fuzz", "replay", "--corpus", path]) == 1


def test_scenario_includes_findings_group(tmp_path, capsys):
    path = str(tmp_path / "findings.json")
    _pinned_corpus(path)
    args = ["scenario", "--server-traces", "0",
            "--findings", path] + FAST
    assert main(args) == 0
    out = capsys.readouterr().out
    assert "MEAN:finding" in out
    assert "INVERSION" in out
