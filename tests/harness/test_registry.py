"""Tests for the trace registry."""

import pytest

from repro.common.errors import ConfigError
from repro.harness.registry import (
    PAPER_COUNTS,
    TraceSpec,
    clear_trace_cache,
    default_registry,
    make_trace,
    registry_spec,
    scenario_spec,
    server_registry,
    trace_cache_stats,
)
from repro.program.profiles import (
    PROFILE_STATIC_UOPS,
    SERVER_NAMES,
    SUITE_NAMES,
)


def test_default_counts():
    specs = default_registry(traces_per_suite=2)
    assert len(specs) == 2 * len(SUITE_NAMES)


def test_full_matches_paper():
    specs = default_registry(full=True)
    assert len(specs) == sum(PAPER_COUNTS.values()) == 21
    for suite in SUITE_NAMES:
        count = sum(1 for s in specs if s.suite == suite)
        assert count == PAPER_COUNTS[suite]


def test_suite_filter():
    specs = default_registry(traces_per_suite=2, suites=["games"])
    assert all(s.suite == "games" for s in specs)
    assert len(specs) == 2


def test_unique_names_and_seeds():
    specs = default_registry(full=True)
    names = [s.name for s in specs]
    seeds = [s.seed for s in specs]
    assert len(set(names)) == len(names)
    assert len(set(seeds)) == len(seeds)


def test_footprints_vary_within_suite():
    specs = default_registry(traces_per_suite=3, suites=["specint"])
    sizes = [s.static_uops for s in specs]
    assert len(set(sizes)) == 3


def test_make_trace_cached_and_deterministic():
    clear_trace_cache()
    spec = default_registry(traces_per_suite=1, length_uops=5000)[0]
    t1 = make_trace(spec)
    t2 = make_trace(spec)
    assert t1 is t2  # cache identity
    clear_trace_cache()
    t3 = make_trace(spec)
    assert t3 is not t1
    assert len(t3) == len(t1)
    assert all(a.ip == b.ip for a, b in zip(t1.records, t3.records))


def test_registry_spec_matches_registry_entries():
    """registry_spec is the single source of truth the registry uses."""
    specs = default_registry(traces_per_suite=3, length_uops=40_000)
    for spec in specs:
        assert registry_spec(spec.suite, spec.index, 40_000) == spec


def test_registry_spec_rejects_bad_input():
    with pytest.raises(ConfigError):
        registry_spec("nosuchsuite", 0)
    with pytest.raises(ConfigError):
        registry_spec("specint", -1)


def test_trace_cache_stats_count_hits_and_misses():
    clear_trace_cache()
    spec = registry_spec("games", 0, 5_000)
    make_trace(spec)           # miss (generated)
    make_trace(spec)           # hit
    make_trace(spec)           # hit
    stats = trace_cache_stats()
    assert stats.entries == 1
    assert stats.bytes > 0
    assert stats.misses == 1
    assert stats.hits == 2
    clear_trace_cache()


def test_clear_trace_cache_returns_final_stats_then_resets():
    clear_trace_cache()
    spec = registry_spec("games", 0, 5_000)
    make_trace(spec)
    make_trace(spec)
    final = clear_trace_cache()
    assert final.entries == 1
    assert final.hits == 1 and final.misses == 1
    after = trace_cache_stats()
    assert after.entries == 0
    assert after.hits == 0 and after.misses == 0


def test_trace_length_respected():
    clear_trace_cache()
    spec = default_registry(traces_per_suite=1, length_uops=4000)[0]
    trace = make_trace(spec)
    assert 4000 <= trace.total_uops < 4100
    clear_trace_cache()


# -- scenario_spec / server_registry -----------------------------------------


def test_scenario_spec_delegates_for_suites():
    assert scenario_spec("specint", 1, 9_000) == registry_spec(
        "specint", 1, 9_000
    )


def test_scenario_spec_suite_static_override_keeps_seed():
    base = registry_spec("games", 0, 9_000)
    spec = scenario_spec("games", 0, 9_000, static_uops=4_000)
    assert spec.seed == base.seed
    assert spec.static_uops == 4_000
    assert spec.suite == "games"


def test_scenario_spec_server_defaults_to_native_target():
    spec = scenario_spec("server-web", 0, 9_000)
    assert spec.suite == "server-web"
    assert spec.static_uops == round(
        PROFILE_STATIC_UOPS["server-web"] * 0.90
    )
    smaller = scenario_spec("server-web", 0, 9_000, static_uops=30_000)
    assert smaller.static_uops == 30_000
    assert smaller.seed == spec.seed


def test_scenario_spec_seeds_are_stable_and_distinct():
    seeds = {
        scenario_spec(name, index, 9_000, static_uops=30_000).seed
        for name in SERVER_NAMES
        for index in range(3)
    }
    assert len(seeds) == 3 * len(SERVER_NAMES)
    assert scenario_spec("server-web", 0).seed == scenario_spec(
        "server-web", 0
    ).seed


def test_scenario_spec_rejects_bad_input():
    with pytest.raises(ConfigError):
        scenario_spec("server-mainframe", 0)
    with pytest.raises(ConfigError):
        scenario_spec("server-web", -1)


def test_server_registry_counts_and_override():
    specs = server_registry(traces_per_profile=2, static_uops=30_000)
    assert len(specs) == 2 * len(SERVER_NAMES)
    assert all(s.static_uops == 30_000 for s in specs)
    names = [s.name for s in specs]
    assert len(set(names)) == len(names)


def test_server_registry_profile_filter():
    specs = server_registry(profiles=["server-micro"])
    assert len(specs) == 1
    assert specs[0].suite == "server-micro"
