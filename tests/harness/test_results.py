"""Tests for CSV result export."""

import csv
import io

import pytest

from repro.harness import results
from repro.harness.experiments.ablations import AblationRow
from repro.harness.experiments.claims import ClaimsResult
from repro.harness.experiments.fig8 import Fig8Row
from repro.harness.experiments.fig9 import Fig9Result
from repro.harness.experiments.fig10 import Fig10Result
from repro.harness.experiments.fig1 import Fig1Result
from repro.trace.blockstats import BlockLengthStats


def parse(text):
    return list(csv.reader(io.StringIO(text)))


def test_fig9_table_roundtrip():
    result = Fig9Result(sizes=[1024, 2048])
    result.tc_miss = {1024: 0.2, 2048: 0.1}
    result.xbc_miss = {1024: 0.1, 2048: 0.05}
    headers, rows = results.fig9_table(result)
    parsed = parse(results.to_csv((headers, rows)))
    assert parsed[0] == ["total_uops", "tc_miss", "xbc_miss", "reduction"]
    assert float(parsed[1][3]) == pytest.approx(0.5)
    assert len(parsed) == 3


def test_fig8_table():
    rows_in = [Fig8Row("a-0", "a", 8.0, 7.6, 11.0, 10.0)]
    headers, rows = results.fig8_table(rows_in)
    assert rows[0][0] == "a-0"
    assert rows[0][4] == pytest.approx(0.95)


def test_fig10_table():
    result = Fig10Result(assocs=[1, 2])
    result.tc_miss = {1: 0.3, 2: 0.2}
    result.xbc_miss = {1: 0.1, 2: 0.08}
    headers, rows = results.fig10_table(result)
    assert len(rows) == 2
    assert headers[0] == "assoc"


def test_fig1_table():
    stats = BlockLengthStats()
    stats.basic_block.add(7)
    stats.xb.add(8)
    stats.xb_promoted.add(10)
    stats.dual_xb.add(12)
    result = Fig1Result(per_suite={"specint": stats}, overall=stats)
    headers, rows = results.fig1_table(result)
    assert rows[0][0] == "specint"
    assert rows[-1][0] == "ALL"
    assert rows[0][1] == 7.0


def test_claims_table():
    fig9 = Fig9Result(sizes=[1024])
    fig9.tc_miss = {1024: 0.2}
    fig9.xbc_miss = {1024: 0.1}
    claims = ClaimsResult(fig9=fig9, reference_size=1024)
    claims.reductions = [0.5]
    claims.tc_equivalent_size = 2048
    headers, rows = results.claims_table(claims)
    values = {row[0]: row[1] for row in rows}
    assert values["tc_enlargement"] == pytest.approx(1.0)


def test_ablations_table():
    rows_in = [AblationRow("baseline", 0.05, 7.7, 9.6, {})]
    headers, rows = results.ablations_table(rows_in)
    assert rows[0] == ["baseline", 0.05, 7.7, 9.6]


def test_write_csv(tmp_path):
    path = str(tmp_path / "out.csv")
    results.write_csv((["a", "b"], [[1, 2]]), path)
    with open(path) as handle:
        assert handle.read().strip().splitlines() == ["a,b", "1,2"]


def test_cli_all_command(tmp_path, capsys):
    from repro.cli import main

    out = str(tmp_path / "results")
    code = main([
        "all", "--traces-per-suite", "1", "--length", "10000", "--out", out,
    ])
    assert code == 0
    import os
    names = sorted(os.listdir(out))
    assert "fig9.csv" in names and "fig9.txt" in names
    assert len(names) == 12


def test_cli_csv_option(tmp_path, capsys):
    from repro.cli import main

    path = str(tmp_path / "fig8.csv")
    main(["fig8", "--traces-per-suite", "1", "--length", "10000",
          "--csv", path])
    with open(path) as handle:
        header = handle.readline().strip()
    assert header == "trace,suite,tc_bandwidth,xbc_bandwidth,ratio"
