"""Tests for the figure-regeneration experiments (tiny registry)."""

import pytest

from repro.harness.experiments import (
    format_ablations,
    format_claims,
    format_fig1,
    format_fig8,
    format_fig9,
    format_fig10,
    run_ablations,
    run_claims,
    run_fig1,
    run_fig8,
    run_fig9,
    run_fig10,
)
from repro.harness.registry import default_registry
from repro.xbc.config import XbcConfig


@pytest.fixture(scope="module")
def tiny_specs():
    # One short trace per suite keeps the whole module under a minute.
    return default_registry(traces_per_suite=1, length_uops=25_000)


class TestFig1:
    def test_runs_and_formats(self, tiny_specs):
        result = run_fig1(tiny_specs)
        assert set(result.per_suite) == {"specint", "sysmark", "games"}
        text = format_fig1(result)
        assert "Figure 1" in text
        assert "paper" in text

    def test_series_ordering(self, tiny_specs):
        means = run_fig1(tiny_specs).overall.means()
        assert means["XB"] >= means["basic block"]
        assert means["XB w/ promotion"] >= means["XB"]
        assert means["dual XB"] > means["XB"]

    def test_histogram_mode(self, tiny_specs):
        text = format_fig1(run_fig1(tiny_specs), histograms=True)
        assert "length distribution" in text


class TestFig8:
    def test_bandwidths_comparable(self, tiny_specs):
        rows = run_fig8(tiny_specs, total_uops=4096)
        assert len(rows) == len(tiny_specs)
        for row in rows:
            assert row.tc_bandwidth > 0
            assert row.xbc_bandwidth > 0
            assert 0.5 < row.ratio < 2.0  # "negligible difference"
        text = format_fig8(rows)
        assert "MEAN" in text


class TestFig9:
    def test_xbc_wins_at_every_size(self, tiny_specs):
        result = run_fig9(tiny_specs, sizes=(2048, 8192))
        for size in result.sizes:
            assert result.xbc_miss[size] < result.tc_miss[size]
            assert 0.0 < result.reduction(size) < 1.0
        assert "Figure 9" in format_fig9(result)

    def test_miss_rate_monotone_in_size(self, tiny_specs):
        result = run_fig9(tiny_specs, sizes=(1024, 8192))
        assert result.tc_miss[8192] < result.tc_miss[1024]
        assert result.xbc_miss[8192] < result.xbc_miss[1024]


class TestFig10:
    def test_more_assoc_fewer_misses(self, tiny_specs):
        result = run_fig10(tiny_specs, assocs=(1, 4), total_uops=8192)
        assert result.tc_miss[4] <= result.tc_miss[1]
        assert result.xbc_miss[4] <= result.xbc_miss[1]
        assert result.reduction_from_dm("tc", 4) >= 0.0
        assert "Figure 10" in format_fig10(result)


class TestClaims:
    def test_claims_computed(self, tiny_specs):
        result = run_claims(tiny_specs, sizes=(2048, 4096, 8192),
                            reference_size=4096)
        assert result.reductions
        assert all(0.0 < r < 1.0 for r in result.reductions)
        assert result.tc_equivalent_size > result.reference_size
        assert result.tc_enlargement > 0.0
        text = format_claims(result)
        assert "T2" in text and "T3" in text

    def test_claims_reuse_fig9(self, tiny_specs):
        fig9 = run_fig9(tiny_specs, sizes=(2048, 4096))
        result = run_claims(tiny_specs, reference_size=2048, fig9=fig9)
        assert result.fig9 is fig9


class TestAblations:
    def test_selected_variants(self, tiny_specs):
        variants = {
            "baseline": XbcConfig(total_uops=4096),
            "no-set-search": XbcConfig(total_uops=4096,
                                       enable_set_search=False),
        }
        rows = run_ablations(tiny_specs, variants=variants)
        assert [r.name for r in rows] == ["baseline", "no-set-search"]
        assert rows[1].miss_rate >= rows[0].miss_rate
        text = format_ablations(rows)
        assert "no-set-search" in text
