"""Tests for the XBC parameter-sweep utility."""

import pytest

from repro.common.errors import ConfigError
from repro.harness.registry import default_registry
from repro.harness.sweep import format_sweep, parse_param, run_sweep
from repro.xbc.config import XbcConfig


@pytest.fixture(scope="module")
def tiny_specs():
    return default_registry(traces_per_suite=1, length_uops=8000,
                            suites=["specint"])


class TestParseParam:
    def test_ints(self):
        assert parse_param("banks=2,4,8") == {"banks": [2, 4, 8]}

    def test_bools(self):
        assert parse_param("enable_promotion=true,false") == {
            "enable_promotion": [True, False]
        }

    def test_strings(self):
        assert parse_param("overlap_policy=complex,split") == {
            "overlap_policy": ["complex", "split"]
        }

    def test_floats(self):
        assert parse_param("x=1.5") == {"x": [1.5]}

    def test_missing_equals_rejected(self):
        with pytest.raises(ConfigError):
            parse_param("banks")


class TestRunSweep:
    def test_cross_product(self, tiny_specs):
        rows = run_sweep(
            {"ways_per_bank": [1, 2], "enable_promotion": [True, False]},
            tiny_specs,
            base=XbcConfig(total_uops=1024),
        )
        assert len(rows) == 4
        assert all(row.valid for row in rows)
        assert all(0.0 < row.miss_rate < 1.0 for row in rows)

    def test_invalid_combo_flagged_not_fatal(self, tiny_specs):
        # 3 ways with 4 banks x 4 uops on 1024 uops: sets not a power
        # of two -> invalid, but the sweep continues.
        rows = run_sweep(
            {"ways_per_bank": [2, 3]},
            tiny_specs,
            base=XbcConfig(total_uops=1024),
        )
        validity = {row.params["ways_per_bank"]: row.valid for row in rows}
        assert validity[2] is True
        assert validity[3] is False

    def test_unknown_field_rejected(self, tiny_specs):
        with pytest.raises(ConfigError):
            run_sweep({"not_a_field": [1]}, tiny_specs)

    def test_format(self, tiny_specs):
        rows = run_sweep({"ways_per_bank": [1]}, tiny_specs,
                         base=XbcConfig(total_uops=1024))
        text = format_sweep(rows)
        assert "ways_per_bank=1" in text
        assert "miss %" in text


def test_cli_sweep(capsys):
    from repro.cli import main

    assert main([
        "sweep", "--traces-per-suite", "1", "--length", "8000",
        "--param", "xbs_per_cycle=1,2", "--size", "1024",
    ]) == 0
    out = capsys.readouterr().out
    assert "xbs_per_cycle=1" in out and "xbs_per_cycle=2" in out
