"""Tests for the Figure-1 block-length statistics."""

import pytest

from repro.isa.instruction import Instruction, InstrKind
from repro.trace.blockstats import (
    QUOTA,
    compute_block_stats,
    measure_branch_bias,
    monotonic_branches,
)
from repro.trace.record import DynInstr, Trace


def alu(ip, uops=1, size=2):
    return Instruction(ip=ip, size=size, kind=InstrKind.ALU, num_uops=uops)


def cond(ip, target=0x9000):
    return Instruction(
        ip=ip, size=2, kind=InstrKind.COND_BRANCH, num_uops=1, target=target
    )


def jump(ip, target=0x9000):
    return Instruction(ip=ip, size=2, kind=InstrKind.JUMP, num_uops=1, target=target)


def rec(instr, taken=False, next_ip=None):
    return DynInstr(instr=instr, taken=taken, next_ip=next_ip or instr.next_ip)


def make_trace(records):
    return Trace(records=records, name="hand", suite="test")


class TestHandBuiltTraces:
    def test_simple_blocks(self):
        # 3 ALU uops then a cond branch: one 4-uop block in every series.
        records = [
            rec(alu(0x100)), rec(alu(0x102)), rec(alu(0x104)),
            rec(cond(0x106), taken=True, next_ip=0x200),
        ]
        stats = compute_block_stats(make_trace(records))
        assert stats.basic_block.items() == [(4, 1)]
        assert stats.xb.items() == [(4, 1)]

    def test_jump_ends_basic_block_but_not_xb(self):
        records = [
            rec(alu(0x100)),
            rec(jump(0x102), taken=True, next_ip=0x200),
            rec(alu(0x200)),
            rec(cond(0x202), taken=False),
        ]
        stats = compute_block_stats(make_trace(records))
        # basic blocks: [alu, jump] and [alu, cond] => two 2-uop blocks
        assert stats.basic_block.items() == [(2, 2)]
        # XB: jump does not end => one 4-uop block
        assert stats.xb.items() == [(4, 1)]

    def test_quota_cut_at_16(self):
        records = [rec(alu(0x100 + 2 * i)) for i in range(20)]
        records.append(rec(cond(0x100 + 40), taken=False))
        stats = compute_block_stats(make_trace(records))
        lengths = sorted(v for v, _ in stats.xb.items())
        assert max(lengths) <= QUOTA
        assert sum(v * c for v, c in stats.xb.items()) == 21

    def test_instruction_atomicity_at_quota(self):
        # 15 uops then a 4-uop instruction: the block must cut at 15.
        records = [rec(alu(0x100 + 2 * i)) for i in range(15)]
        records.append(rec(alu(0x200, uops=4)))
        records.append(rec(cond(0x204), taken=False))
        stats = compute_block_stats(make_trace(records))
        assert (15, 1) in stats.xb.items()
        assert (5, 1) in stats.xb.items()

    def test_dual_xb_pairs_and_caps(self):
        # Two XBs of 10 uops each: the dual unit caps at the 16-uop quota.
        records = []
        for base in (0x100, 0x300):
            records.extend(rec(alu(base + 2 * i)) for i in range(9))
            records.append(rec(cond(base + 18), taken=False))
        stats = compute_block_stats(make_trace(records))
        assert stats.dual_xb.items() == [(16, 1)]

    def test_trailing_open_block_flushed(self):
        records = [rec(alu(0x100)), rec(alu(0x102))]
        stats = compute_block_stats(make_trace(records))
        assert stats.basic_block.total == 1
        assert stats.basic_block.mean == 2.0


class TestPromotionSeries:
    def _biased_loop_trace(self, bias_ip=0x106, executions=100):
        """A monotonically not-taken branch between two runs."""
        records = []
        for _ in range(executions):
            records.append(rec(alu(0x100)))
            records.append(rec(alu(0x102)))
            records.append(rec(alu(0x104)))
            records.append(rec(cond(bias_ip), taken=False))
            records.append(rec(alu(0x108)))
            records.append(rec(cond(0x10A, target=0x100), taken=True,
                                next_ip=0x100))
        return make_trace(records)

    def test_monotonic_branch_merges_blocks(self):
        stats = compute_block_stats(self._biased_loop_trace())
        # Without promotion: XBs of 4 and 2 uops. With promotion the
        # not-taken cond at 0x106 stops ending blocks: 6-uop blocks appear.
        assert stats.xb.mean < stats.xb_promoted.mean
        assert any(v >= 6 for v, _ in stats.xb_promoted.items())

    def test_bias_measurement(self):
        trace = self._biased_loop_trace()
        bias = measure_branch_bias(trace.records)
        assert bias[0x106] == 0.0
        assert bias[0x10A] == 1.0

    def test_monotonic_requires_min_executions(self):
        trace = self._biased_loop_trace(executions=3)
        bias = measure_branch_bias(trace.records)
        counts = {0x106: 3, 0x10A: 3}
        promoted = monotonic_branches(bias, counts, min_executions=16)
        assert not promoted[0x106]
        promoted = monotonic_branches(bias, counts, min_executions=2)
        assert promoted[0x106]


class TestOnRealTrace:
    def test_means_ordering(self, small_trace):
        stats = compute_block_stats(small_trace)
        means = stats.means()
        assert means["XB"] >= means["basic block"]
        assert means["XB w/ promotion"] >= means["XB"]
        assert means["dual XB"] >= means["XB"]
        assert all(0 < m <= QUOTA for m in means.values())

    def test_all_uops_accounted(self, small_trace):
        stats = compute_block_stats(small_trace)
        bb_uops = sum(v * c for v, c in stats.basic_block.items())
        xb_uops = sum(v * c for v, c in stats.xb.items())
        assert bb_uops == small_trace.total_uops
        assert xb_uops == small_trace.total_uops

    def test_merged_with(self, small_trace):
        stats = compute_block_stats(small_trace)
        merged = stats.merged_with(stats)
        assert merged.xb.total == 2 * stats.xb.total
        assert merged.xb.mean == pytest.approx(stats.xb.mean)
