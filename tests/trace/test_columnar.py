"""Representation-equivalence tests for the columnar trace core.

The columnar rewrite keeps two views of every trace: the packed-integer
columns the frontends iterate, and the legacy :class:`DynInstr` object
view.  These tests pin, across all three suite profiles and several
seeds, that the two views decode to identical streams — and that
``blockstats`` (which now reads the columns) is unchanged from what the
record view implies.
"""

import pytest

from repro.harness.registry import clear_trace_cache, make_trace, registry_spec
from repro.isa.instruction import KIND_CODE
from repro.program.profiles import SUITE_NAMES
from repro.trace.blockstats import compute_block_stats
from repro.trace.record import Trace

_CASES = [(suite, seed) for suite in SUITE_NAMES for seed in range(3)]


def _make(suite: str, seed: int) -> Trace:
    clear_trace_cache()
    trace = make_trace(registry_spec(suite, seed, 12_000))
    clear_trace_cache()
    return trace


@pytest.mark.parametrize("suite,seed", _CASES)
def test_columns_and_record_view_decode_identically(suite, seed):
    trace = _make(suite, seed)
    records = trace.records
    assert len(records) == len(trace.ips)
    for i, record in enumerate(records):
        instr = record.instr
        assert trace.ips[i] == instr.ip
        assert bool(trace.takens[i]) == record.taken
        assert trace.next_ips[i] == record.next_ip
        assert trace.kinds[i] == KIND_CODE[instr.kind]
        assert trace.nuops[i] == instr.num_uops
        assert trace.snexts[i] == instr.next_ip
        assert trace.instr_table[instr.ip] == instr


@pytest.mark.parametrize("suite,seed", _CASES)
def test_legacy_construction_rebuilds_identical_columns(suite, seed):
    """A trace rebuilt from its own record view has equal columns."""
    trace = _make(suite, seed)
    rebuilt = Trace(
        records=trace.records,
        name=trace.name,
        suite=trace.suite,
        seed=trace.seed,
    )
    assert rebuilt.ips == trace.ips
    assert rebuilt.takens == trace.takens
    assert rebuilt.next_ips == trace.next_ips
    assert rebuilt.kinds == trace.kinds
    assert rebuilt.nuops == trace.nuops
    assert rebuilt.snexts == trace.snexts
    assert rebuilt.instr_table == trace.instr_table


@pytest.mark.parametrize("suite", SUITE_NAMES)
def test_blockstats_match_between_views(suite):
    """blockstats off the columns == blockstats off the record view."""
    trace = _make(suite, 0)
    legacy = Trace(records=trace.records, name=trace.name,
                   suite=trace.suite, seed=trace.seed)
    a = compute_block_stats(trace)
    b = compute_block_stats(legacy)
    for series in ("basic_block", "xb", "xb_promoted", "dual_xb"):
        ha = getattr(a, series)
        hb = getattr(b, series)
        assert ha._counts == hb._counts, series
    assert a.means() == b.means()
