"""Tests for the trace-driven executor."""

from dataclasses import replace

import pytest

from repro.common.errors import SimulationError
from repro.isa.instruction import InstrKind
from repro.program.generator import generate_program
from repro.program.profiles import profile_for_suite
from repro.trace.executor import TraceExecutor, execute_program


@pytest.fixture(scope="module")
def program():
    profile = replace(profile_for_suite("specint"), num_functions=12)
    return generate_program(profile, seed=21, name="exec-test", suite="specint")


class TestBudget:
    def test_budget_respected_with_block_slack(self, program):
        trace = execute_program(program, max_uops=5000)
        # May overshoot by at most one block (a block is < 100 uops).
        assert 5000 <= trace.total_uops < 5100

    def test_instruction_cap(self, program):
        trace = TraceExecutor(program).run(max_uops=10**9, max_instructions=500)
        assert 500 <= len(trace) < 560


class TestStreamConsistency:
    def test_next_ip_links_the_stream(self, program):
        trace = execute_program(program, max_uops=20_000)
        for current, following in zip(trace.records, trace.records[1:]):
            assert current.next_ip == following.ip

    def test_non_branches_fall_through(self, program):
        trace = execute_program(program, max_uops=20_000)
        for record in trace.records:
            if not record.instr.kind.is_branch:
                assert record.next_ip == record.instr.next_ip
                assert not record.taken

    def test_direct_branch_targets_honoured(self, program):
        trace = execute_program(program, max_uops=20_000)
        for record in trace.records:
            kind = record.instr.kind
            if kind in (InstrKind.JUMP, InstrKind.CALL):
                assert record.next_ip == record.instr.target
            if kind is InstrKind.COND_BRANCH:
                if record.taken:
                    assert record.next_ip == record.instr.target
                else:
                    assert record.next_ip == record.instr.next_ip

    def test_calls_and_returns_pair_like_a_stack(self, program):
        trace = execute_program(program, max_uops=30_000)
        stack = []
        for record in trace.records:
            kind = record.instr.kind
            if kind in (InstrKind.CALL, InstrKind.INDIRECT_CALL):
                stack.append(record.instr.next_ip)
            elif kind is InstrKind.RETURN:
                assert stack, "return without a matching call"
                assert record.next_ip == stack.pop()

    def test_all_records_are_real_instructions(self, program):
        trace = execute_program(program, max_uops=10_000)
        for record in trace.records:
            assert program.image.fetch(record.ip) is record.instr


class TestDeterminism:
    def test_same_program_same_trace(self, program):
        t1 = execute_program(program, max_uops=8000)
        t2 = execute_program(program, max_uops=8000)
        assert len(t1) == len(t2)
        assert all(
            a.ip == b.ip and a.taken == b.taken
            for a, b in zip(t1.records, t2.records)
        )

    def test_trace_metadata(self, program):
        trace = execute_program(program, max_uops=1000)
        assert trace.name == "exec-test"
        assert trace.suite == "specint"
        assert "exec-test" in trace.describe()


class TestErrorPaths:
    def test_return_with_empty_stack_raises(self, program):
        # Start execution at a block inside a non-main function: its RET
        # pops an empty stack.
        ret_block = None
        for fn in program.functions[1:]:
            ret_block = program.blocks[fn.block_bids[-1]]
            break
        assert ret_block is not None
        executor = TraceExecutor(program)
        broken = program.__class__(
            image=program.image,
            blocks=program.blocks,
            functions=program.functions,
            entry_bid=ret_block.bid,
            cond_behaviors=program.cond_behaviors,
            indirect_behaviors=program.indirect_behaviors,
        )
        with pytest.raises(SimulationError):
            TraceExecutor(broken).run(max_uops=10_000)


class TestInstructionCapBoundaries:
    """The max_instructions cap is exact, not block-granular."""

    def test_cap_is_exact(self, program):
        trace = TraceExecutor(program).run(
            max_uops=10**9, max_instructions=500
        )
        assert len(trace) == 500

    def test_cap_of_one(self, program):
        trace = TraceExecutor(program).run(
            max_uops=10**9, max_instructions=1
        )
        assert len(trace) == 1

    def test_capped_trace_is_prefix_of_uncapped(self, program):
        full = TraceExecutor(program).run(max_uops=20_000)
        n = len(full) // 2
        capped = TraceExecutor(program).run(
            max_uops=10**9, max_instructions=n
        )
        assert len(capped) == n
        assert capped.ips == full.ips[:n]
        assert capped.kinds == full.kinds[:n]
        assert capped.takens == full.takens[:n]
        assert capped.next_ips == full.next_ips[:n]
        assert capped.nuops == full.nuops[:n]

    def test_uop_budget_still_binds_with_loose_cap(self, program):
        trace = TraceExecutor(program).run(
            max_uops=5000, max_instructions=10**9
        )
        assert 5000 <= trace.total_uops < 5100

    def test_cap_at_the_budget_stop_changes_nothing(self, program):
        plain = TraceExecutor(program).run(max_uops=5000)
        capped = TraceExecutor(program).run(
            max_uops=5000, max_instructions=len(plain)
        )
        assert len(capped) == len(plain)
        assert capped.ips == plain.ips
        assert capped.total_uops == plain.total_uops
