"""Tests for trace serialization."""

import io

import pytest

from repro.common.errors import TraceFormatError
from repro.trace.tracefile import (
    load_trace,
    save_trace,
    trace_from_string,
    trace_to_string,
)


class TestRoundTrip:
    def test_roundtrip_equality(self, small_trace):
        text = trace_to_string(small_trace)
        loaded = trace_from_string(text)
        assert len(loaded) == len(small_trace)
        assert loaded.name == small_trace.name
        assert loaded.suite == small_trace.suite
        assert loaded.seed == small_trace.seed
        for a, b in zip(small_trace.records, loaded.records):
            assert a.ip == b.ip
            assert a.taken == b.taken
            assert a.next_ip == b.next_ip
            assert a.instr.kind == b.instr.kind
            assert a.instr.num_uops == b.instr.num_uops
            assert a.instr.size == b.instr.size
            assert a.instr.target == b.instr.target

    def test_roundtrip_total_uops(self, small_trace):
        loaded = trace_from_string(trace_to_string(small_trace))
        assert loaded.total_uops == small_trace.total_uops

    def test_file_roundtrip(self, small_trace, tmp_path):
        path = str(tmp_path / "trace.txt")
        save_trace(small_trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(small_trace)

    def test_static_instructions_shared(self, small_trace):
        loaded = trace_from_string(trace_to_string(small_trace))
        seen = {}
        for record in loaded.records:
            previous = seen.setdefault(record.ip, record.instr)
            assert previous is record.instr  # one object per static IP


class TestErrorPaths:
    def test_bad_magic(self):
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO("not-a-trace\n"))

    def test_unknown_record_type(self):
        text = "xbc-trace-v1 name=- suite=- seed=0 n=1\nz 1 2 3\n"
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(text))

    def test_dynamic_before_static(self):
        text = "xbc-trace-v1 name=- suite=- seed=0 n=1\nd 100 0 102\n"
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(text))

    def test_garbled_fields(self):
        text = "xbc-trace-v1 name=- suite=- seed=0 n=1\ni 1 x A 1 -1\n"
        with pytest.raises(TraceFormatError):
            load_trace(io.StringIO(text))

    def test_error_mentions_line_number(self):
        text = "xbc-trace-v1 name=- suite=- seed=0 n=1\nz 1\n"
        with pytest.raises(TraceFormatError, match="line 2"):
            load_trace(io.StringIO(text))
