"""Tests for trace-cache configuration."""

import pytest

from repro.common.errors import ConfigError
from repro.tc.config import TcConfig


def test_default_geometry():
    config = TcConfig()
    config.validate()
    assert config.num_sets * config.assoc * config.line_uops == config.total_uops


def test_paper_baseline_shape():
    # §4: 4-way, 16-uop lines, 3 branches max.
    config = TcConfig()
    assert config.assoc == 4
    assert config.line_uops == 16
    assert config.max_cond_branches == 3


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(assoc=0),
        dict(line_uops=2),
        dict(max_cond_branches=0),
        dict(total_uops=1000),          # not divisible
        dict(total_uops=16 * 4 * 3),    # 3 sets: not a power of two
    ],
)
def test_invalid_configs(kwargs):
    with pytest.raises(ConfigError):
        TcConfig(**kwargs).validate()
