"""Tests for the trace-cache storage array."""

import pytest

from repro.isa.instruction import Instruction, InstrKind
from repro.tc.cache import TraceCache
from repro.tc.config import TcConfig
from repro.tc.trace_line import TraceEntry, TraceLine


def line_at(start_ip, taken=False, length=3):
    entries = []
    ip = start_ip
    for i in range(length - 1):
        entries.append(TraceEntry(
            Instruction(ip=ip, size=2, kind=InstrKind.ALU, num_uops=2), False
        ))
        ip += 2
    entries.append(TraceEntry(
        Instruction(ip=ip, size=2, kind=InstrKind.COND_BRANCH,
                    num_uops=1, target=0x9000),
        taken,
    ))
    return TraceLine(entries)


@pytest.fixture()
def cache():
    return TraceCache(TcConfig(total_uops=1024))  # 16 sets, 4 ways


def test_insert_then_lookup(cache):
    line = line_at(0x100)
    cache.insert(line)
    assert cache.lookup(0x100) is line
    assert cache.lookup(0x102) is None


def test_no_path_associativity(cache):
    # Two different paths from the same start IP cannot coexist.
    taken = line_at(0x100, taken=True)
    not_taken = line_at(0x100, taken=False)
    cache.insert(taken)
    cache.insert(not_taken)
    assert cache.lookup(0x100) is not_taken
    assert cache.replacements == 1


def test_same_path_refreshes_only(cache):
    cache.insert(line_at(0x100, taken=True))
    cache.insert(line_at(0x100, taken=True))
    assert cache.same_path_refreshes == 1
    assert cache.inserts == 1


def test_lru_eviction_within_set(cache):
    sets = cache.num_sets
    starts = [0x100 + 2 * sets * i for i in range(5)]  # same set
    for start in starts[:4]:
        cache.insert(line_at(start))
    cache.lookup(starts[0])           # refresh the oldest
    cache.insert(line_at(starts[4]))  # evicts starts[1]
    assert cache.lookup(starts[0]) is not None
    assert cache.lookup(starts[1]) is None


def test_redundancy_measures_duplicates(cache):
    # Traces starting at 0x100 and 0x102 share the tail instructions.
    cache.insert(line_at(0x100, length=4))
    inner = line_at(0x102, length=3)
    cache.insert(inner)
    assert cache.redundancy() > 1.0


def test_redundancy_of_disjoint_lines_is_one(cache):
    cache.insert(line_at(0x100))
    cache.insert(line_at(0x900))
    assert cache.redundancy() == 1.0


def test_stored_uops(cache):
    cache.insert(line_at(0x100, length=3))  # 2+2+1 uops
    assert cache.stored_uops() == 5


class TestPathAssociativity:
    @pytest.fixture()
    def pa_cache(self):
        return TraceCache(TcConfig(total_uops=1024, path_associativity=True))

    def test_same_start_paths_coexist(self, pa_cache):
        taken = line_at(0x100, taken=True)
        not_taken = line_at(0x100, taken=False)
        pa_cache.insert(taken)
        pa_cache.insert(not_taken)
        candidates = pa_cache.lookup_all(0x100)
        assert len(candidates) == 2
        assert {line.entries[-1].taken for line in candidates} == {True, False}

    def test_same_path_refreshes(self, pa_cache):
        pa_cache.insert(line_at(0x100, taken=True))
        pa_cache.insert(line_at(0x100, taken=True))
        assert pa_cache.same_path_refreshes == 1
        assert len(pa_cache.lookup_all(0x100)) == 1

    def test_contains_matches_any_path(self, pa_cache):
        pa_cache.insert(line_at(0x100, taken=True))
        assert pa_cache.contains(0x100)
        assert not pa_cache.contains(0x102)

    def test_touch_refreshes_specific_line(self, pa_cache):
        taken = line_at(0x100, taken=True)
        not_taken = line_at(0x100, taken=False)
        pa_cache.insert(taken)
        pa_cache.insert(not_taken)
        pa_cache.touch(taken)
        assert pa_cache.lookup_all(0x100)[0] is taken

    def test_frontend_runs_with_path_assoc(self, medium_trace):
        from repro.frontend.config import FrontendConfig
        from repro.tc.frontend import TcFrontend

        stats = TcFrontend(
            FrontendConfig(),
            TcConfig(total_uops=4096, path_associativity=True),
        ).run(medium_trace)
        assert stats.total_uops == medium_trace.total_uops
        assert stats.uops_from_structure > 0
