"""Tests for the trace-line structure."""

import pytest

from repro.isa.instruction import Instruction, InstrKind
from repro.tc.trace_line import TraceEntry, TraceLine


def entry(ip, kind=InstrKind.ALU, uops=1, taken=False, target=None):
    if kind in (InstrKind.COND_BRANCH, InstrKind.JUMP, InstrKind.CALL):
        target = target or 0x9000
    instr = Instruction(ip=ip, size=2, kind=kind, num_uops=uops, target=target)
    return TraceEntry(instr=instr, taken=taken)


def test_basic_properties():
    line = TraceLine([
        entry(0x100, uops=2),
        entry(0x102, InstrKind.COND_BRANCH, taken=True),
        entry(0x300, uops=3),
    ])
    assert line.start_ip == 0x100
    assert line.total_uops == 6
    assert line.num_cond_branches == 1
    assert len(line) == 3


def test_empty_rejected():
    with pytest.raises(ValueError):
        TraceLine([])


def test_path_signature_distinguishes_directions():
    a = TraceLine([entry(0x100, InstrKind.COND_BRANCH, taken=True)])
    b = TraceLine([entry(0x100, InstrKind.COND_BRANCH, taken=False)])
    assert not a.same_path_as(b)
    assert a.same_path_as(a)


def test_uop_ips_repeats_per_uop():
    line = TraceLine([entry(0x100, uops=3), entry(0x102, uops=1)])
    assert line.uop_ips() == [0x100, 0x100, 0x100, 0x102]
