"""Tests for the trace-cache fill unit."""

import pytest

from repro.isa.instruction import Instruction, InstrKind
from repro.tc.config import TcConfig
from repro.tc.fill import TcFillUnit
from repro.trace.record import DynInstr


def rec(ip, kind=InstrKind.ALU, uops=1, taken=False, target=None):
    if kind in (InstrKind.COND_BRANCH, InstrKind.JUMP, InstrKind.CALL):
        target = target or 0x9000
    instr = Instruction(ip=ip, size=2, kind=kind, num_uops=uops, target=target)
    next_ip = target if taken and target else instr.next_ip
    return DynInstr(instr=instr, taken=taken, next_ip=next_ip)


@pytest.fixture()
def fill():
    return TcFillUnit(TcConfig(total_uops=1024))


def feed_all(fill, records):
    lines = []
    for record in records:
        lines.extend(fill.feed(record.instr, record.taken))
    return lines


class TestEndConditions:
    def test_quota_ends_trace(self, fill):
        records = [rec(0x100 + 2 * i, uops=2) for i in range(8)]  # 16 uops
        lines = feed_all(fill, records)
        assert len(lines) == 1
        assert lines[0].total_uops == 16

    def test_quota_respects_instruction_atomicity(self, fill):
        records = [rec(0x100 + 2 * i, uops=3) for i in range(6)]  # 18 uops
        lines = feed_all(fill, records)
        assert len(lines) == 1
        assert lines[0].total_uops == 15  # five 3-uop instructions

    def test_third_branch_ends_trace(self, fill):
        records = []
        ip = 0x100
        for _ in range(3):
            records.append(rec(ip))
            ip += 2
            records.append(rec(ip, InstrKind.COND_BRANCH, taken=False))
            ip += 2
        lines = feed_all(fill, records)
        assert len(lines) == 1
        assert lines[0].num_cond_branches == 3

    @pytest.mark.parametrize(
        "kind",
        [InstrKind.INDIRECT_JUMP, InstrKind.INDIRECT_CALL, InstrKind.RETURN],
    )
    def test_indirect_kind_ends_trace(self, fill, kind):
        records = [rec(0x100), rec(0x102, kind, taken=True)]
        lines = feed_all(fill, records)
        assert len(lines) == 1
        assert len(lines[0]) == 2

    def test_jumps_and_calls_embedded(self, fill):
        records = [
            rec(0x100),
            rec(0x102, InstrKind.JUMP, taken=True),
            rec(0x9000),
            rec(0x9002, InstrKind.CALL, taken=True),
            rec(0x100),
            rec(0x102, InstrKind.RETURN if False else InstrKind.COND_BRANCH,
                taken=False),
        ]
        lines = feed_all(fill, records)
        assert lines == []  # nothing ended the trace yet
        assert fill.pending_instructions == 6

    def test_quota_and_end_on_same_instruction(self, fill):
        # 15 uops pending, then a 2-uop return: quota cut AND end.
        records = [rec(0x100 + 2 * i, uops=3) for i in range(5)]
        records.append(rec(0x200, InstrKind.RETURN, uops=2, taken=True))
        lines = feed_all(fill, records)
        assert len(lines) == 2
        assert lines[0].total_uops == 15
        assert lines[1].total_uops == 2


class TestAbandon:
    def test_abandon_discards_pending(self, fill):
        record = rec(0x100)
        fill.feed(record.instr, record.taken)
        fill.abandon()
        assert fill.pending_instructions == 0
        lines = feed_all(fill, [rec(0x200, InstrKind.RETURN, taken=True)])
        assert len(lines) == 1
        assert lines[0].start_ip == 0x200

    def test_completed_counter(self, fill):
        feed_all(fill, [rec(0x100, InstrKind.RETURN, taken=True)])
        feed_all(fill, [rec(0x200, InstrKind.RETURN, taken=True)])
        assert fill.completed_traces == 2
