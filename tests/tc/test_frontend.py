"""Behavioural tests for the TC frontend."""

import pytest

from repro.frontend.config import FrontendConfig
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend


@pytest.fixture(scope="module")
def stats_medium(medium_trace):
    # module scope may depend on the session-scoped trace fixture.
    return TcFrontend(FrontendConfig(), TcConfig(total_uops=4096)).run(medium_trace)


def test_uop_conservation(stats_medium, medium_trace):
    assert stats_medium.total_uops == medium_trace.total_uops
    assert stats_medium.retired_uops == medium_trace.total_uops


def test_delivery_mode_engages(stats_medium):
    assert stats_medium.uops_from_structure > 0
    assert stats_medium.switches_to_delivery > 0
    assert stats_medium.delivery_cycles > 0


def test_miss_rate_in_sane_range(stats_medium):
    assert 0.0 < stats_medium.uop_miss_rate < 0.8


def test_bandwidth_beats_ic_frontend(medium_trace):
    from repro.frontend.ic_frontend import ICFrontend

    tc = TcFrontend(FrontendConfig(), TcConfig(total_uops=8192)).run(medium_trace)
    ic = ICFrontend(FrontendConfig()).run(medium_trace)
    assert tc.overall_bandwidth > ic.overall_bandwidth


def test_bigger_cache_misses_less(medium_trace):
    small = TcFrontend(FrontendConfig(), TcConfig(total_uops=1024)).run(medium_trace)
    large = TcFrontend(FrontendConfig(), TcConfig(total_uops=16384)).run(medium_trace)
    assert large.uop_miss_rate < small.uop_miss_rate


def test_redundancy_reported(stats_medium):
    assert stats_medium.extra["tc_redundancy_x1000"] >= 1000


def test_mode_switches_roughly_balance(stats_medium):
    delta = abs(
        stats_medium.switches_to_delivery - stats_medium.switches_to_build
    )
    assert delta <= 1


def test_suite_coverage(suite_traces):
    for suite, trace in suite_traces.items():
        stats = TcFrontend(FrontendConfig(), TcConfig(total_uops=4096)).run(trace)
        assert stats.total_uops == trace.total_uops, suite
