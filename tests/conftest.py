"""Shared fixtures.

Trace generation is the expensive part of most tests, so the fixtures
here are session-scoped: one small program and trace per suite, shared
read-only by every test that needs realistic input.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.frontend.config import FrontendConfig
from repro.program.generator import generate_program
from repro.program.profiles import WorkloadProfile, profile_for_suite
from repro.trace.executor import execute_program


def small_profile(suite: str = "specint") -> WorkloadProfile:
    """A scaled-down suite profile for fast generation."""
    return replace(profile_for_suite(suite), num_functions=18)


@pytest.fixture(scope="session")
def tiny_profile() -> WorkloadProfile:
    """The smallest structurally interesting profile."""
    return replace(
        profile_for_suite("specint"),
        num_functions=8,
        mean_blocks_per_function=8.0,
        max_blocks_per_function=16,
    )


@pytest.fixture(scope="session")
def small_program(tiny_profile):
    """One deterministic small program."""
    return generate_program(tiny_profile, seed=7, name="small", suite="specint")


@pytest.fixture(scope="session")
def small_trace(small_program):
    """A 30k-uop trace of the small program."""
    return execute_program(small_program, max_uops=30_000)


@pytest.fixture(scope="session")
def medium_trace():
    """A 60k-uop specint-like trace (for frontend behaviour tests)."""
    program = generate_program(
        small_profile("specint"), seed=11, name="medium", suite="specint"
    )
    return execute_program(program, max_uops=60_000)


@pytest.fixture(scope="session")
def suite_traces():
    """One modest trace per suite, keyed by suite name."""
    traces = {}
    for i, suite in enumerate(("specint", "sysmark", "games")):
        program = generate_program(
            small_profile(suite), seed=100 + i, name=f"{suite}-t", suite=suite
        )
        traces[suite] = execute_program(program, max_uops=50_000)
    return traces


@pytest.fixture()
def fe_config() -> FrontendConfig:
    """Default frontend config (fresh per test: it is frozen anyway)."""
    return FrontendConfig()


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Keep the persistent exec cache out of the user's real ~/.cache.

    CLI commands enable the persistent trace/result cache by default;
    pointing REPRO_CACHE_DIR at a per-test temp dir keeps test runs
    hermetic (no cross-test reuse, nothing left behind).
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "repro-cache"))
