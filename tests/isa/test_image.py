"""Tests for the program image."""

import pytest

from repro.isa.image import ProgramImage
from repro.isa.instruction import Instruction, InstrKind


def alu(ip, size=2, uops=1):
    return Instruction(ip=ip, size=size, kind=InstrKind.ALU, num_uops=uops)


def test_add_and_fetch():
    image = ProgramImage()
    image.add(alu(0x10))
    image.add(alu(0x12))
    image.freeze()
    assert image.fetch(0x10).ip == 0x10
    assert image.get(0x12).ip == 0x12
    assert image.get(0x11) is None
    assert 0x10 in image and 0x11 not in image


def test_fetch_missing_raises():
    image = ProgramImage().freeze()
    with pytest.raises(KeyError):
        image.fetch(0x10)


def test_overlap_rejected():
    image = ProgramImage()
    image.add(alu(0x10, size=4))
    with pytest.raises(ValueError):
        image.add(alu(0x12))


def test_gaps_allowed():
    image = ProgramImage()
    image.add(alu(0x10, size=2))
    image.add(alu(0x20, size=2))
    assert len(image) == 2


def test_frozen_rejects_add():
    image = ProgramImage()
    image.add(alu(0x10))
    image.freeze()
    with pytest.raises(RuntimeError):
        image.add(alu(0x20))


def test_totals():
    image = ProgramImage()
    image.add(alu(0x10, size=3, uops=2))
    image.add(alu(0x13, size=5, uops=3))
    assert image.total_uops == 5
    assert image.total_bytes == 8
    assert image.lowest_ip == 0x10
    assert image.end_ip == 0x18


def test_iteration_in_address_order():
    image = ProgramImage()
    image.add(alu(0x10))
    image.add(alu(0x20))
    image.add(alu(0x30))
    assert [i.ip for i in image] == [0x10, 0x20, 0x30]


def test_empty_image_properties():
    image = ProgramImage()
    assert image.total_bytes == 0
    assert image.total_uops == 0
    with pytest.raises(ValueError):
        _ = image.lowest_ip
