"""Tests for the decoder stage."""

import pytest

from repro.isa.decoder import Decoder
from repro.isa.instruction import Instruction, InstrKind
from repro.isa.uop import uop_uid_index, uop_uid_ip


def alu(ip, uops=2):
    return Instruction(ip=ip, size=3, kind=InstrKind.ALU, num_uops=uops)


def test_decode_produces_ordered_uops():
    decoded = Decoder().decode(alu(0x100, uops=3))
    assert decoded.num_uops == 3
    assert [uop_uid_ip(u) for u in decoded.uops] == [0x100] * 3
    assert [uop_uid_index(u) for u in decoded.uops] == [0, 1, 2]


def test_counters_accumulate():
    d = Decoder()
    d.decode(alu(0x100, uops=2))
    d.decode(alu(0x103, uops=4))
    assert d.decoded_instructions == 2
    assert d.decoded_uops == 6
    d.reset_counters()
    assert d.decoded_instructions == 0
    assert d.decoded_uops == 0


def test_decode_group_respects_width():
    d = Decoder(width=2)
    group = [alu(0x100), alu(0x103)]
    assert len(d.decode_group(group)) == 2
    with pytest.raises(ValueError):
        d.decode_group([alu(0x100), alu(0x103), alu(0x106)])


@pytest.mark.parametrize("width,latency", [(0, 1), (-1, 1), (1, -1)])
def test_bad_parameters_rejected(width, latency):
    with pytest.raises(ValueError):
        Decoder(width=width, latency=latency)
