"""Tests for uop identity packing."""

from repro.isa.uop import (
    Uop,
    uop_uid,
    uop_uid_index,
    uop_uid_ip,
    uops_of,
)


def test_uid_roundtrip():
    for ip in (0, 1, 0x1000, 0xFFFF_FFFF):
        for index in (0, 3, 15):
            uid = uop_uid(ip, index)
            assert uop_uid_ip(uid) == ip
            assert uop_uid_index(uid) == index


def test_uids_are_ordered_within_instruction():
    uids = uops_of(0x400, 4)
    assert uids == sorted(uids)
    assert [uop_uid_index(u) for u in uids] == [0, 1, 2, 3]


def test_uids_distinct_across_instructions():
    a = set(uops_of(0x400, 4))
    b = set(uops_of(0x401, 4))
    assert not a & b


def test_uop_dataclass_roundtrip():
    u = Uop(ip=0x123, index=2)
    assert Uop.from_uid(u.uid) == u


def test_first_uop_index_zero_marks_instruction_start():
    # The frontends rely on (uid & mask) == 0 identifying the first uop.
    uids = uops_of(0x99, 3)
    assert uop_uid_index(uids[0]) == 0
    assert all(uop_uid_index(u) != 0 for u in uids[1:])
