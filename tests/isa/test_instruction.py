"""Tests for the instruction model and branch taxonomy."""

import pytest

from repro.isa.instruction import Instruction, InstrKind


def make(kind, target=0x2000, **kw):
    needs_target = kind in (InstrKind.COND_BRANCH, InstrKind.JUMP, InstrKind.CALL)
    return Instruction(
        ip=kw.get("ip", 0x1000),
        size=kw.get("size", 2),
        kind=kind,
        num_uops=kw.get("num_uops", 1),
        target=target if needs_target else None,
    )


class TestKindTaxonomy:
    def test_non_branches(self):
        for kind in (InstrKind.ALU, InstrKind.LOAD, InstrKind.STORE):
            assert not kind.is_branch
            assert not kind.ends_basic_block
            assert not kind.ends_xb

    def test_every_branch_ends_basic_block(self):
        for kind in InstrKind:
            if kind.is_branch:
                assert kind.ends_basic_block

    def test_jump_does_not_end_xb(self):
        # The core definitional difference between a XB and a basic block.
        assert InstrKind.JUMP.ends_basic_block
        assert not InstrKind.JUMP.ends_xb

    def test_xb_enders(self):
        for kind in (
            InstrKind.COND_BRANCH,
            InstrKind.INDIRECT_JUMP,
            InstrKind.INDIRECT_CALL,
            InstrKind.CALL,
            InstrKind.RETURN,
        ):
            assert kind.ends_xb

    def test_indirect_classification(self):
        assert InstrKind.RETURN.is_indirect
        assert InstrKind.INDIRECT_JUMP.is_indirect
        assert InstrKind.INDIRECT_CALL.is_indirect
        assert not InstrKind.JUMP.is_indirect
        assert not InstrKind.CALL.is_indirect

    def test_call_classification(self):
        assert InstrKind.CALL.is_call
        assert InstrKind.INDIRECT_CALL.is_call
        assert not InstrKind.RETURN.is_call

    def test_only_cond_is_conditional(self):
        assert InstrKind.COND_BRANCH.is_conditional
        assert sum(k.is_conditional for k in InstrKind) == 1


class TestInstructionValidation:
    def test_next_ip(self):
        instr = make(InstrKind.ALU, size=3)
        assert instr.next_ip == instr.ip + 3

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            Instruction(ip=0, size=0, kind=InstrKind.ALU, num_uops=1)

    @pytest.mark.parametrize("uops", [0, 5, -1])
    def test_bad_uop_count_rejected(self, uops):
        with pytest.raises(ValueError):
            Instruction(ip=0, size=1, kind=InstrKind.ALU, num_uops=uops)

    @pytest.mark.parametrize(
        "kind", [InstrKind.COND_BRANCH, InstrKind.JUMP, InstrKind.CALL]
    )
    def test_direct_branch_requires_target(self, kind):
        with pytest.raises(ValueError):
            Instruction(ip=0, size=2, kind=kind, num_uops=1, target=None)

    def test_indirect_branch_needs_no_target(self):
        Instruction(ip=0, size=2, kind=InstrKind.INDIRECT_JUMP, num_uops=1)

    def test_outcomes_cond(self):
        instr = make(InstrKind.COND_BRANCH)
        taken, fallthrough = instr.outcomes()
        assert taken == 0x2000
        assert fallthrough == instr.next_ip

    def test_outcomes_jump_has_no_fallthrough(self):
        instr = make(InstrKind.JUMP)
        taken, fallthrough = instr.outcomes()
        assert taken == 0x2000
        assert fallthrough is None

    def test_outcomes_return(self):
        instr = make(InstrKind.RETURN)
        taken, fallthrough = instr.outcomes()
        assert taken is None
        assert fallthrough is None
