"""Tests for the indirect-target predictor."""

import pytest

from repro.branch.indirect import IndirectPredictor


def test_learns_stable_target():
    p = IndirectPredictor(table_entries=256, history_bits=0)
    for _ in range(5):
        p.update(0x100, 0x900, 0x900)
    assert p.predict(0x100) == 0x900


def test_first_prediction_is_none():
    p = IndirectPredictor(table_entries=256)
    assert p.predict(0x100) is None


def test_update_returns_correctness():
    p = IndirectPredictor(table_entries=256, history_bits=0)
    assert p.update(0x100, 0x900, 0x900) is False  # untrained
    assert p.update(0x100, 0x900, 0x900) is True


def test_history_separates_contexts():
    # With history, the same branch alternating between two targets in a
    # fixed rhythm becomes predictable.
    p = IndirectPredictor(table_entries=1024, history_bits=8)
    targets = [0x900, 0xA00]
    for i in range(600):
        t = targets[i % 2]
        p.update(0x100, t, t)
    correct = 0
    for i in range(100):
        t = targets[i % 2]
        correct += p.update(0x100, t, t)
    assert correct > 80


def test_accuracy_counters():
    p = IndirectPredictor(table_entries=256, history_bits=0)
    p.update(0x100, 0x900, 0x900)
    p.update(0x100, 0x900, 0x900)
    assert p.predictions == 2
    assert 0.0 < p.accuracy <= 1.0
    assert IndirectPredictor().accuracy == 1.0


def test_generic_payloads():
    p = IndirectPredictor(table_entries=64, history_bits=0)
    payload = (0x900, 7)
    p.update(0x100, payload, 0x900)
    assert p.predict(0x100) == payload


def test_table_must_be_power_of_two():
    with pytest.raises(ValueError):
        IndirectPredictor(table_entries=100)
