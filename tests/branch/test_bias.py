"""Tests for the 7-bit promotion bias counter."""

import pytest

from repro.branch.bias import BIAS_MAX, BiasCounter


def test_starts_unpromotable():
    assert not BiasCounter().promotable


def test_saturates_high():
    c = BiasCounter()
    for _ in range(300):
        c.update(True)
    assert c.value == BIAS_MAX
    assert c.promotable_taken
    assert c.promotable
    assert c.monotone_direction() is True


def test_saturates_low():
    c = BiasCounter()
    for _ in range(300):
        c.update(False)
    assert c.value == 0
    assert c.promotable_not_taken
    assert c.monotone_direction() is False


def test_threshold_is_at_one_step_from_rail():
    c = BiasCounter(initial=2)
    assert not c.promotable_not_taken
    c.update(False)  # -> 1
    assert c.promotable_not_taken


def test_mixed_stream_never_promotes():
    c = BiasCounter()
    for i in range(500):
        c.update(i % 2 == 0)
    assert not c.promotable


def test_misbehaving_detection():
    c = BiasCounter()
    for _ in range(200):
        c.update(True)
    assert not c.misbehaving(promoted_taken=True, slack=16)
    for _ in range(17):
        c.update(False)
    assert c.misbehaving(promoted_taken=True, slack=16)


def test_misbehaving_not_taken_direction():
    c = BiasCounter()
    for _ in range(200):
        c.update(False)
    assert not c.misbehaving(promoted_taken=False, slack=8)
    for _ in range(9):
        c.update(True)
    assert c.misbehaving(promoted_taken=False, slack=8)


def test_initial_validation():
    with pytest.raises(ValueError):
        BiasCounter(initial=-1)
    with pytest.raises(ValueError):
        BiasCounter(initial=BIAS_MAX + 1)
