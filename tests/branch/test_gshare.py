"""Tests for the gshare predictor."""

import pytest

from repro.branch.gshare import GsharePredictor


class TestLearning:
    def test_learns_heavy_bias(self):
        p = GsharePredictor(history_bits=8, table_entries=1024)
        for _ in range(200):
            p.update(0x100, True)
        assert p.predict(0x100) is True

    def test_learns_not_taken_bias(self):
        p = GsharePredictor(history_bits=8, table_entries=1024)
        for _ in range(200):
            p.update(0x100, False)
        assert p.predict(0x100) is False

    def test_learns_alternating_pattern_via_history(self):
        # A strict alternation is perfectly predictable with history.
        p = GsharePredictor(history_bits=8, table_entries=4096)
        outcome = True
        for _ in range(400):
            p.update(0x100, outcome)
            outcome = not outcome
        p.reset_stats()
        correct = 0
        for _ in range(100):
            correct += p.update(0x100, outcome)
            outcome = not outcome
        assert correct >= 95

    def test_learns_loop_exit_pattern(self):
        # T T T N repeating: learnable with >= 4 history bits.
        p = GsharePredictor(history_bits=8, table_entries=4096)
        pattern = [True, True, True, False]
        for i in range(800):
            p.update(0x200, pattern[i % 4])
        p.reset_stats()
        for i in range(100):
            p.update(0x200, pattern[i % 4])
        assert p.accuracy > 0.9


class TestAccounting:
    def test_update_returns_correctness(self):
        p = GsharePredictor(history_bits=4, table_entries=64)
        predicted = p.predict(0x10)
        assert p.update(0x10, predicted) is True

    def test_accuracy_counters(self):
        p = GsharePredictor(history_bits=4, table_entries=64)
        for _ in range(50):
            p.update(0x10, True)
        assert p.predictions == 50
        assert 0.9 <= p.accuracy <= 1.0

    def test_reset_stats_keeps_training(self):
        p = GsharePredictor(history_bits=4, table_entries=64)
        for _ in range(100):
            p.update(0x10, True)
        p.reset_stats()
        assert p.predictions == 0
        assert p.accuracy == 1.0
        assert p.predict(0x10) is True

    def test_accuracy_before_predictions(self):
        assert GsharePredictor().accuracy == 1.0

    def test_history_register_bounded(self):
        p = GsharePredictor(history_bits=4, table_entries=64)
        for i in range(100):
            p.update(i, True)
        assert p.history < 16


class TestValidation:
    def test_non_power_of_two_table_rejected(self):
        with pytest.raises(ValueError):
            GsharePredictor(table_entries=1000)

    @pytest.mark.parametrize("bits", [-1, 31])
    def test_history_bits_range(self, bits):
        with pytest.raises(ValueError):
            GsharePredictor(history_bits=bits)

    def test_zero_history_degrades_to_bimodal_indexing(self):
        p = GsharePredictor(history_bits=0, table_entries=64)
        for _ in range(10):
            p.update(0x10, True)
        assert p.predict(0x10) is True
