"""Differential property tests: packed predictors vs their references.

The flat frontends inline the packed-array predictor implementations
(:class:`BranchTargetBuffer`, :class:`IndirectPredictor`,
:class:`IntReturnStack`); the original dict/list implementations are
kept as behavioural oracles.  Each test drives both implementations
with the same pseudo-random operation stream and checks every return
value and every statistics counter along the way, so any divergence is
pinned to the first operation that caused it.

Addresses are drawn from a small pool on purpose: the interesting
behaviour (set aliasing, LRU eviction, ring overflow, history-indexed
slot collisions) only happens under contention.
"""

import random

import pytest

from repro.branch.btb import BranchTargetBuffer, ReferenceBranchTargetBuffer
from repro.branch.indirect import IndirectPredictor, ReferenceIndirectPredictor
from repro.branch.rsb import IntReturnStack, ReturnStackBuffer

SEEDS = (0, 1, 2, 3, 4)
OPS = 4000


def _ip_pool(rng, size):
    """Even (instruction-aligned) addresses, small enough to alias."""
    return [rng.randrange(0x1000, 0x40000) & ~1 for _ in range(size)]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("entries,assoc", [(64, 4), (32, 2), (16, 1)])
class TestBtbEquivalence:
    def test_random_stream(self, seed, entries, assoc):
        rng = random.Random(seed)
        pool = _ip_pool(rng, entries * 3)  # ~3x capacity forces eviction
        packed = BranchTargetBuffer(entries=entries, assoc=assoc)
        ref = ReferenceBranchTargetBuffer(entries=entries, assoc=assoc)
        for step in range(OPS):
            ip = rng.choice(pool)
            if rng.random() < 0.5:
                assert packed.lookup(ip) == ref.lookup(ip), f"step {step}"
            else:
                target = rng.randrange(0x1000, 0x40000) & ~1
                packed.install(ip, target)
                ref.install(ip, target)
            assert packed.lookups == ref.lookups
            assert packed.hits == ref.hits
        assert packed.hit_rate == ref.hit_rate


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("table_entries,history_bits", [(256, 8), (64, 4), (128, 0)])
class TestIndirectEquivalence:
    def test_random_stream(self, seed, table_entries, history_bits):
        rng = random.Random(seed)
        pool = _ip_pool(rng, 48)
        targets = _ip_pool(rng, 8)
        packed = IndirectPredictor(
            table_entries=table_entries, history_bits=history_bits
        )
        ref = ReferenceIndirectPredictor(
            table_entries=table_entries, history_bits=history_bits
        )
        for step in range(OPS):
            ip = rng.choice(pool)
            roll = rng.random()
            if roll < 0.3:
                assert packed.predict(ip) == ref.predict(ip), f"step {step}"
            elif roll < 0.8:
                actual = rng.choice(targets)
                assert packed.update(ip, actual, actual) == ref.update(
                    ip, actual, actual
                ), f"step {step}"
            else:
                actual = rng.choice(targets)
                packed.train(ip, actual, actual)
                ref.train(ip, actual, actual)
            assert packed.history == ref.history
            assert packed.predictions == ref.predictions
            assert packed.mispredictions == ref.mispredictions
        assert packed.accuracy == ref.accuracy


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("depth", (1, 3, 16))
class TestRsbEquivalence:
    def test_random_stream(self, seed, depth):
        rng = random.Random(seed)
        packed = IntReturnStack(depth=depth)
        ref = ReturnStackBuffer(depth=depth)
        for step in range(OPS):
            roll = rng.random()
            if roll < 0.45:
                value = rng.randrange(0x1000, 0x40000) & ~1
                packed.push(value)
                ref.push(value)
            elif roll < 0.9:
                got = packed.pop()
                want = ref.pop()
                # The packed stack signals underflow with -1, the
                # generic one with None; both can never be a real
                # return address.
                assert got == (-1 if want is None else want), f"step {step}"
            elif roll < 0.97:
                got = packed.peek()
                want = ref.peek()
                assert got == (-1 if want is None else want), f"step {step}"
            else:
                packed.clear()
                ref.clear()
            assert len(packed) == len(ref)
            assert packed.pushes == ref.pushes
            assert packed.pops == ref.pops
            assert packed.underflows == ref.underflows
            assert packed.overflows == ref.overflows
