"""Tests for the branch target buffer."""

import pytest

from repro.branch.btb import BranchTargetBuffer


def test_install_then_lookup():
    btb = BranchTargetBuffer(entries=64, assoc=4)
    btb.install(0x100, 0x500)
    assert btb.lookup(0x100) == 0x500


def test_miss_returns_none():
    btb = BranchTargetBuffer(entries=64, assoc=4)
    assert btb.lookup(0x100) is None


def test_reinstall_updates_target():
    btb = BranchTargetBuffer(entries=64, assoc=4)
    btb.install(0x100, 0x500)
    btb.install(0x100, 0x700)
    assert btb.lookup(0x100) == 0x700


def test_lru_eviction_within_set():
    btb = BranchTargetBuffer(entries=8, assoc=2)  # 4 sets
    sets = 4
    # Three branches mapping to the same set; assoc 2 evicts the LRU one.
    a, b, c = 0x100, 0x100 + 2 * sets, 0x100 + 4 * sets
    btb.install(a, 1)
    btb.install(b, 2)
    btb.lookup(a)        # refresh a; b becomes LRU
    btb.install(c, 3)
    assert btb.lookup(a) == 1
    assert btb.lookup(b) is None
    assert btb.lookup(c) == 3


def test_hit_rate():
    btb = BranchTargetBuffer(entries=64, assoc=4)
    assert btb.hit_rate == 1.0
    btb.lookup(0x10)
    assert btb.hit_rate == 0.0
    btb.install(0x10, 0x20)
    btb.lookup(0x10)
    assert btb.hit_rate == 0.5


def test_geometry_validation():
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=10, assoc=4)  # not divisible
    with pytest.raises(ValueError):
        BranchTargetBuffer(entries=24, assoc=2)  # 12 sets: not a power of 2
