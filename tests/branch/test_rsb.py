"""Tests for the return stack buffer."""

import pytest

from repro.branch.rsb import ReturnStackBuffer


def test_lifo_order():
    rsb = ReturnStackBuffer(depth=8)
    rsb.push(1)
    rsb.push(2)
    rsb.push(3)
    assert rsb.pop() == 3
    assert rsb.pop() == 2
    assert rsb.pop() == 1


def test_underflow_returns_none_and_counts():
    rsb = ReturnStackBuffer(depth=4)
    assert rsb.pop() is None
    assert rsb.underflows == 1


def test_overflow_overwrites_oldest():
    rsb = ReturnStackBuffer(depth=3)
    for value in (1, 2, 3, 4):
        rsb.push(value)
    assert rsb.overflows == 1
    assert rsb.pop() == 4
    assert rsb.pop() == 3
    assert rsb.pop() == 2
    assert rsb.pop() is None  # 1 was overwritten


def test_peek_does_not_pop():
    rsb = ReturnStackBuffer(depth=4)
    rsb.push(42)
    assert rsb.peek() == 42
    assert len(rsb) == 1
    assert rsb.pop() == 42
    assert rsb.peek() is None


def test_clear():
    rsb = ReturnStackBuffer(depth=4)
    rsb.push(1)
    rsb.push(2)
    rsb.clear()
    assert len(rsb) == 0
    assert rsb.pop() is None


def test_counters():
    rsb = ReturnStackBuffer(depth=2)
    rsb.push(1)
    rsb.pop()
    assert rsb.pushes == 1
    assert rsb.pops == 1


def test_wraparound_consistency():
    rsb = ReturnStackBuffer(depth=2)
    for cycle in range(10):
        rsb.push(cycle * 2)
        rsb.push(cycle * 2 + 1)
        assert rsb.pop() == cycle * 2 + 1
        assert rsb.pop() == cycle * 2


def test_depth_validation():
    with pytest.raises(ValueError):
        ReturnStackBuffer(depth=0)
