"""Tests for the bimodal predictor."""

import pytest

from repro.branch.bimodal import BimodalPredictor


def test_learns_bias():
    p = BimodalPredictor(table_entries=256)
    for _ in range(10):
        p.update(0x40, False)
    assert p.predict(0x40) is False


def test_two_bit_hysteresis():
    p = BimodalPredictor(table_entries=256)
    for _ in range(10):
        p.update(0x40, True)
    # One contrary outcome must not flip a saturated counter.
    p.update(0x40, False)
    assert p.predict(0x40) is True
    p.update(0x40, False)
    p.update(0x40, False)
    assert p.predict(0x40) is False


def test_independent_addresses():
    p = BimodalPredictor(table_entries=256)
    for _ in range(10):
        p.update(0x40, True)
        p.update(0x42, False)
    assert p.predict(0x40) is True
    assert p.predict(0x42) is False


def test_accuracy_counter():
    p = BimodalPredictor(table_entries=64)
    for _ in range(100):
        p.update(0x10, True)
    assert p.predictions == 100
    assert p.accuracy > 0.95
    assert BimodalPredictor().accuracy == 1.0


def test_table_must_be_power_of_two():
    with pytest.raises(ValueError):
        BimodalPredictor(table_entries=100)
