"""Tests for the deterministic RNG helpers."""

import pytest

from repro.common.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a = DeterministicRng(42)
        b = DeterministicRng(42)
        assert [a.random() for _ in range(50)] == [b.random() for _ in range(50)]

    def test_different_seeds_differ(self):
        a = DeterministicRng(1)
        b = DeterministicRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(42).fork(7)
        b = DeterministicRng(42).fork(7)
        assert [a.randint(0, 100) for _ in range(20)] == [
            b.randint(0, 100) for _ in range(20)
        ]

    def test_fork_independent_of_parent_consumption(self):
        parent1 = DeterministicRng(5)
        parent1.random()  # consume some of the parent stream
        parent2 = DeterministicRng(5)
        assert parent1.fork(3).random() == parent2.fork(3).random()

    def test_forks_with_different_salts_differ(self):
        parent = DeterministicRng(5)
        assert parent.fork(1).random() != parent.fork(2).random()


class TestGeometric:
    def test_respects_bounds(self):
        rng = DeterministicRng(3)
        values = [rng.geometric(5.0, lo=2, hi=9) for _ in range(500)]
        assert min(values) >= 2
        assert max(values) <= 9

    def test_mean_close_to_target(self):
        rng = DeterministicRng(3)
        values = [rng.geometric(8.0, lo=1, hi=10_000) for _ in range(20_000)]
        mean = sum(values) / len(values)
        assert 7.0 < mean < 9.0

    def test_mean_at_or_below_lo_returns_lo(self):
        rng = DeterministicRng(3)
        assert rng.geometric(1.0, lo=3) == 3
        assert rng.geometric(2.9, lo=3) == 3


class TestChoices:
    def test_weighted_choice_respects_weights(self):
        rng = DeterministicRng(9)
        picks = [
            rng.weighted_choice([("a", 0.9), ("b", 0.1)]) for _ in range(2000)
        ]
        assert picks.count("a") > 1500

    def test_weighted_choice_single_item(self):
        rng = DeterministicRng(9)
        assert rng.weighted_choice([("only", 1.0)]) == "only"

    def test_zipf_weights_sum_to_one(self):
        rng = DeterministicRng(9)
        weights = rng.zipf_weights(10, skew=1.2)
        assert abs(sum(weights) - 1.0) < 1e-9
        assert weights == sorted(weights, reverse=True)

    def test_zipf_choice_prefers_head(self):
        rng = DeterministicRng(9)
        picks = [rng.zipf_choice(list(range(8))) for _ in range(4000)]
        assert picks.count(0) > picks.count(7)

    def test_sample_distinct(self):
        rng = DeterministicRng(1)
        picked = rng.sample(list(range(20)), 5)
        assert len(set(picked)) == 5

    def test_shuffle_in_place_preserves_elements(self):
        rng = DeterministicRng(1)
        items = list(range(30))
        rng.shuffle(items)
        assert sorted(items) == list(range(30))
