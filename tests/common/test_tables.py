"""Tests for ASCII table rendering."""

from repro.common.tables import format_table


def test_basic_layout():
    text = format_table(["a", "b"], [[1, 2], [30, 40]])
    lines = text.splitlines()
    assert lines[0].startswith("a")
    assert "-+-" in lines[1]
    assert "30" in lines[2] or "30" in lines[3]


def test_title_prepended():
    text = format_table(["x"], [[1]], title="My Table")
    assert text.splitlines()[0] == "My Table"


def test_float_formatting():
    text = format_table(["v"], [[1.23456]])
    assert "1.235" in text


def test_column_width_adapts():
    text = format_table(["short"], [["a-very-long-cell"]])
    header, sep, row = text.splitlines()
    assert len(header) == len(row)
    assert len(sep) == len(row)


def test_empty_rows():
    text = format_table(["a"], [])
    assert "a" in text
