"""Tests for the exception hierarchy."""

import pytest

from repro.common.errors import (
    ConfigError,
    GenerationError,
    ReproError,
    SimulationError,
    TraceFormatError,
)


@pytest.mark.parametrize(
    "exc", [ConfigError, GenerationError, SimulationError, TraceFormatError]
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)
    with pytest.raises(ReproError):
        raise exc("boom")


def test_leaves_are_distinct():
    assert not issubclass(ConfigError, SimulationError)
    assert not issubclass(SimulationError, ConfigError)


def test_catchable_as_exception():
    with pytest.raises(Exception, match="specific message"):
        raise GenerationError("specific message")
