"""Tests for Histogram and RunningStats."""

import math

import pytest

from repro.common.histogram import Histogram, RunningStats


class TestHistogram:
    def test_empty(self):
        h = Histogram()
        assert h.total == 0
        assert h.mean == 0.0
        assert h.fraction_of(3) == 0.0
        assert h.count_of(3) == 0

    def test_add_and_mean(self):
        h = Histogram()
        h.add(2)
        h.add(4, count=3)
        assert h.total == 4
        assert h.mean == pytest.approx((2 + 12) / 4)

    def test_add_nonpositive_count_ignored(self):
        h = Histogram()
        h.add(5, count=0)
        h.add(5, count=-2)
        assert h.total == 0

    def test_update_iterable(self):
        h = Histogram()
        h.update([1, 1, 2, 3])
        assert h.count_of(1) == 2
        assert h.items() == [(1, 2), (2, 1), (3, 1)]

    def test_fraction(self):
        h = Histogram()
        h.update([1, 1, 2, 2])
        assert h.fraction_of(1) == 0.5

    def test_percentile(self):
        h = Histogram()
        h.update(range(1, 101))
        assert h.percentile(0.5) == 50
        assert h.percentile(1.0) == 100
        assert h.percentile(0.01) == 1

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().percentile(0.5)

    def test_percentile_bad_fraction_raises(self):
        h = Histogram()
        h.add(1)
        with pytest.raises(ValueError):
            h.percentile(0.0)
        with pytest.raises(ValueError):
            h.percentile(1.5)

    def test_merged_with(self):
        a = Histogram()
        a.update([1, 2])
        b = Histogram()
        b.update([2, 3])
        merged = a.merged_with(b)
        assert merged.total == 4
        assert merged.count_of(2) == 2
        # originals untouched
        assert a.total == 2 and b.total == 2

    def test_render_contains_rows(self):
        h = Histogram()
        h.update([1, 1, 5])
        text = h.render(label="demo")
        assert "demo" in text
        assert "mean=" in text
        assert "#" in text


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.mean == 0.0
        assert s.variance == 0.0
        assert s.stddev == 0.0

    def test_matches_closed_form(self):
        values = [1.0, 2.0, 3.0, 4.0, 10.0]
        s = RunningStats()
        for v in values:
            s.add(v)
        mean = sum(values) / len(values)
        var = sum((v - mean) ** 2 for v in values) / len(values)
        assert s.mean == pytest.approx(mean)
        assert s.variance == pytest.approx(var)
        assert s.stddev == pytest.approx(math.sqrt(var))
        assert s.min_value == 1.0
        assert s.max_value == 10.0

    def test_count(self):
        s = RunningStats()
        for v in range(100):
            s.add(float(v))
        assert s.count == 100
