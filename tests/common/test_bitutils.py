"""Tests for bit-manipulation helpers."""

import pytest

from repro.common.bitutils import (
    bit_clear,
    bit_set,
    bit_test,
    iter_bits,
    log2_exact,
    mask_of,
    popcount,
)


def test_bit_set_and_test():
    mask = 0
    mask = bit_set(mask, 0)
    mask = bit_set(mask, 3)
    assert bit_test(mask, 0)
    assert bit_test(mask, 3)
    assert not bit_test(mask, 1)
    assert mask == 0b1001


def test_bit_set_idempotent():
    assert bit_set(0b1001, 3) == 0b1001


def test_bit_clear():
    assert bit_clear(0b1011, 1) == 0b1001
    assert bit_clear(0b1001, 2) == 0b1001  # clearing unset bit is a no-op


def test_iter_bits():
    assert list(iter_bits(0)) == []
    assert list(iter_bits(0b1011)) == [0, 1, 3]


def test_popcount():
    assert popcount(0) == 0
    assert popcount(0b1111) == 4
    assert popcount(1 << 40) == 1


def test_mask_of_roundtrip():
    positions = [0, 2, 5]
    assert list(iter_bits(mask_of(positions))) == positions


def test_log2_exact():
    assert log2_exact(1) == 0
    assert log2_exact(1024) == 10


@pytest.mark.parametrize("bad", [0, -4, 3, 12, 1000])
def test_log2_exact_rejects_non_powers(bad):
    with pytest.raises(ValueError):
        log2_exact(bad)
