"""Round-trip and schema-migration tests for the perf registry."""

import json
import os

import pytest

from repro.common.errors import ConfigError
from repro.perf.registry import PerfRegistry, calibrated_phases, \
    normalize_report

from tests.perf.conftest import make_report

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


@pytest.fixture
def registry(tmp_path):
    return PerfRegistry(str(tmp_path / "registry"))


class TestNormalize:
    def test_calibrated_is_throughput_over_calibration(self):
        report = make_report("abc1234", calibration=2e6,
                             phases={"frontend_tc": 1e6})
        entry = normalize_report(report)
        assert entry["phases"]["frontend_tc"]["calibrated"] == \
            pytest.approx(0.5)
        assert entry["phases"]["frontend_tc"]["uops_per_sec"] == 1e6

    def test_schema1_report_normalizes(self):
        report = make_report("abc1234", schema=1)
        entry = normalize_report(report)
        assert entry["source_schema"] == 1
        assert entry["timestamp"] is None  # schema 1 had none
        assert entry["cpu_affinity"] is None

    def test_schema3_keeps_timestamp(self):
        entry = normalize_report(make_report("abc1234", schema=3))
        assert entry["timestamp"] == "2026-08-07T00:00:00+00:00"

    def test_unknown_rev_rejected(self):
        report = make_report("abc1234")
        report["rev"] = "unknown"
        with pytest.raises(ConfigError, match="no usable git rev"):
            normalize_report(report)

    def test_missing_phases_rejected(self):
        report = make_report("abc1234")
        report["phases"] = {}
        with pytest.raises(ConfigError, match="no phases"):
            normalize_report(report)


class TestRegistryRoundTrip:
    def test_add_load_round_trip(self, registry):
        report = make_report("abc1234")
        entry = registry.add(report)
        assert registry.revs() == ["abc1234"]
        assert registry.load("abc1234") == entry
        # The entry file is plain JSON on disk, keyed by rev.
        path = registry.entry_path("abc1234")
        with open(path, "r", encoding="utf-8") as handle:
            assert json.load(handle) == entry

    def test_trajectory_order_is_insertion_order(self, registry):
        for rev in ("r1", "r2", "r3"):
            registry.add(make_report(rev))
        assert registry.revs() == ["r1", "r2", "r3"]

    def test_rerecord_replaces_in_place(self, registry):
        registry.add(make_report("r1", phases={"frontend_xbc": 100.0}))
        registry.add(make_report("r2"))
        registry.add(make_report("r1", phases={"frontend_xbc": 200.0}))
        assert registry.revs() == ["r1", "r2"]
        assert registry.load("r1")["phases"]["frontend_xbc"][
            "uops_per_sec"] == 200.0

    def test_load_unknown_rev_names_known(self, registry):
        registry.add(make_report("r1"))
        with pytest.raises(ConfigError, match="r1"):
            registry.load("nope")

    def test_bad_rev_path_rejected(self, registry):
        with pytest.raises(ConfigError, match="bad revision"):
            registry.entry_path("../escape")

    def test_empty_registry(self, registry):
        assert registry.revs() == []
        assert registry.entries() == []
        assert registry.phase_names() == []

    def test_series_skips_entries_without_the_phase(self, registry):
        registry.add(make_report("r1", phases={"frontend_xbc": 100.0,
                                               "frontend_tc": 300.0}))
        registry.add(make_report("r2", phases={"frontend_tc": 330.0}))
        registry.add(make_report("r3", phases={"frontend_xbc": 110.0,
                                               "frontend_tc": 360.0}))
        calibration = 5e6
        assert registry.series("frontend_xbc") == [
            pytest.approx(100.0 / calibration),
            pytest.approx(110.0 / calibration),
        ]
        assert len(registry.series("frontend_tc")) == 3

    def test_series_quick_filter(self, registry):
        registry.add(make_report("full1", phases={"frontend_tc": 100.0}))
        registry.add(make_report("quick1", quick=True,
                                 phases={"frontend_tc": 80.0}))
        registry.add(make_report("full2", phases={"frontend_tc": 110.0}))
        calibration = 5e6
        assert registry.series("frontend_tc", quick=False) == [
            pytest.approx(100.0 / calibration),
            pytest.approx(110.0 / calibration),
        ]
        assert registry.series("frontend_tc", quick=True) == [
            pytest.approx(80.0 / calibration),
        ]
        assert len(registry.series("frontend_tc")) == 3

    def test_phase_names_union_first_seen(self, registry):
        registry.add(make_report("r1", phases={"frontend_xbc": 100.0}))
        registry.add(make_report("r2", phases={"trace_gen": 50.0,
                                               "frontend_xbc": 100.0}))
        assert registry.phase_names() == ["frontend_xbc", "trace_gen"]


class TestCommittedReportsIngest:
    """The two committed BENCH reports (schema 1 and 2) must migrate."""

    @pytest.mark.parametrize("name, schema", [
        ("BENCH_1a5af1c.json", 1),
        ("BENCH_f876e2a.json", 2),
    ])
    def test_legacy_report_ingests(self, registry, name, schema):
        path = os.path.join(REPO_ROOT, name)
        with open(path, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["schema"] == schema
        entry = registry.add(report)
        assert entry["source_schema"] == schema
        assert set(entry["phases"]) == set(report["phases"])
        for phase in entry["phases"].values():
            assert phase["calibrated"] > 0

    def test_committed_registry_matches_committed_reports(self):
        """The seeded benchmarks/registry must be a faithful ingest."""
        committed = PerfRegistry(
            os.path.join(REPO_ROOT, "benchmarks", "registry")
        )
        assert committed.revs()[:2] == ["1a5af1c", "f876e2a"]
        for rev in ("1a5af1c", "f876e2a"):
            with open(os.path.join(REPO_ROOT, f"BENCH_{rev}.json"),
                      encoding="utf-8") as handle:
                assert committed.load(rev) == normalize_report(
                    json.load(handle)
                )


class TestCalibratedPhases:
    def test_zero_calibration_falls_back_to_raw(self):
        report = make_report("abc1234")
        report["calibration_ops_per_sec"] = 0
        phases = calibrated_phases(report)
        assert phases["frontend_xbc"]["calibrated"] == \
            phases["frontend_xbc"]["uops_per_sec"]
