"""End-to-end tests for the ``repro perf`` command family.

Everything goes through :func:`repro.cli.main` so argument wiring,
dispatch and exit codes are covered, with registries under tmp_path.
"""

import json
import os
import random

import pytest

from repro.cli import main
from repro.perf.detect import check_report
from repro.perf.registry import PerfRegistry

from tests.perf.conftest import make_report

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)


def write_json(path, document):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return str(path)


@pytest.fixture
def registry_dir(tmp_path):
    return str(tmp_path / "registry")


def seed_stationary(registry_dir, tmp_path, *, count=8, jitter=0.02,
                    seed=17):
    """Record *count* stationary-throughput revs into the registry."""
    rng = random.Random(seed)
    registry = PerfRegistry(registry_dir)
    for i in range(count):
        scale = 1.0 + rng.uniform(-jitter, jitter)
        registry.add(make_report(
            f"rev{i:02d}",
            phases={"frontend_xbc": 600_000.0 * scale,
                    "frontend_tc": 3_000_000.0 * scale},
        ))
    return registry


class TestAddAndImport:
    def test_import_legacy_reports_in_order(self, registry_dir, tmp_path,
                                            capsys):
        r1 = write_json(tmp_path / "b1.json",
                        make_report("aaa1111", schema=1))
        r2 = write_json(tmp_path / "b2.json",
                        make_report("bbb2222", schema=2))
        rc = main(["perf", "import", r1, r2, "--registry", registry_dir])
        assert rc == 0
        assert PerfRegistry(registry_dir).revs() == ["aaa1111", "bbb2222"]
        out = capsys.readouterr().out
        assert "source schema 1" in out and "source schema 2" in out

    def test_add_single_report(self, registry_dir, tmp_path):
        path = write_json(tmp_path / "b.json", make_report("ccc3333"))
        assert main(["perf", "add", path,
                     "--registry", registry_dir]) == 0
        assert PerfRegistry(registry_dir).revs() == ["ccc3333"]

    def test_committed_bench_reports_import(self, registry_dir):
        """The issue's migration path: both committed BENCH files."""
        rc = main([
            "perf", "import",
            os.path.join(REPO_ROOT, "BENCH_1a5af1c.json"),
            os.path.join(REPO_ROOT, "BENCH_f876e2a.json"),
            "--registry", registry_dir,
        ])
        assert rc == 0
        assert PerfRegistry(registry_dir).revs() == ["1a5af1c", "f876e2a"]


class TestLog:
    def test_log_renders_trajectory(self, registry_dir, tmp_path, capsys):
        seed_stationary(registry_dir, tmp_path, count=3)
        assert main(["perf", "log", "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "rev00" in out and "rev02" in out
        assert "xbc" in out and "tc" in out
        assert "%" in out  # deltas between consecutive revs

    def test_log_phase_filter_short_names(self, registry_dir, tmp_path,
                                          capsys):
        seed_stationary(registry_dir, tmp_path, count=2)
        assert main(["perf", "log", "--phases", "tc",
                     "--registry", registry_dir]) == 0
        out = capsys.readouterr().out
        assert "tc" in out and "xbc" not in out

    def test_log_unknown_phase_errors_with_valid_list(self, registry_dir,
                                                      tmp_path, capsys):
        seed_stationary(registry_dir, tmp_path, count=2)
        rc = main(["perf", "log", "--phases", "bogus",
                   "--registry", registry_dir])
        assert rc == 1
        err = capsys.readouterr().err
        assert "bogus" in err and "xbc" in err

    def test_log_empty_registry(self, registry_dir, capsys):
        assert main(["perf", "log", "--registry", registry_dir]) == 0
        assert "empty" in capsys.readouterr().out

    def test_committed_registry_renders_both_revs(self, capsys):
        """Acceptance: per-phase calibrated output from the seeded
        committed registry."""
        committed = os.path.join(REPO_ROOT, "benchmarks", "registry")
        assert main(["perf", "log", "--registry", committed]) == 0
        out = capsys.readouterr().out
        assert "1a5af1c" in out and "f876e2a" in out
        for phase in ("trace_gen", "ic", "dc", "tc", "xbc", "bbtc"):
            assert phase in out


class TestDiff:
    def test_diff_reports_delta_and_significance(self, registry_dir,
                                                 tmp_path, capsys):
        registry = seed_stationary(registry_dir, tmp_path, count=6)
        registry.add(make_report(
            "fast", phases={"frontend_xbc": 1_200_000.0,
                            "frontend_tc": 3_000_000.0}))
        rc = main(["perf", "diff", "rev00", "fast",
                   "--registry", registry_dir])
        assert rc == 0
        out = capsys.readouterr().out
        assert "+" in out
        assert "* >2 sigma" in out          # the doubled xbc phase
        assert "~ within noise" in out      # the unchanged tc phase

    def test_diff_unknown_rev_fails_cleanly(self, registry_dir, tmp_path,
                                            capsys):
        seed_stationary(registry_dir, tmp_path, count=2)
        rc = main(["perf", "diff", "rev00", "nope",
                   "--registry", registry_dir])
        assert rc == 1
        assert "nope" in capsys.readouterr().err

    def test_committed_registry_diff(self, capsys):
        committed = os.path.join(REPO_ROOT, "benchmarks", "registry")
        rc = main(["perf", "diff", "1a5af1c", "f876e2a",
                   "--registry", committed])
        assert rc == 0
        out = capsys.readouterr().out
        assert "1a5af1c -> f876e2a" in out
        assert "tc" in out and "%" in out


class TestGate:
    def test_gate_fails_on_injected_regression(self, registry_dir,
                                               tmp_path, capsys):
        seed_stationary(registry_dir, tmp_path)
        candidate = write_json(
            tmp_path / "cand.json",
            make_report("cand123",
                        phases={"frontend_xbc": 450_000.0,      # -25%
                                "frontend_tc": 3_010_000.0}),
        )
        rc = main(["perf", "gate", "--report", candidate,
                   "--registry", registry_dir])
        assert rc == 1
        out = capsys.readouterr().out
        assert "FAIL xbc" in out and "step" in out
        assert "PASS tc" in out
        assert "gate: FAIL" in out

    def test_gate_passes_noisy_stationary_candidate(self, registry_dir,
                                                    tmp_path, capsys):
        seed_stationary(registry_dir, tmp_path, jitter=0.10, count=10)
        candidate = write_json(
            tmp_path / "cand.json",
            make_report("cand123",
                        phases={"frontend_xbc": 600_000.0 * 0.92,
                                "frontend_tc": 3_000_000.0 * 1.08}),
        )
        rc = main(["perf", "gate", "--report", candidate,
                   "--registry", registry_dir])
        assert rc == 0
        assert "gate: PASS" in capsys.readouterr().out

    def test_gate_add_records_candidate(self, registry_dir, tmp_path,
                                        capsys):
        seed_stationary(registry_dir, tmp_path)
        candidate = write_json(tmp_path / "cand.json",
                               make_report("cand123"))
        rc = main(["perf", "gate", "--report", candidate, "--add",
                   "--registry", registry_dir])
        assert rc == 0
        assert PerfRegistry(registry_dir).revs()[-1] == "cand123"

    def test_gate_add_records_even_a_failing_candidate(self, registry_dir,
                                                       tmp_path):
        seed_stationary(registry_dir, tmp_path)
        candidate = write_json(
            tmp_path / "cand.json",
            make_report("cand123", phases={"frontend_xbc": 100.0,
                                           "frontend_tc": 100.0}),
        )
        rc = main(["perf", "gate", "--report", candidate, "--add",
                   "--registry", registry_dir])
        assert rc == 1
        assert "cand123" in PerfRegistry(registry_dir).revs()

    def test_gate_empty_registry_passes(self, registry_dir, tmp_path,
                                        capsys):
        candidate = write_json(tmp_path / "cand.json",
                               make_report("cand123"))
        rc = main(["perf", "gate", "--report", candidate,
                   "--registry", registry_dir])
        assert rc == 0
        assert "no-history" in capsys.readouterr().out

    def test_gate_calibration_rescue(self, registry_dir, tmp_path):
        """Half-speed machine at half throughput is NOT a regression."""
        seed_stationary(registry_dir, tmp_path)
        candidate = write_json(
            tmp_path / "cand.json",
            make_report("cand123", calibration=2.5e6,
                        phases={"frontend_xbc": 300_000.0,
                                "frontend_tc": 1_500_000.0}),
        )
        assert main(["perf", "gate", "--report", candidate,
                     "--registry", registry_dir]) == 0

    def test_gate_calibration_exposes_real_regression(self, registry_dir,
                                                      tmp_path):
        """Same machine speed, -25% throughput IS a regression."""
        seed_stationary(registry_dir, tmp_path)
        candidate = write_json(
            tmp_path / "cand.json",
            make_report("cand123",
                        phases={"frontend_xbc": 450_000.0,
                                "frontend_tc": 2_250_000.0}),
        )
        assert main(["perf", "gate", "--report", candidate,
                     "--registry", registry_dir]) == 1


class TestCheckReportPlumbing:
    def test_own_rev_excluded_from_history(self, registry_dir, tmp_path):
        registry = seed_stationary(registry_dir, tmp_path)
        # Record a terrible run for rev07, then gate the same rev with
        # good numbers: its own entry must not drag the fit down.
        registry.add(make_report("rev07",
                                 phases={"frontend_xbc": 1.0,
                                         "frontend_tc": 1.0}))
        report = make_report("rev07")
        checks = check_report(registry, report)
        assert all(check.history == 7 for check in checks)

    def test_filtered_report_gates_only_its_phases(self, registry_dir,
                                                   tmp_path):
        registry = seed_stationary(registry_dir, tmp_path)
        report = make_report("cand123",
                             phases={"frontend_tc": 3_000_000.0})
        checks = check_report(registry, report)
        assert [check.phase for check in checks] == ["frontend_tc"]

    def test_quick_candidate_ignores_full_run_history(self, registry_dir,
                                                      tmp_path):
        """Quick and full benches measure different workloads; a quick
        candidate must start its own trajectory rather than false-fail
        against full-run numbers (trace_gen pays fixed per-trace costs
        that dominate at the quick budget)."""
        registry = seed_stationary(registry_dir, tmp_path)
        slow_but_quick = make_report(
            "cand123", quick=True,
            phases={"frontend_xbc": 350_000.0,   # -40% vs full runs
                    "frontend_tc": 1_800_000.0},
        )
        checks = check_report(registry, slow_but_quick)
        assert all(check.status == "no-history" for check in checks)
        assert not any(check.failed for check in checks)

    def test_quick_candidate_gates_against_quick_history(
            self, registry_dir, tmp_path):
        registry = seed_stationary(registry_dir, tmp_path)
        for i in range(6):
            registry.add(make_report(
                f"quick{i}", quick=True,
                phases={"frontend_xbc": 400_000.0,
                        "frontend_tc": 2_000_000.0}))
        regressed = make_report(
            "cand123", quick=True,
            phases={"frontend_xbc": 300_000.0,   # -25% vs quick history
                    "frontend_tc": 2_000_000.0})
        checks = {check.phase: check
                  for check in check_report(registry, regressed)}
        assert checks["frontend_xbc"].failed
        assert checks["frontend_xbc"].status == "step"
        assert not checks["frontend_tc"].failed


class TestGateDirtyRevs:
    def _seed_with_dirty(self, registry_dir):
        registry = PerfRegistry(registry_dir)
        for i in range(6):
            registry.add(make_report(
                f"clean{i}", phases={"frontend_xbc": 600_000.0}))
        for i in range(6):
            registry.add(make_report(
                f"scratch{i}-dirty",
                phases={"frontend_xbc": 6_000_000.0}))

    def test_gate_ignores_dirty_history_by_default(self, registry_dir,
                                                   tmp_path):
        self._seed_with_dirty(registry_dir)
        candidate = write_json(
            tmp_path / "cand.json",
            make_report("cand123", phases={"frontend_xbc": 600_000.0}),
        )
        rc = main(["perf", "gate", "--report", candidate,
                   "--registry", registry_dir])
        assert rc == 0

    def test_gate_include_dirty_flag(self, registry_dir, tmp_path):
        self._seed_with_dirty(registry_dir)
        candidate = write_json(
            tmp_path / "cand.json",
            make_report("cand123", phases={"frontend_xbc": 600_000.0}),
        )
        rc = main(["perf", "gate", "--report", candidate,
                   "--include-dirty", "--registry", registry_dir])
        assert rc == 1  # the scratch runs poison the trend again
