"""Shared fixtures for the perf-registry tests: synthetic bench
reports in every schema the registry must ingest."""

import pytest


def make_report(rev, *, schema=3, calibration=5e6, phases=None,
                timestamp="2026-08-07T00:00:00+00:00", quick=False):
    """A minimal-but-valid bench report dict.

    *phases* maps phase name to uops/s; seconds/uops are derived so
    the dict shapes match what the harness writes.
    """
    phases = phases or {"frontend_xbc": 600_000.0}
    report = {
        "schema": schema,
        "rev": rev,
        "python": "3.11.7",
        "implementation": "CPython",
        "platform": "Linux-test",
        "cpu_count": 1,
        "budget_uops": 60_000 if quick else 150_000,
        "quick": quick,
        "suites": ["specint"] if quick else ["specint", "games", "sysmark"],
        "repeats": 2 if quick else 3,
        "calibration_ops_per_sec": calibration,
        "peak_rss_kb": 50_000,
        "phases": {
            name: {
                "seconds": round(450_000 / ups, 6),
                "uops": 450_000,
                "uops_per_sec": ups,
            }
            for name, ups in phases.items()
        },
    }
    if schema >= 2:
        report["cpu_affinity"] = 1
        report["phase_list"] = list(phases)
    if schema >= 3:
        report["timestamp"] = timestamp
    return report


@pytest.fixture
def report_factory():
    return make_report
