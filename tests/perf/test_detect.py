"""Detector behavior on synthetic per-phase series.

The three load-bearing cases from the issue: an injected 25% step
regression and a gradual drift must be flagged, while a noisy
stationary series (±10% jitter) must pass.
"""

import random

import pytest

from repro.perf.detect import (
    DetectorParams,
    check_series,
    series_sigma,
    theil_sen,
)


def jittered(level, jitter, count, seed):
    rng = random.Random(seed)
    return [level * (1.0 + rng.uniform(-jitter, jitter))
            for _ in range(count)]


class TestTheilSen:
    def test_exact_line(self):
        values = [2.0 + 0.5 * i for i in range(8)]
        slope, intercept = theil_sen(values)
        assert slope == pytest.approx(0.5)
        assert intercept == pytest.approx(2.0)

    def test_single_outlier_does_not_tilt_the_fit(self):
        values = [1.0] * 9 + [10.0] + [1.0] * 9
        slope, _ = theil_sen(values)
        assert abs(slope) < 0.01

    def test_single_point(self):
        assert theil_sen([3.0]) == (0.0, 3.0)


class TestStepRegression:
    def test_injected_25pct_step_is_flagged(self):
        history = jittered(1.0, 0.02, 12, seed=7)
        check = check_series(history, 0.75)
        assert check.failed
        assert check.status == "step"

    def test_step_on_perfectly_flat_series(self):
        check = check_series([1.0] * 10, 0.75)
        assert check.failed and check.status == "step"

    def test_small_dip_within_band_passes(self):
        history = jittered(1.0, 0.05, 12, seed=3)
        check = check_series(history, 0.93)
        assert not check.failed

    def test_improvement_is_reported_not_failed(self):
        history = jittered(1.0, 0.02, 12, seed=11)
        check = check_series(history, 1.5)
        assert not check.failed
        assert check.status == "improved"

    def test_step_after_an_improvement_trend(self):
        """History that climbed then a candidate back at the old level:
        the fit projects the climb, so the give-back is flagged."""
        history = [1.0 + 0.1 * i for i in range(10)]
        check = check_series(history, 1.0)
        assert check.failed and check.status == "step"


class TestDriftRegression:
    def test_gradual_drift_is_flagged(self):
        values = [1.0 * (0.975 ** i) for i in range(12)]
        check = check_series(values[:-1], values[-1])
        assert check.failed
        assert check.status == "drift"

    def test_slow_leak_below_step_band_still_caught(self):
        # 2% per entry never trips the 5%-floor step band on any single
        # rev, but compounds to ~20% across the window.
        values = [1.0 - 0.02 * i for i in range(12)]
        check = check_series(values[:-1], values[-1])
        assert check.failed and check.status == "drift"

    def test_stationary_series_is_not_drift(self):
        history = jittered(1.0, 0.02, 12, seed=5)
        check = check_series(history, 1.0)
        assert not check.failed


class TestNoisyStationarySeries:
    def test_pm10pct_jitter_passes(self):
        values = jittered(1.0, 0.10, 13, seed=42)
        check = check_series(values[:-1], values[-1])
        assert not check.failed

    def test_pm10pct_jitter_passes_at_every_suffix(self):
        """Replaying the series point by point never trips the gate —
        the band adapts to the series' own noise."""
        values = jittered(1.0, 0.10, 20, seed=1234)
        for end in range(1, len(values)):
            check = check_series(values[:end], values[end])
            assert not check.failed, (end, check)


class TestColdStart:
    def test_no_history_passes(self):
        check = check_series([], 1.0)
        assert not check.failed
        assert check.status == "no-history"

    def test_short_history_uses_median_ratio(self):
        check = check_series([1.0, 1.02], 0.8)
        assert not check.failed
        assert check.status == "cold-ok"

    def test_short_history_flags_large_drop(self):
        check = check_series([1.0, 1.02, 0.98], 0.6)
        assert check.failed
        assert check.status == "cold-step"

    def test_cold_tolerance_is_tunable(self):
        params = DetectorParams(cold_tolerance=0.10)
        check = check_series([1.0, 1.0], 0.85, params)
        assert check.failed


class TestParams:
    def test_window_limits_lookback(self):
        # Ancient bad values outside the window must not widen the band.
        history = [0.2] * 20 + [1.0] * 10
        check = check_series(history, 0.75, DetectorParams(window=10))
        assert check.failed and check.status == "step"

    def test_k_sigma_widens_the_band(self):
        history = jittered(1.0, 0.05, 12, seed=9)
        tight = check_series(history, 0.8, DetectorParams(k_sigma=1.0))
        wide = check_series(history, 0.8, DetectorParams(k_sigma=10.0,
                                                         min_band=0.01))
        assert tight.failed and not wide.failed


class TestSeriesSigma:
    def test_needs_three_points(self):
        assert series_sigma([1.0, 2.0]) is None

    def test_detrended(self):
        # A clean trend has ~zero residual sigma even though the raw
        # values spread widely.
        values = [1.0 + 0.2 * i for i in range(10)]
        assert series_sigma(values) == pytest.approx(0.0, abs=1e-12)

    def test_jitter_sigma_tracks_amplitude(self):
        sigma = series_sigma(jittered(1.0, 0.10, 30, seed=2))
        assert 0.02 < sigma < 0.15


class TestDirtyRevExclusion:
    """Scratch runs recorded from a dirty tree must not steer the fit."""

    def _seeded(self, tmp_path):
        from repro.perf.registry import PerfRegistry

        from tests.perf.conftest import make_report

        registry = PerfRegistry(str(tmp_path / "registry"))
        for i in range(6):
            registry.add(make_report(
                f"clean{i}", phases={"frontend_xbc": 600_000.0}))
        # Scratch runs from an uncommitted experiment, 10x faster; if
        # they enter the window, every honest later rev looks like a
        # step regression.
        for i in range(6):
            registry.add(make_report(
                f"scratch{i}-dirty",
                phases={"frontend_xbc": 6_000_000.0}))
        return registry

    def test_dirty_revs_excluded_by_default(self, tmp_path):
        from repro.perf.detect import check_report

        from tests.perf.conftest import make_report

        registry = self._seeded(tmp_path)
        candidate = make_report(
            "cand123", phases={"frontend_xbc": 600_000.0})
        checks = check_report(registry, candidate)
        assert len(checks) == 1
        assert not checks[0].failed
        assert checks[0].history == 6  # only the clean revs

    def test_include_dirty_restores_old_behavior(self, tmp_path):
        from repro.perf.detect import check_report

        from tests.perf.conftest import make_report

        registry = self._seeded(tmp_path)
        candidate = make_report(
            "cand123", phases={"frontend_xbc": 600_000.0})
        checks = check_report(registry, candidate, include_dirty=True)
        assert checks[0].history == 12
        assert checks[0].failed  # poisoned trend flags the honest rev

    def test_all_dirty_history_falls_back_to_no_history(self, tmp_path):
        from repro.perf.detect import check_report
        from repro.perf.registry import PerfRegistry

        from tests.perf.conftest import make_report

        registry = PerfRegistry(str(tmp_path / "registry"))
        registry.add(make_report(
            "wip-dirty", phases={"frontend_xbc": 600_000.0}))
        candidate = make_report(
            "cand123", phases={"frontend_xbc": 100.0})
        checks = check_report(registry, candidate)
        assert checks[0].status == "no-history"
        assert not checks[0].failed
