"""Tests for workload profiles and the profile registry."""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigError
from repro.program.profiles import (
    PROFILE_NAMES,
    PROFILE_STATIC_UOPS,
    SERVER_NAMES,
    SUITE_NAMES,
    WorkloadProfile,
    profile_by_name,
    profile_for_suite,
    register_profile,
    registered_profiles,
)


def test_all_suite_presets_validate():
    for suite in SUITE_NAMES:
        profile_for_suite(suite).validate()


def test_unknown_suite_rejected():
    with pytest.raises(ConfigError):
        profile_for_suite("spec2017")


def test_server_profiles_are_not_suites():
    with pytest.raises(ConfigError):
        profile_for_suite("server-web")


def test_default_profile_validates():
    WorkloadProfile().validate()


def test_suite_presets_differ():
    specint = profile_for_suite("specint")
    sysmark = profile_for_suite("sysmark")
    assert specint.num_functions != sysmark.num_functions
    assert specint.cond_mixture != sysmark.cond_mixture


def test_scaled_targets_footprint():
    base = profile_for_suite("specint")
    bigger = base.scaled(40_000)
    smaller = base.scaled(2_000)
    assert bigger.num_functions > base.num_functions
    assert smaller.num_functions < base.num_functions
    assert smaller.num_functions >= 4


@pytest.mark.parametrize(
    "field,value",
    [
        ("num_functions", 1),
        ("min_blocks_per_function", 1),
        ("max_blocks_per_function", 2),
        ("max_call_depth", 0),
        ("p_cond", 1.5),           # pushes the terminator-mix sum past 1
        ("p_cond", -0.1),          # negative weight
        ("mean_blocks_per_function", 0.0),
        ("mean_body_instrs", -1.0),
        ("mean_function_gap_bytes", -1.0),
        ("mean_loop_trip", 0.5),
        ("mean_loop_body", 0.5),
        ("p_nested_loop", 1.5),
        ("p_loop_escape", -0.1),
        ("escape_rate", 0.9),
        ("monotonic_bias", 0.4),
        ("biased_range", (0.9, 0.2)),
        ("max_body_instrs", 0),
        ("max_indirect_targets", 1),
        ("max_mean_trip", 1),
        ("pattern_max_period", 1),
        ("max_forward_jump_blocks", 0),
        ("max_backedge_span", 0),
        ("uops_per_instr", ()),
        ("uops_per_instr", ((0, 1.0),)),
    ],
)
def test_validation_rejects_bad_fields(field, value):
    profile = replace(WorkloadProfile(), **{field: value})
    with pytest.raises(ConfigError):
        profile.validate()


def test_terminator_mix_may_sum_below_one():
    # The generator normalizes by the actual sum, so a sub-unit mix is
    # legal (the fuzzer relies on this).
    profile = replace(
        WorkloadProfile(),
        p_cond=0.5, p_jump=0.1, p_call=0.1,
        p_indirect=0.05, p_indirect_call=0.05,
    )
    profile.validate()


def test_terminator_mix_must_be_positive():
    profile = replace(
        WorkloadProfile(),
        p_cond=0.0, p_jump=0.0, p_call=0.0,
        p_indirect=0.0, p_indirect_call=0.0,
    )
    with pytest.raises(ConfigError):
        profile.validate()


def test_cond_mixture_must_sum_to_one():
    profile = replace(
        WorkloadProfile(),
        cond_mixture=(("monotonic", 0.5), ("random", 0.2)),
    )
    with pytest.raises(ConfigError):
        profile.validate()


# -- registry ----------------------------------------------------------------


def test_registry_covers_suites_and_servers():
    names = set(registered_profiles())
    assert set(SUITE_NAMES) <= names
    assert set(SERVER_NAMES) <= names
    assert tuple(PROFILE_NAMES) == SUITE_NAMES + SERVER_NAMES


def test_profile_by_name_roundtrip():
    for name in PROFILE_NAMES:
        profile = profile_by_name(name)
        assert profile.name == name
        profile.validate()
        assert PROFILE_STATIC_UOPS[name] >= 100


def test_profile_by_name_unknown():
    with pytest.raises(ConfigError) as excinfo:
        profile_by_name("server-mainframe")
    assert "server-mainframe" in str(excinfo.value)


def test_register_profile_rejects_duplicates():
    profile = replace(WorkloadProfile(), name="specint")
    with pytest.raises(ConfigError):
        register_profile(profile)


def test_register_profile_rejects_invalid():
    profile = replace(WorkloadProfile(), name="broken", max_call_depth=0)
    with pytest.raises(ConfigError):
        register_profile(profile)


def test_registered_profiles_returns_copy():
    snapshot = registered_profiles()
    snapshot["bogus"] = WorkloadProfile()
    assert "bogus" not in registered_profiles()


# -- derived shape statistics -------------------------------------------------


def test_shape_stats_consistency():
    profile = WorkloadProfile()
    assert profile.mean_uops_per_instr() >= 1.0
    assert profile.mean_block_uops() > profile.mean_body_instrs
    shares = profile.terminator_shares()
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    assert 0.0 <= profile.indirect_rate() <= 1.0
    assert profile.estimated_static_uops() > 0


def test_server_family_is_bigger_and_flatter():
    for name in SERVER_NAMES:
        server = profile_by_name(name)
        specint = profile_by_name("specint")
        assert server.num_functions > 10 * specint.num_functions
        assert server.max_call_depth > specint.max_call_depth
        assert server.indirect_rate() > specint.indirect_rate()
        assert PROFILE_STATIC_UOPS[name] >= 10 * PROFILE_STATIC_UOPS["specint"]
