"""Tests for workload profiles."""

from dataclasses import replace

import pytest

from repro.common.errors import ConfigError
from repro.program.profiles import (
    SUITE_NAMES,
    WorkloadProfile,
    profile_for_suite,
)


def test_all_suite_presets_validate():
    for suite in SUITE_NAMES:
        profile_for_suite(suite).validate()


def test_unknown_suite_rejected():
    with pytest.raises(ConfigError):
        profile_for_suite("spec2017")


def test_default_profile_validates():
    WorkloadProfile().validate()


def test_suite_presets_differ():
    specint = profile_for_suite("specint")
    sysmark = profile_for_suite("sysmark")
    assert specint.num_functions != sysmark.num_functions
    assert specint.cond_mixture != sysmark.cond_mixture


def test_scaled_targets_footprint():
    base = profile_for_suite("specint")
    bigger = base.scaled(40_000)
    smaller = base.scaled(2_000)
    assert bigger.num_functions > base.num_functions
    assert smaller.num_functions < base.num_functions
    assert smaller.num_functions >= 4


@pytest.mark.parametrize(
    "field,value",
    [
        ("num_functions", 1),
        ("min_blocks_per_function", 1),
        ("max_blocks_per_function", 2),
        ("max_call_depth", 0),
        ("p_cond", 0.5),          # breaks the terminator-mix sum
        ("mean_loop_trip", 0.5),
        ("mean_loop_body", 0.5),
        ("p_nested_loop", 1.5),
        ("p_loop_escape", -0.1),
        ("escape_rate", 0.9),
        ("monotonic_bias", 0.4),
        ("biased_range", (0.9, 0.2)),
    ],
)
def test_validation_rejects_bad_fields(field, value):
    profile = replace(WorkloadProfile(), **{field: value})
    with pytest.raises(ConfigError):
        profile.validate()


def test_cond_mixture_must_sum_to_one():
    profile = replace(
        WorkloadProfile(),
        cond_mixture=(("monotonic", 0.5), ("random", 0.2)),
    )
    with pytest.raises(ConfigError):
        profile.validate()
