"""Tests for branch behaviour models."""

import pytest

from repro.common.rng import DeterministicRng
from repro.program.behavior import (
    BiasedBehavior,
    IndirectBehavior,
    LoopBehavior,
    PatternBehavior,
)


class TestBiased:
    def test_long_run_rate_matches_bias(self):
        b = BiasedBehavior(0.9, DeterministicRng(1))
        taken = sum(b.next_taken() for _ in range(5000))
        assert 0.87 < taken / 5000 < 0.93

    def test_extreme_biases(self):
        always = BiasedBehavior(1.0, DeterministicRng(1))
        never = BiasedBehavior(0.0, DeterministicRng(1))
        assert all(always.next_taken() for _ in range(100))
        assert not any(never.next_taken() for _ in range(100))

    def test_static_bias_property(self):
        assert BiasedBehavior(0.7, DeterministicRng(1)).static_bias == 0.7

    @pytest.mark.parametrize("p", [-0.1, 1.1])
    def test_out_of_range_rejected(self, p):
        with pytest.raises(ValueError):
            BiasedBehavior(p, DeterministicRng(1))


class TestLoop:
    def test_constant_trip_pattern(self):
        # jitter_p=0 makes every entry run exactly base_trip iterations.
        b = LoopBehavior(mean_trip=4.0, rng=DeterministicRng(1), jitter_p=0.0)
        outcomes = [b.next_taken() for _ in range(8)]
        # trip 4 => taken, taken, taken, not-taken; twice.
        assert outcomes == [True, True, True, False] * 2

    def test_trip_one_never_taken(self):
        b = LoopBehavior(mean_trip=1.0, rng=DeterministicRng(1), jitter_p=0.0)
        assert [b.next_taken() for _ in range(5)] == [False] * 5

    def test_reset_rearms_trip(self):
        b = LoopBehavior(mean_trip=3.0, rng=DeterministicRng(1), jitter_p=0.0)
        b.next_taken()
        b.reset()
        # After reset we are at the start of a fresh trip again.
        assert [b.next_taken() for _ in range(3)] == [True, True, False]

    def test_always_terminates(self):
        b = LoopBehavior(mean_trip=50.0, rng=DeterministicRng(1), max_trip=64)
        # Every entry must produce a not-taken within max_trip outcomes.
        for _ in range(20):
            for i in range(65):
                if not b.next_taken():
                    break
            else:
                pytest.fail("loop exceeded max_trip without exiting")

    def test_static_bias(self):
        b = LoopBehavior(mean_trip=10.0, rng=DeterministicRng(1))
        assert b.static_bias == pytest.approx(0.9)

    def test_bad_trip_rejected(self):
        with pytest.raises(ValueError):
            LoopBehavior(mean_trip=0.5, rng=DeterministicRng(1))


class TestPattern:
    def test_cycles_through_pattern(self):
        b = PatternBehavior([True, False, False])
        assert [b.next_taken() for _ in range(6)] == [
            True, False, False, True, False, False,
        ]

    def test_reset(self):
        b = PatternBehavior([True, False])
        b.next_taken()
        b.reset()
        assert b.next_taken() is True

    def test_static_bias(self):
        assert PatternBehavior([True, True, False]).static_bias == pytest.approx(2 / 3)

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            PatternBehavior([])


class TestIndirect:
    def test_targets_drawn_from_set(self):
        targets = [0x100, 0x200, 0x300]
        b = IndirectBehavior(targets, DeterministicRng(1))
        for _ in range(200):
            assert b.next_target() in targets

    def test_zipf_skew_prefers_first(self):
        b = IndirectBehavior([1, 2, 3, 4], DeterministicRng(1), skew=1.5)
        draws = [b.next_target() for _ in range(4000)]
        assert draws.count(1) > draws.count(4)
        assert b.dominant_fraction > 0.4

    def test_single_target_is_deterministic(self):
        b = IndirectBehavior([0x42], DeterministicRng(1))
        assert all(b.next_target() == 0x42 for _ in range(20))

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            IndirectBehavior([], DeterministicRng(1))
