"""Tests for the CFG data model."""

import pytest

from repro.isa.image import ProgramImage
from repro.isa.instruction import Instruction, InstrKind
from repro.program.cfg import (
    BasicBlockSpec,
    FunctionSpec,
    LayoutBlock,
    Program,
    TerminatorKind,
)


class TestTerminatorKind:
    def test_instr_kind_mapping_total(self):
        for kind in TerminatorKind:
            assert kind.instr_kind in InstrKind

    def test_specific_mappings(self):
        assert TerminatorKind.COND.instr_kind is InstrKind.COND_BRANCH
        assert TerminatorKind.RET.instr_kind is InstrKind.RETURN
        assert TerminatorKind.INDIRECT.instr_kind is InstrKind.INDIRECT_JUMP


class TestBasicBlockSpec:
    def test_valid_cond(self):
        BasicBlockSpec(
            bid=0, fid=0, body_uop_counts=[1], terminator=TerminatorKind.COND,
            taken_bid=1, fall_bid=2,
        ).validate()

    @pytest.mark.parametrize(
        "terminator,kwargs",
        [
            (TerminatorKind.COND, dict(taken_bid=1)),          # no fall
            (TerminatorKind.COND, dict(fall_bid=1)),           # no taken
            (TerminatorKind.JUMP, dict()),                     # no target
            (TerminatorKind.CALL, dict(taken_bid=1)),          # no fall
            (TerminatorKind.INDIRECT, dict()),                 # no targets
            (TerminatorKind.INDIRECT_CALL, dict(fall_bid=1)),  # no targets
        ],
    )
    def test_inconsistent_specs_rejected(self, terminator, kwargs):
        spec = BasicBlockSpec(
            bid=0, fid=0, body_uop_counts=[], terminator=terminator, **kwargs
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_ret_needs_nothing(self):
        BasicBlockSpec(
            bid=0, fid=0, body_uop_counts=[], terminator=TerminatorKind.RET
        ).validate()

    def test_num_body_instrs(self):
        spec = BasicBlockSpec(
            bid=0, fid=0, body_uop_counts=[1, 2, 1],
            terminator=TerminatorKind.RET,
        )
        assert spec.num_body_instrs == 3


def _tiny_program():
    image = ProgramImage()
    body = Instruction(ip=0x100, size=2, kind=InstrKind.ALU, num_uops=2)
    term = Instruction(ip=0x102, size=2, kind=InstrKind.COND_BRANCH,
                       num_uops=1, target=0x100)
    image.add(body)
    image.add(term)
    block = LayoutBlock(
        bid=0, fid=0, entry_ip=0x100, body=[body], terminator=term,
        taken_bid=0, fall_bid=0, indirect_bids=[],
        terminator_kind=TerminatorKind.COND,
    )
    return Program(
        image=image.freeze(),
        blocks={0: block},
        functions=[FunctionSpec(fid=0, level=0, block_bids=[0])],
        entry_bid=0,
        cond_behaviors={},
        indirect_behaviors={},
        suite="test",
        name="tiny",
        seed=1,
    )


class TestLayoutBlockAndProgram:
    def test_block_properties(self):
        program = _tiny_program()
        block = program.blocks[0]
        assert block.num_uops == 3
        assert [i.ip for i in block.instructions] == [0x100, 0x102]

    def test_program_lookup(self):
        program = _tiny_program()
        assert program.entry_block.bid == 0
        assert program.block_at_ip(0x100).bid == 0
        assert program.block_at_ip(0x999) is None

    def test_program_counters(self):
        program = _tiny_program()
        assert program.num_blocks == 1
        assert program.static_uops == 3

    def test_describe(self):
        text = _tiny_program().describe()
        assert "tiny" in text and "test" in text and "1 blocks" in text
