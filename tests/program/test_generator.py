"""Structural tests for the synthetic program generator."""

from dataclasses import replace

import pytest

from repro.isa.instruction import InstrKind
from repro.program.behavior import LoopBehavior
from repro.program.cfg import TerminatorKind
from repro.program.generator import generate_program
from repro.program.profiles import profile_for_suite


@pytest.fixture(scope="module")
def program():
    profile = replace(profile_for_suite("specint"), num_functions=20)
    return generate_program(profile, seed=5, name="gen-test", suite="specint")


class TestStructure:
    def test_every_block_has_consistent_successors(self, program):
        for block in program.blocks.values():
            kind = block.terminator_kind
            if kind is TerminatorKind.COND:
                assert block.taken_bid is not None
                assert block.fall_bid is not None
            elif kind is TerminatorKind.JUMP:
                assert block.taken_bid is not None
            elif kind is TerminatorKind.CALL:
                assert block.taken_bid is not None
                assert block.fall_bid is not None
            elif kind is TerminatorKind.INDIRECT:
                assert len(block.indirect_bids) >= 2
            elif kind is TerminatorKind.INDIRECT_CALL:
                assert len(block.indirect_bids) >= 2
                assert block.fall_bid is not None

    def test_successor_bids_exist(self, program):
        for block in program.blocks.values():
            for bid in [block.taken_bid, block.fall_bid] + block.indirect_bids:
                if bid is not None:
                    assert bid in program.blocks

    def test_terminator_targets_resolve_to_block_entries(self, program):
        entries = {b.entry_ip for b in program.blocks.values()}
        for block in program.blocks.values():
            target = block.terminator.target
            if target is not None:
                assert target in entries

    def test_every_function_ends_with_ret_except_main(self, program):
        for fn in program.functions:
            last = program.blocks[fn.block_bids[-1]]
            if fn.fid == 0:
                assert last.terminator_kind is TerminatorKind.JUMP
            else:
                assert last.terminator_kind is TerminatorKind.RET

    def test_call_graph_levels_strictly_increase(self, program):
        level = {fn.fid: fn.level for fn in program.functions}
        fid_of_bid = {b.bid: b.fid for b in program.blocks.values()}
        for block in program.blocks.values():
            if block.terminator_kind is TerminatorKind.CALL:
                callee_fid = fid_of_bid[block.taken_bid]
                assert level[callee_fid] > level[block.fid]
            if block.terminator_kind is TerminatorKind.INDIRECT_CALL:
                for bid in block.indirect_bids:
                    assert level[fid_of_bid[bid]] > level[block.fid]

    def test_behaviors_attached_to_every_dynamic_branch(self, program):
        for block in program.blocks.values():
            term = block.terminator
            if term.kind is InstrKind.COND_BRANCH:
                assert term.ip in program.cond_behaviors
            if term.kind in (InstrKind.INDIRECT_JUMP, InstrKind.INDIRECT_CALL):
                assert term.ip in program.indirect_behaviors

    def test_backedges_are_loop_behaviors(self, program):
        for block in program.blocks.values():
            if (
                block.terminator_kind is TerminatorKind.COND
                and block.taken_bid is not None
                and block.taken_bid <= block.bid
            ):
                behavior = program.cond_behaviors[block.terminator.ip]
                assert isinstance(behavior, LoopBehavior)

    def test_forward_conds_are_not_loops(self, program):
        # Non-backedge conditionals must never use trip-limited behaviour
        # keyed to loop state (they would desynchronize loop planning).
        for block in program.blocks.values():
            if (
                block.terminator_kind is TerminatorKind.COND
                and block.taken_bid is not None
                and block.taken_bid > block.bid
            ):
                behavior = program.cond_behaviors[block.terminator.ip]
                assert not isinstance(behavior, LoopBehavior)

    def test_image_contains_all_instructions(self, program):
        for block in program.blocks.values():
            for instr in block.instructions:
                assert program.image.fetch(instr.ip) is instr

    def test_block_instructions_contiguous(self, program):
        for block in program.blocks.values():
            instrs = block.instructions
            assert instrs[0].ip == block.entry_ip
            for a, b in zip(instrs, instrs[1:]):
                assert a.next_ip == b.ip


class TestDeterminism:
    def test_same_seed_same_program(self):
        profile = replace(profile_for_suite("games"), num_functions=10)
        p1 = generate_program(profile, seed=99)
        p2 = generate_program(profile, seed=99)
        assert p1.static_uops == p2.static_uops
        assert p1.num_blocks == p2.num_blocks
        ips1 = [i.ip for i in p1.image]
        ips2 = [i.ip for i in p2.image]
        assert ips1 == ips2

    def test_different_seeds_differ(self):
        profile = replace(profile_for_suite("games"), num_functions=10)
        p1 = generate_program(profile, seed=1)
        p2 = generate_program(profile, seed=2)
        assert [i.ip for i in p1.image] != [i.ip for i in p2.image]


class TestScaling:
    def test_static_footprint_tracks_profile(self):
        base = profile_for_suite("specint")
        small = generate_program(base.scaled(3000), seed=4)
        large = generate_program(base.scaled(24000), seed=4)
        assert small.static_uops < large.static_uops
        assert 1500 < small.static_uops < 7000
        assert 14000 < large.static_uops < 40000

    def test_describe_mentions_suite(self, program):
        assert "specint" in program.describe()
