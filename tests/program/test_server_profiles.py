"""Statistical calibration of the server profile family.

Each ``server-*`` profile claims a shape: a huge flat instruction
working set, deep call chains, a high indirect-branch rate, and a
flatter branch-bias histogram than the desktop suites.  These tests
generate a (scaled-down) instance of each profile and measure those
properties on the actual dynamic stream, with tolerances wide enough
to survive seed-to-seed variation but tight enough that a profile
regression (or generator change) shows up.
"""

from functools import lru_cache

import pytest

from repro.isa.instruction import KIND_CODE, InstrKind
from repro.harness.registry import make_trace, scenario_spec
from repro.program.generator import generate_program
from repro.program.profiles import SERVER_NAMES, profile_by_name

#: Footprint the calibration instances are generated at — large enough
#: for server-like behaviour, small enough to keep the suite fast.
STATIC = 60_000
LENGTH = 50_000

_COND = KIND_CODE[InstrKind.COND_BRANCH]
_IND = KIND_CODE[InstrKind.INDIRECT_JUMP]
_IND_CALL = KIND_CODE[InstrKind.INDIRECT_CALL]
_CALL = KIND_CODE[InstrKind.CALL]
_RET = KIND_CODE[InstrKind.RETURN]


@lru_cache(maxsize=None)
def _trace(name: str):
    return make_trace(
        scenario_spec(name, 0, LENGTH, static_uops=STATIC)
    )


@lru_cache(maxsize=None)
def _program(name: str):
    spec = scenario_spec(name, 0, LENGTH, static_uops=STATIC)
    profile = profile_by_name(name).scaled(STATIC)
    return generate_program(profile, seed=spec.seed, name=spec.name)


def _bias_histogram(trace):
    """Per-site taken rates of conditional branches with >= 8 visits."""
    taken = {}
    visits = {}
    for kind, ip, was_taken in zip(trace.kinds, trace.ips, trace.takens):
        if kind == _COND:
            visits[ip] = visits.get(ip, 0) + 1
            taken[ip] = taken.get(ip, 0) + was_taken
    return [
        taken[ip] / visits[ip]
        for ip, count in visits.items()
        if count >= 8
    ]


def _max_call_depth(trace):
    depth = 0
    deepest = 0
    for kind in trace.kinds:
        if kind in (_CALL, _IND_CALL):
            depth += 1
            deepest = max(deepest, depth)
        elif kind == _RET:
            depth = max(0, depth - 1)
    return deepest


@pytest.mark.parametrize("name", SERVER_NAMES)
def test_footprint_hits_target(name):
    static = _program(name).image.total_uops
    assert 0.75 * STATIC <= static <= 1.30 * STATIC


@pytest.mark.parametrize("name", SERVER_NAMES)
def test_dynamic_reuse_is_low(name):
    # Server-class instruction streams spread over the big image: a
    # bounded window must touch far more static code than the desktop
    # suites reuse, yet only a fraction of the whole image.
    trace = _trace(name)
    touched = sum(
        instr.num_uops for instr in trace.instr_table.values()
    )
    spec_trace = make_trace(
        scenario_spec("specint", 0, LENGTH, static_uops=9_000)
    )
    spec_touched = sum(
        instr.num_uops for instr in spec_trace.instr_table.values()
    )
    assert touched > spec_touched
    assert touched < 0.5 * STATIC


@pytest.mark.parametrize("name", SERVER_NAMES)
def test_native_footprint_is_multi_megabyte(name):
    # At the registry's native scale the static image must span a
    # multi-megabyte address window (checked without generating it:
    # the estimator is validated against a real instance below).
    profile = profile_by_name(name)
    from repro.program.profiles import PROFILE_STATIC_UOPS

    native = profile.scaled(PROFILE_STATIC_UOPS[name])
    # ~4 bytes/instr plus inter-function gaps.
    instrs = (
        PROFILE_STATIC_UOPS[name] / native.mean_uops_per_instr()
    )
    span_estimate = 4.0 * instrs + (
        native.num_functions * native.mean_function_gap_bytes
    )
    assert span_estimate > 2 * 1024 * 1024


def test_span_estimator_matches_reality():
    # Anchor the estimator used above: the generated (scaled) instance's
    # real address span must be within 2x of the same formula.
    image = _program("server-oltp").image
    span = image.end_ip - image.lowest_ip
    profile = profile_by_name("server-oltp").scaled(STATIC)
    instrs = STATIC / profile.mean_uops_per_instr()
    estimate = 4.0 * instrs + (
        profile.num_functions * profile.mean_function_gap_bytes
    )
    assert estimate / 2 <= span <= estimate * 2


@pytest.mark.parametrize("name", SERVER_NAMES)
def test_call_chains_are_deep(name):
    server_depth = _max_call_depth(_trace(name))
    spec_depth = _max_call_depth(
        make_trace(scenario_spec("specint", 0, LENGTH, static_uops=9_000))
    )
    assert server_depth >= 5
    assert server_depth > spec_depth


@pytest.mark.parametrize("name", SERVER_NAMES)
def test_indirect_rate_is_high(name):
    trace = _trace(name)
    indirects = sum(
        1 for kind in trace.kinds if kind in (_IND, _IND_CALL)
    )
    branches = sum(
        1 for kind in trace.kinds
        if kind in (_COND, _IND, _IND_CALL, _CALL, _RET)
    ) or 1
    spec_trace = make_trace(
        scenario_spec("specint", 0, LENGTH, static_uops=9_000)
    )
    spec_indirects = sum(
        1 for kind in spec_trace.kinds if kind in (_IND, _IND_CALL)
    )
    spec_branches = sum(
        1 for kind in spec_trace.kinds
        if kind in (_COND, _IND, _IND_CALL, _CALL, _RET)
    ) or 1
    assert indirects / branches > 0.03
    assert indirects / branches > spec_indirects / spec_branches


@pytest.mark.parametrize("name", SERVER_NAMES)
def test_branch_bias_histogram_is_flat(name):
    rates = _bias_histogram(_trace(name))
    assert len(rates) >= 50
    mid = sum(1 for rate in rates if 0.15 <= rate <= 0.85)
    # Server-class code has a substantial population of genuinely
    # unpredictable branches; the desktop suites are mostly bimodal.
    assert mid / len(rates) >= 0.20
    spec_rates = _bias_histogram(
        make_trace(scenario_spec("specint", 0, LENGTH, static_uops=9_000))
    )
    spec_mid = sum(1 for rate in spec_rates if 0.15 <= rate <= 0.85)
    assert mid / len(rates) > spec_mid / max(1, len(spec_rates))
