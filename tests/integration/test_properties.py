"""Property-based tests (hypothesis) for the core data structures."""

from hypothesis import given, settings, strategies as st

from repro.branch.gshare import GsharePredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.common.histogram import Histogram
from repro.common.rng import DeterministicRng
from repro.isa.instruction import Instruction, InstrKind
from repro.trace.record import DynInstr, Trace
from repro.xbc.config import XbcConfig
from repro.xbc.fill import common_suffix_len
from repro.xbc.storage import XbcStorage
from repro.xbc.xbseq import build_xb_stream

# ----------------------------------------------------------------------
# storage round-trip
# ----------------------------------------------------------------------

uop_lists = st.lists(
    st.integers(min_value=1, max_value=2**24), min_size=1, max_size=16,
    unique=True,
)


@given(uops=uop_lists, xb_ip=st.integers(min_value=2, max_value=2**20))
@settings(max_examples=200, deadline=None)
def test_storage_roundtrip(uops, xb_ip):
    """Insert-then-read returns the exact uop sequence, any length/ip."""
    storage = XbcStorage(XbcConfig(total_uops=128))
    mask = storage.insert_xb(xb_ip, uops)
    assert mask is not None
    assert storage.read_variant(xb_ip, mask) == uops
    assert storage.probe(xb_ip, mask, len(uops), list(reversed(uops))) is not None


@given(
    suffix=st.lists(st.integers(min_value=1, max_value=2**20),
                    min_size=1, max_size=8, unique=True),
    prefix=st.lists(st.integers(min_value=2**20 + 1, max_value=2**21),
                    min_size=1, max_size=8, unique=True),
)
@settings(max_examples=100, deadline=None)
def test_storage_extension_roundtrip(suffix, prefix):
    """Extending at the head preserves both old and new content."""
    if len(suffix) + len(prefix) > 16:
        return
    storage = XbcStorage(XbcConfig(total_uops=128))
    mask = storage.insert_xb(0x900, suffix)
    new_mask = storage.extend_xb(0x900, mask, len(suffix), prefix)
    if new_mask is not None:
        assert storage.read_variant(0x900, new_mask) == prefix + suffix


# ----------------------------------------------------------------------
# common suffix
# ----------------------------------------------------------------------

@given(
    a=st.lists(st.integers(0, 9), max_size=20),
    b=st.lists(st.integers(0, 9), max_size=20),
)
@settings(max_examples=200)
def test_common_suffix_is_a_suffix_of_both(a, b):
    n = common_suffix_len(a, b)
    assert a[len(a) - n:] == b[len(b) - n:]
    if n < min(len(a), len(b)):
        assert a[len(a) - n - 1] != b[len(b) - n - 1]


# ----------------------------------------------------------------------
# XB stream invariants over synthetic straight-line runs
# ----------------------------------------------------------------------

def _run_records(uop_sizes, end_kind=InstrKind.COND_BRANCH):
    records = []
    ip = 0x1000
    for size in uop_sizes:
        instr = Instruction(ip=ip, size=2, kind=InstrKind.ALU, num_uops=size)
        records.append(DynInstr(instr=instr, taken=False, next_ip=ip + 2))
        ip += 2
    end = Instruction(ip=ip, size=2, kind=end_kind, num_uops=1,
                      target=0x9000 if end_kind is InstrKind.COND_BRANCH else None)
    records.append(DynInstr(instr=end, taken=True, next_ip=0x9000))
    return records


@given(sizes=st.lists(st.integers(1, 4), min_size=0, max_size=40))
@settings(max_examples=200)
def test_xb_stream_covers_and_respects_quota(sizes):
    records = _run_records(sizes)
    steps = build_xb_stream(Trace(records), quota=16)
    assert sum(len(s.uops) for s in steps) == sum(sizes) + 1
    assert all(1 <= len(s.uops) <= 16 for s in steps)
    # contiguous, ordered coverage of the record range
    cursor = 0
    for step in steps:
        assert step.first_record == cursor
        cursor = step.last_record + 1
    assert cursor == len(records)


@given(
    sizes=st.lists(st.integers(1, 4), min_size=4, max_size=40),
    skip=st.integers(1, 3),
)
@settings(max_examples=200)
def test_xb_stream_entry_point_independent(sizes, skip):
    """Entering a run later never changes downstream chunk identities."""
    full_records = _run_records(sizes)
    late_records = full_records[skip:]
    full_ends = [s.end_ip for s in build_xb_stream(Trace(full_records))]
    late_ends = [s.end_ip for s in build_xb_stream(Trace(late_records))]
    # every late chunk end must be a chunk end of the full run
    assert set(late_ends) <= set(full_ends)
    assert late_ends[-1] == full_ends[-1]


# ----------------------------------------------------------------------
# predictors and stacks against reference models
# ----------------------------------------------------------------------

@given(ops=st.lists(
    st.one_of(
        st.tuples(st.just("push"), st.integers(0, 999)),
        st.tuples(st.just("pop"), st.just(0)),
    ),
    max_size=60,
))
@settings(max_examples=200)
def test_rsb_matches_bounded_stack_model(ops):
    depth = 8
    rsb = ReturnStackBuffer(depth=depth)
    model = []
    for op, value in ops:
        if op == "push":
            rsb.push(value)
            model.append(value)
            if len(model) > depth:
                model.pop(0)  # oldest entry overwritten
        else:
            expected = model.pop() if model else None
            assert rsb.pop() == expected


@given(outcomes=st.lists(st.booleans(), min_size=1, max_size=300))
@settings(max_examples=100)
def test_gshare_matches_reference(outcomes):
    """The fast implementation equals a straightforward reference."""
    predictor = GsharePredictor(history_bits=6, table_entries=256)
    table = [2] * 256
    history = 0
    ip = 0x1234
    for taken in outcomes:
        index = ((ip >> 1) ^ history) & 255
        expected_correct = (table[index] >= 2) == taken
        assert predictor.update(ip, taken) == expected_correct
        if taken:
            table[index] = min(3, table[index] + 1)
        else:
            table[index] = max(0, table[index] - 1)
        history = ((history << 1) | int(taken)) & 63


@given(values=st.lists(st.integers(0, 100), min_size=1, max_size=500))
@settings(max_examples=100)
def test_histogram_matches_reference(values):
    h = Histogram()
    h.update(values)
    assert h.total == len(values)
    assert h.mean == sum(values) / len(values)
    for v in set(values):
        assert h.count_of(v) == values.count(v)


@given(seed=st.integers(0, 2**32), salt=st.integers(0, 1000))
@settings(max_examples=50)
def test_rng_reset_replays_stream(seed, salt):
    rng = DeterministicRng(seed).fork(salt)
    first = [rng.random() for _ in range(10)]
    rng.reset()
    assert [rng.random() for _ in range(10)] == first
