"""Integration tests: the paper's headline shapes end-to-end.

These are the acceptance tests of the reproduction: on every suite the
XBC must beat the TC's hit rate at equal capacity, with comparable
bandwidth, and every frontend must account for every uop exactly once.
"""

import pytest

from repro.bbtc.config import BbtcConfig
from repro.bbtc.frontend import BbtcFrontend
from repro.frontend.config import FrontendConfig
from repro.frontend.ic_frontend import ICFrontend
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend

BUDGET = 4096


@pytest.fixture(scope="module")
def results(suite_traces):
    """(suite, kind) -> stats for all four frontends on all suites."""
    out = {}
    for suite, trace in suite_traces.items():
        fe = FrontendConfig()
        out[(suite, "ic")] = ICFrontend(fe).run(trace)
        out[(suite, "tc")] = TcFrontend(fe, TcConfig(total_uops=BUDGET)).run(trace)
        out[(suite, "xbc")] = XbcFrontend(fe, XbcConfig(total_uops=BUDGET)).run(trace)
        out[(suite, "bbtc")] = BbtcFrontend(fe, BbtcConfig(total_uops=BUDGET)).run(trace)
    return out


SUITES = ("specint", "sysmark", "games")


class TestHeadlineShapes:
    @pytest.mark.parametrize("suite", SUITES)
    def test_xbc_beats_tc_hit_rate(self, results, suite):
        # The paper's central claim (Figure 9): fewer uops from the IC.
        assert results[(suite, "xbc")].uop_miss_rate < results[
            (suite, "tc")
        ].uop_miss_rate

    @pytest.mark.parametrize("suite", SUITES)
    def test_bandwidth_comparable(self, results, suite):
        # Figure 8: "the difference ... is negligible".
        tc = results[(suite, "tc")].delivery_bandwidth
        xbc = results[(suite, "xbc")].delivery_bandwidth
        assert 0.8 < xbc / tc < 1.25

    @pytest.mark.parametrize("suite", SUITES)
    def test_both_beat_plain_ic_bandwidth(self, results, suite):
        ic = results[(suite, "ic")].overall_bandwidth
        assert results[(suite, "tc")].overall_bandwidth > ic
        assert results[(suite, "xbc")].overall_bandwidth > ic

    @pytest.mark.parametrize("suite", SUITES)
    def test_bbtc_between_tc_and_ic(self, results, suite):
        # §2.4: pointer-level redundancy beats uop-level redundancy.
        assert results[(suite, "bbtc")].uop_miss_rate < results[
            (suite, "tc")
        ].uop_miss_rate

    @pytest.mark.parametrize("suite", SUITES)
    def test_xbc_redundancy_free_vs_tc(self, results, suite):
        tc_red = results[(suite, "tc")].extra["tc_redundancy_x1000"]
        xbc_red = results[(suite, "xbc")].extra["xbc_redundancy_x1000"]
        assert xbc_red < tc_red
        assert xbc_red < 1200  # essentially redundancy-free


class TestConservation:
    @pytest.mark.parametrize("suite", SUITES)
    @pytest.mark.parametrize("kind", ("ic", "tc", "xbc", "bbtc"))
    def test_every_uop_once(self, results, suite_traces, suite, kind):
        assert results[(suite, kind)].total_uops == suite_traces[suite].total_uops

    @pytest.mark.parametrize("suite", SUITES)
    @pytest.mark.parametrize("kind", ("ic", "tc", "xbc", "bbtc"))
    def test_everything_retires(self, results, suite_traces, suite, kind):
        assert (
            results[(suite, kind)].retired_uops
            == suite_traces[suite].total_uops
        )
