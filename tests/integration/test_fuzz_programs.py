"""Fuzz: random mini-programs through every frontend.

Generates small programs from randomized profile parameters and checks
the non-negotiable invariants on each frontend: uop conservation, full
retirement, and sane metric ranges.  Catches interactions no crafted
scenario anticipates (odd terminator mixes, tiny loops, deep calls).
"""

from dataclasses import replace

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.bbtc.config import BbtcConfig
from repro.bbtc.frontend import BbtcFrontend
from repro.frontend.config import FrontendConfig
from repro.frontend.decoded_cache import DcConfig, DecodedCacheFrontend
from repro.program.generator import generate_program
from repro.program.profiles import WorkloadProfile
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend
from repro.trace.executor import execute_program
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend

profile_params = st.fixed_dictionaries({
    "num_functions": st.integers(4, 12),
    "mean_blocks_per_function": st.floats(4.0, 12.0),
    "mean_body_instrs": st.floats(1.5, 7.0),
    "mean_loop_trip": st.floats(2.0, 20.0),
    "mean_loop_gap": st.floats(1.0, 6.0),
    "mean_loop_body": st.floats(1.0, 5.0),
    "p_loop_escape": st.floats(0.0, 0.4),
    "p_nested_loop": st.floats(0.0, 0.6),
    "max_call_depth": st.integers(1, 6),
    "mean_indirect_targets": st.floats(2.0, 8.0),
    "mean_function_gap_bytes": st.floats(0.0, 3000.0),
})


@given(params=profile_params, seed=st.integers(0, 2**31))
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_programs_conserve_uops_everywhere(params, seed):
    profile = replace(WorkloadProfile(), **params)
    program = generate_program(profile, seed=seed, name="fuzz", suite="fuzz")
    trace = execute_program(program, max_uops=6000)
    assert trace.total_uops >= 6000

    fe = FrontendConfig()
    frontends = [
        DecodedCacheFrontend(fe, DcConfig(total_uops=512)),
        TcFrontend(fe, TcConfig(total_uops=1024)),
        BbtcFrontend(fe, BbtcConfig(total_uops=512, table_entries=256)),
        XbcFrontend(fe, XbcConfig(total_uops=512, xbtb_entries=256,
                                  xbtb_assoc=4)),
        XbcFrontend(fe, XbcConfig(total_uops=512, xbtb_entries=256,
                                  xbtb_assoc=4, overlap_policy="split")),
    ]
    for frontend in frontends:
        # verify_conservation inside run() raises on any accounting bug.
        stats = frontend.run(trace)
        assert stats.retired_uops == trace.total_uops, frontend.name
        assert 0.0 <= stats.uop_miss_rate <= 1.0, frontend.name
        assert stats.cycles > 0, frontend.name
        phases = stats.phase_breakdown()
        assert abs(sum(phases.values()) - 1.0) < 1e-9, frontend.name
