"""Edge-case traces through every frontend."""

import pytest

from repro.bbtc.config import BbtcConfig
from repro.bbtc.frontend import BbtcFrontend
from repro.frontend.config import FrontendConfig
from repro.frontend.decoded_cache import DcConfig, DecodedCacheFrontend
from repro.frontend.ic_frontend import ICFrontend
from repro.isa.instruction import Instruction, InstrKind
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend
from repro.trace.record import DynInstr, Trace
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend
from repro.xbc.xbseq import build_xb_stream


def all_frontends():
    fe = FrontendConfig()
    return [
        ICFrontend(fe),
        DecodedCacheFrontend(fe, DcConfig(total_uops=1024)),
        TcFrontend(fe, TcConfig(total_uops=1024)),
        BbtcFrontend(fe, BbtcConfig(total_uops=1024)),
        XbcFrontend(fe, XbcConfig(total_uops=1024)),
    ]


def single_instruction_trace():
    instr = Instruction(ip=0x100, size=2, kind=InstrKind.ALU, num_uops=3)
    return Trace([DynInstr(instr, False, 0x102)], name="one")


def single_branch_trace():
    instr = Instruction(ip=0x100, size=2, kind=InstrKind.COND_BRANCH,
                        num_uops=1, target=0x200)
    return Trace([DynInstr(instr, True, 0x200)], name="one-branch")


def straight_line_trace(n=50):
    records = []
    for i in range(n):
        instr = Instruction(ip=0x100 + 2 * i, size=2, kind=InstrKind.ALU,
                            num_uops=1)
        records.append(DynInstr(instr, False, instr.next_ip))
    return Trace(records, name="line")


class TestDegenerateTraces:
    @pytest.mark.parametrize("make", [
        single_instruction_trace, single_branch_trace, straight_line_trace,
    ])
    def test_every_frontend_conserves(self, make):
        trace = make()
        for frontend in all_frontends():
            stats = frontend.run(trace)
            assert stats.total_uops == trace.total_uops, frontend.name
            assert stats.retired_uops == trace.total_uops, frontend.name
            assert stats.cycles > 0, frontend.name

    def test_empty_trace(self):
        trace = Trace([], name="empty")
        for frontend in all_frontends():
            stats = frontend.run(trace)
            assert stats.total_uops == 0, frontend.name
            assert stats.uop_miss_rate == 0.0, frontend.name

    def test_xb_stream_of_empty_trace(self):
        assert build_xb_stream(Trace([], name="empty")) == []

    def test_xb_stream_single_branch(self):
        steps = build_xb_stream(single_branch_trace())
        assert len(steps) == 1
        assert steps[0].entry_offset == 1


class TestTinyQueues:
    def test_minimal_queue_still_conserves(self, small_trace):
        # Queue just big enough for one fetch window: heavy backpressure.
        fe = FrontendConfig(uop_queue_depth=16, renamer_width=2)
        stats = XbcFrontend(fe, XbcConfig(total_uops=1024)).run(small_trace)
        assert stats.total_uops == small_trace.total_uops

    def test_wide_renamer_reduces_cycles(self, small_trace):
        narrow = XbcFrontend(
            FrontendConfig(renamer_width=2), XbcConfig(total_uops=4096)
        ).run(small_trace)
        wide = XbcFrontend(
            FrontendConfig(renamer_width=16), XbcConfig(total_uops=4096)
        ).run(small_trace)
        assert wide.cycles < narrow.cycles


class TestExtremeGeometries:
    def test_one_set_xbc(self, small_trace):
        stats = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=32)  # a single set
        ).run(small_trace)
        assert stats.total_uops == small_trace.total_uops

    def test_single_way_tc(self, small_trace):
        stats = TcFrontend(
            FrontendConfig(), TcConfig(total_uops=1024, assoc=1)
        ).run(small_trace)
        assert stats.total_uops == small_trace.total_uops

    def test_giant_xbc_near_zero_miss(self, small_trace):
        stats = XbcFrontend(
            FrontendConfig(), XbcConfig(total_uops=262144)
        ).run(small_trace)
        # Everything fits: only cold/build misses remain.
        assert stats.uop_miss_rate < 0.08
