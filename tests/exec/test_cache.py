"""Tests for the persistent trace/result stores."""

import os

from repro.exec.cache import (
    ResultCache,
    TraceStore,
    default_cache_dir,
    disk_cache_stats,
)
from repro.harness.registry import (
    clear_trace_cache,
    make_trace,
    registry_spec,
    set_trace_store,
)


class TestDefaultCacheDir:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/override")
        assert default_cache_dir() == "/tmp/override"

    def test_xdg_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", "/tmp/xdg")
        assert default_cache_dir() == os.path.join("/tmp/xdg", "repro")

    def test_home_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.delenv("XDG_CACHE_HOME", raising=False)
        assert default_cache_dir().endswith(os.path.join(".cache", "repro"))


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.get("deadbeef") is None
        cache.put("deadbeef", {"value": 42}, meta={"job": "test"})
        assert cache.get("deadbeef") == {"value": 42}

    def test_stats_count_hits_misses_entries_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.get("missing")
        cache.put("k1", [1, 2, 3])
        cache.get("k1")
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.bytes > 0
        assert stats.hits == 1
        assert stats.misses == 1

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("bad", {"x": 1})
        path = os.path.join(cache.dir, "bad.json")
        with open(path, "w") as handle:
            handle.write("{not json")
        assert cache.get("bad") is None
        assert not os.path.exists(path)

    def test_atomic_overwrite_last_writer_wins(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", {"gen": 1})
        cache.put("k", {"gen": 2})
        assert cache.get("k") == {"gen": 2}


class TestTraceStore:
    def test_roundtrip_preserves_simulation_inputs(self, tmp_path):
        """A stored registry trace must reload record-for-record equal.

        This is the save/load round-trip the persistent cache depends
        on: every field the frontends consume must survive.
        """
        store = TraceStore(str(tmp_path))
        spec = registry_spec("games", 0, 8_000)
        clear_trace_cache()
        generated = make_trace(spec)
        store.store(spec, generated)
        loaded = store.load(spec)
        assert loaded is not None
        assert len(loaded) == len(generated)
        for a, b in zip(generated.records, loaded.records):
            assert a.ip == b.ip
            assert a.taken == b.taken
            assert a.next_ip == b.next_ip
            assert a.instr.kind == b.instr.kind
            assert a.instr.num_uops == b.instr.num_uops
            assert a.instr.size == b.instr.size
            assert a.instr.target == b.instr.target
        clear_trace_cache()

    def test_miss_returns_none(self, tmp_path):
        store = TraceStore(str(tmp_path))
        assert store.load(registry_spec("specint", 0, 9_000)) is None
        assert store.stats().misses == 1

    def test_key_depends_on_spec(self, tmp_path):
        a = TraceStore.key_for(registry_spec("specint", 0, 9_000))
        b = TraceStore.key_for(registry_spec("specint", 1, 9_000))
        c = TraceStore.key_for(registry_spec("specint", 0, 10_000))
        assert len({a, b, c}) == 3

    def test_make_trace_uses_installed_store(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = registry_spec("specint", 0, 6_000)
        previous = set_trace_store(store)
        try:
            clear_trace_cache()
            first = make_trace(spec)           # generated, persisted
            clear_trace_cache()
            second = make_trace(spec)          # loaded from disk
        finally:
            set_trace_store(previous)
            clear_trace_cache()
        assert store.stats().hits == 1
        assert len(first) == len(second)
        assert all(
            a.ip == b.ip for a, b in zip(first.records, second.records)
        )


class TestTraceCodecV2:
    """The binary v2 trace codec behind the persistent store."""

    def test_store_writes_v2_magic(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = registry_spec("specint", 0, 5_000)
        clear_trace_cache()
        store.store(spec, make_trace(spec))
        clear_trace_cache()
        path = os.path.join(store.dir, f"{store.key_for(spec)}.trace")
        with open(path, "rb") as handle:
            assert handle.read(13) == b"xbc-trace-v2\n"

    def test_v2_roundtrip_bit_exact(self, tmp_path):
        from repro.trace.tracefile import load_trace_auto, save_trace_binary

        spec = registry_spec("sysmark", 1, 7_000)
        clear_trace_cache()
        generated = make_trace(spec)
        clear_trace_cache()
        path = str(tmp_path / "t.trace")
        save_trace_binary(generated, path)
        loaded = load_trace_auto(path)
        assert loaded.name == generated.name
        assert loaded.suite == generated.suite
        assert loaded.seed == generated.seed
        # Columns compare exactly — they ARE the simulation input.
        assert loaded.ips == generated.ips
        assert loaded.takens == generated.takens
        assert loaded.next_ips == generated.next_ips
        assert loaded.kinds == generated.kinds
        assert loaded.nuops == generated.nuops
        assert loaded.snexts == generated.snexts
        assert loaded.instr_table == generated.instr_table

    def test_backward_compat_reads_v1_text(self, tmp_path):
        """Cache entries written before the columnar rewrite still load."""
        from repro.trace.tracefile import load_trace_auto, save_trace

        store = TraceStore(str(tmp_path))
        spec = registry_spec("games", 2, 5_000)
        clear_trace_cache()
        generated = make_trace(spec)
        clear_trace_cache()
        # Plant a v1 text entry exactly where the store would look.
        v1_path = os.path.join(store.dir, f"{store.key_for(spec)}.trace")
        save_trace(generated, v1_path)
        with open(v1_path, "r", encoding="ascii") as handle:
            assert handle.readline().startswith("xbc-trace-v1")

        via_auto = load_trace_auto(v1_path)
        via_store = store.load(spec)
        assert via_store is not None
        for loaded in (via_auto, via_store):
            assert len(loaded) == len(generated)
            assert loaded.ips == generated.ips
            assert loaded.takens == generated.takens
            assert loaded.next_ips == generated.next_ips
            assert loaded.instr_table == generated.instr_table

    def test_corrupt_v2_is_a_miss(self, tmp_path):
        store = TraceStore(str(tmp_path))
        spec = registry_spec("specint", 1, 5_000)
        path = os.path.join(store.dir, f"{store.key_for(spec)}.trace")
        with open(path, "wb") as handle:
            handle.write(b"xbc-trace-v2\nnot-zlib-at-all")
        assert store.load(spec) is None
        assert not os.path.exists(path)


def test_disk_cache_stats_scans_both_stores(tmp_path):
    root = str(tmp_path)
    ResultCache(root).put("k", {"v": 1})
    store = TraceStore(root)
    spec = registry_spec("games", 0, 5_000)
    clear_trace_cache()
    store.store(spec, make_trace(spec))
    clear_trace_cache()
    stats = disk_cache_stats(root)
    assert stats.results.entries == 1
    assert stats.traces.entries == 1
    assert stats.traces.bytes > 0
