"""Tests for cache pruning: age cutoff, byte budgets, tmp cleanup,
and claim protection under concurrent writers."""

from __future__ import annotations

import json
import os
import threading
import time

from repro.cli import main
from repro.exec.cache import (
    CLAIM_TTL_SECONDS,
    Claims,
    ResultCache,
    TraceStore,
    _TMP_GRACE_SECONDS,
    prune_cache,
)

HOUR = 3600.0


def _make_file(root, store, name, size=64, age=0.0) -> str:
    directory = os.path.join(root, store)
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, name)
    with open(path, "wb") as handle:
        handle.write(b"x" * size)
    stamp = time.time() - age
    os.utime(path, (stamp, stamp))
    return path


def test_prune_by_age_removes_only_old_entries(tmp_path):
    root = str(tmp_path)
    old = _make_file(root, "results", "old.json", age=10 * HOUR)
    fresh = _make_file(root, "results", "fresh.json", age=0.0)
    old_trace = _make_file(root, "traces", "old.trace", age=10 * HOUR)

    reports = prune_cache(root, max_age=HOUR)
    assert not os.path.exists(old)
    assert not os.path.exists(old_trace)
    assert os.path.exists(fresh)
    assert reports["results"].removed_entries == 1
    assert reports["results"].kept_entries == 1
    assert reports["traces"].removed_entries == 1
    assert reports["total"].removed_entries == 2
    assert reports["total"].kept_entries == 1


def test_prune_by_bytes_evicts_globally_oldest_first(tmp_path):
    """The byte budget bounds the whole root; eviction order is age,
    not directory."""
    root = str(tmp_path)
    oldest = _make_file(root, "traces", "a.trace", size=100, age=3 * HOUR)
    middle = _make_file(root, "results", "b.json", size=100, age=2 * HOUR)
    newest = _make_file(root, "results", "c.json", size=100, age=1 * HOUR)

    reports = prune_cache(root, max_bytes=250)
    # 300 bytes over a 250 budget: exactly the oldest file goes.
    assert not os.path.exists(oldest)
    assert os.path.exists(middle)
    assert os.path.exists(newest)
    assert reports["traces"].removed_entries == 1
    assert reports["results"].removed_entries == 0
    assert reports["total"].kept_bytes == 200


def test_prune_age_and_bytes_compose(tmp_path):
    root = str(tmp_path)
    ancient = _make_file(root, "results", "a.json", size=10, age=10 * HOUR)
    big_old = _make_file(root, "results", "b.json", size=400, age=2 * HOUR)
    small_new = _make_file(root, "results", "c.json", size=50, age=0.0)

    reports = prune_cache(root, max_age=5 * HOUR, max_bytes=100)
    assert not os.path.exists(ancient)   # over the age cutoff
    assert not os.path.exists(big_old)   # evicted for the byte budget
    assert os.path.exists(small_new)
    assert reports["total"].removed_entries == 2
    assert reports["total"].kept_bytes == 50


def test_dry_run_reports_without_removing(tmp_path):
    root = str(tmp_path)
    old = _make_file(root, "results", "old.json", age=10 * HOUR)
    reports = prune_cache(root, max_age=HOUR, dry_run=True)
    assert reports["results"].removed_entries == 1
    assert os.path.exists(old)


def test_stale_tmp_files_are_always_removed(tmp_path):
    """Atomic-write debris is never a valid entry: any prune pass
    removes temp files past the writer grace period and spares
    recent ones (a concurrent writer may still own those)."""
    root = str(tmp_path)
    stale = _make_file(
        root, "traces", "k.trace.tmp.123",
        age=_TMP_GRACE_SECONDS + 60,
    )
    recent = _make_file(root, "traces", "k.trace.tmp.456", age=0.0)
    entry = _make_file(root, "traces", "k.trace", age=0.0)

    reports = prune_cache(root, max_age=365 * 24 * HOUR)
    assert not os.path.exists(stale)
    assert os.path.exists(recent)
    assert os.path.exists(entry)
    assert reports["traces"].removed_entries == 1

    # Same behaviour under a byte budget large enough to keep all.
    stale2 = _make_file(
        root, "results", "r.json.tmp.9", age=_TMP_GRACE_SECONDS + 60
    )
    prune_cache(root, max_bytes=1 << 20)
    assert not os.path.exists(stale2)


def test_result_cache_prune_method(tmp_path):
    cache = ResultCache(str(tmp_path))
    for index in range(3):
        cache.put(f"key-{index}", {"value": index})
    stamp = time.time() - 10 * HOUR
    path = os.path.join(cache.dir, "key-0.json")
    os.utime(path, (stamp, stamp))

    report = cache.prune(max_age=HOUR)
    assert report.removed_entries == 1
    assert report.kept_entries == 2
    assert cache.get("key-0") is None
    assert cache.get("key-1") == {"value": 1}

    report = cache.prune(max_bytes=0)
    assert report.kept_entries == 0
    assert cache.get("key-1") is None


def test_trace_store_prune_method(tmp_path):
    store = TraceStore(str(tmp_path))
    _make_file(str(tmp_path), "traces", "a.trace", age=10 * HOUR)
    _make_file(str(tmp_path), "traces", "b.trace", age=0.0)
    report = store.prune(max_age=HOUR)
    assert report.removed_entries == 1
    assert report.kept_entries == 1


# ---------------------------------------------------------------------------
# Claim protection: prune must never race a concurrent worker
# ---------------------------------------------------------------------------


def test_prune_spares_actively_claimed_entries(tmp_path):
    """An entry under a live claim survives every prune limit — age
    cutoff, byte budget, and the global eviction path alike."""
    root = str(tmp_path)
    claimed = _make_file(root, "results", "work.json", size=100,
                         age=10 * HOUR)
    victim = _make_file(root, "results", "old.json", size=100,
                        age=10 * HOUR)
    claims = Claims(root)
    assert claims.acquire("work")

    reports = prune_cache(root, max_age=HOUR)
    assert os.path.exists(claimed)       # claim shields it from the cutoff
    assert not os.path.exists(victim)
    assert reports["results"].kept_entries == 1

    # Byte budget of zero: everything unprotected goes, the claim holds.
    prune_cache(root, max_bytes=0)
    assert os.path.exists(claimed)

    claims.release("work")
    prune_cache(root, max_age=HOUR)
    assert not os.path.exists(claimed)   # protection ends with the claim


def test_prune_spares_claimed_in_progress_tmp_files(tmp_path):
    """A mid-write worker's temp file is protected by its claim even
    past the grace period — the stale-tmp rule yields to the claim."""
    root = str(tmp_path)
    tmp_file = _make_file(root, "results", "work.json.tmp.123",
                          age=_TMP_GRACE_SECONDS + 60)
    orphan = _make_file(root, "results", "gone.json.tmp.9",
                        age=_TMP_GRACE_SECONDS + 60)
    claims = Claims(root)
    assert claims.acquire("work")

    prune_cache(root, max_age=365 * 24 * HOUR)
    assert os.path.exists(tmp_file)      # claimed writer still owns it
    assert not os.path.exists(orphan)    # unclaimed debris still goes


def test_stale_claims_are_swept_and_reported(tmp_path):
    root = str(tmp_path)
    claims = Claims(root)
    claims.acquire("live")
    claims.acquire("dead")
    stamp = time.time() - (CLAIM_TTL_SECONDS + 60)
    os.utime(claims.path("dead"), (stamp, stamp))

    reports = prune_cache(root, max_age=HOUR)
    assert reports["claims"].removed_entries == 1
    assert not os.path.exists(claims.path("dead"))
    assert os.path.exists(claims.path("live"))


def test_prune_with_live_writer_never_deletes_its_entry(tmp_path):
    """Regression: aggressive pruning racing a worker that claims,
    writes and rewrites its entry must never observe a deleted entry
    after the claim is taken."""
    root = str(tmp_path)
    cache = ResultCache(root)
    claims = Claims(root)
    key = "live-writer"
    stop = threading.Event()
    failures = []

    def writer():
        assert claims.acquire(key)
        try:
            cache.put(key, {"round": 0})
            while not stop.is_set():
                cache.put(key, {"round": 1})
                if cache.get(key) is None:
                    failures.append("entry vanished under live claim")
                    return
        finally:
            claims.release(key)

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        deadline = time.monotonic() + 1.0
        while time.monotonic() < deadline:
            # The harshest settings: everything is too old and over
            # budget, so only claim protection can keep the entry.
            prune_cache(root, max_age=0.0, max_bytes=0)
    finally:
        stop.set()
        thread.join()
    assert not failures
    assert cache.get(key) == {"round": 1}
    prune_cache(root, max_age=0.0)       # claim released: now it goes
    assert cache.get(key) is None


def test_result_cache_prune_respects_claims(tmp_path):
    cache = ResultCache(str(tmp_path))
    cache.put("held", {"v": 1})
    cache.put("free", {"v": 2})
    claims = Claims(str(tmp_path))
    assert claims.acquire("held")
    report = cache.prune(max_bytes=0)
    assert report.kept_entries == 1
    assert cache.get("held") == {"v": 1}
    assert cache.get("free") is None


def test_empty_root_prunes_to_nothing(tmp_path):
    reports = prune_cache(str(tmp_path / "missing"), max_age=1.0)
    assert reports["total"].removed_entries == 0
    assert reports["total"].kept_entries == 0


# ---------------------------------------------------------------------------
# CLI surface (``repro cache prune``)
# ---------------------------------------------------------------------------


def test_cli_prune_requires_a_limit(tmp_path, capsys):
    root = str(tmp_path)
    assert main(["cache", "prune", "--cache-dir", root]) == 1
    assert "max-age" in capsys.readouterr().err


def test_cli_prune_removes_and_reports(tmp_path, capsys):
    root = str(tmp_path)
    old = _make_file(root, "results", "old.json", age=10 * HOUR)
    _make_file(root, "results", "new.json", age=0.0)
    assert main(["cache", "prune", "--cache-dir", root,
                 "--max-age", "1h"]) == 0
    out = capsys.readouterr().out
    assert not os.path.exists(old)
    assert "[results] removed 1 entries" in out
    assert "[total] removed 1 entries" in out


def test_cli_prune_dry_run_and_size_units(tmp_path, capsys):
    root = str(tmp_path)
    kept = _make_file(root, "traces", "t.trace", size=2048, age=HOUR)
    assert main(["cache", "prune", "--cache-dir", root,
                 "--max-bytes", "1k", "--dry-run"]) == 0
    out = capsys.readouterr().out
    assert os.path.exists(kept)
    assert "would remove" in out


def test_cli_info_json_is_machine_readable(tmp_path, capsys):
    ResultCache(str(tmp_path)).put("k", {"v": 1})
    assert main(["info", "--json", "--cache-dir", str(tmp_path),
                 "--traces-per-suite", "1", "--length", "12000"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["cache"]["root"] == str(tmp_path)
    assert document["cache"]["results"]["entries"] == 1
    assert "traces" in document
