"""Tests for cross-process work claims and engine claim coordination.

The :class:`~repro.exec.cache.Claims` primitives (O_EXCL acquire,
stale detection, sweep) are exercised directly; the engine-level tests
drive ``ExecPolicy(coordinate=True)`` through the real run path:
claim-before-compute, release-after-put, waiting on a foreign claim
until its result lands, and taking over a claim whose holder died.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.exec.cache import CLAIM_TTL_SECONDS, Claims, ResultCache
from repro.exec.engine import ExecPolicy, ExecutionEngine, job_key


class EchoJob:
    """Deterministic cacheable job (picklable, module-level)."""

    def __init__(self, value: int) -> None:
        self.value = value

    def execute(self):
        return self.value * 2

    def key_payload(self):
        return {"kind": "claims-echo", "value": self.value}

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "claims-echo", "value": self.value}


def _age_claim(claims: Claims, key: str, seconds: float) -> None:
    stamp = time.time() - seconds
    os.utime(claims.path(key), (stamp, stamp))


# ---------------------------------------------------------------------------
# Claims primitives
# ---------------------------------------------------------------------------


def test_acquire_is_exclusive_and_release_idempotent(tmp_path):
    claims = Claims(str(tmp_path))
    assert claims.acquire("k1")
    assert not claims.acquire("k1")  # second taker loses
    assert claims.is_active("k1")
    claims.release("k1")
    claims.release("k1")  # no error on double release
    assert not claims.is_active("k1")
    assert claims.acquire("k1")  # reacquirable after release


def test_claim_records_holder_identity(tmp_path):
    claims = Claims(str(tmp_path))
    assert claims.acquire("k")
    with open(claims.path("k"), encoding="utf-8") as handle:
        holder = json.load(handle)
    assert holder["pid"] == os.getpid()
    assert "host" in holder and "created" in holder


def test_stale_claims_are_broken_on_acquire(tmp_path):
    claims = Claims(str(tmp_path))
    assert claims.acquire("k")
    _age_claim(claims, "k", CLAIM_TTL_SECONDS + 60)
    assert not claims.is_active("k")
    assert claims.acquire("k")  # TTL-stale claim is broken and retaken
    assert claims.is_active("k")


def test_dead_holder_pid_makes_claim_stale(tmp_path):
    claims = Claims(str(tmp_path))
    assert claims.acquire("k")
    # Rewrite the claim as if a long-gone local process held it.  PID
    # 2**22 exceeds the default pid_max on Linux so it cannot be live.
    with open(claims.path("k"), "w", encoding="utf-8") as handle:
        json.dump({"pid": 1 << 22, "host": __import__("platform").node(),
                   "created": time.time()}, handle)
    assert not claims.is_active("k")
    assert claims.acquire("k")


def test_live_same_host_claim_is_not_stale(tmp_path):
    claims = Claims(str(tmp_path))
    assert claims.acquire("k")  # holder pid is this live process
    assert claims.is_active("k")
    assert "k" in claims.active_keys()


def test_sweep_removes_only_stale_claims(tmp_path):
    claims = Claims(str(tmp_path))
    claims.acquire("live")
    claims.acquire("stale")
    _age_claim(claims, "stale", CLAIM_TTL_SECONDS + 60)

    report = claims.sweep(dry_run=True)
    assert report.removed_entries == 1
    assert os.path.exists(claims.path("stale"))  # dry run

    report = claims.sweep()
    assert report.removed_entries == 1
    assert report.kept_entries == 1
    assert not os.path.exists(claims.path("stale"))
    assert os.path.exists(claims.path("live"))


# ---------------------------------------------------------------------------
# Engine coordination
# ---------------------------------------------------------------------------


def _policy(tmp_path) -> ExecPolicy:
    return ExecPolicy(use_cache=True, cache_dir=str(tmp_path),
                      coordinate=True, max_attempts=1)


def test_coordinated_run_computes_and_releases(tmp_path):
    engine = ExecutionEngine(_policy(tmp_path))
    job = EchoJob(21)
    results = engine.run([job], label="claims")
    assert results[0].value == 42
    # Claim released after the result was cached; nothing left behind.
    claims = Claims(str(tmp_path))
    assert not claims.is_active(job_key(job))
    assert claims.active_keys() == set()
    assert ResultCache(str(tmp_path)).get(job_key(job)) == 42


def test_waiter_resolves_from_foreign_result(tmp_path):
    """A run that finds a foreign claim waits for the result entry
    instead of recomputing, and reports it as a cache hit."""
    job = EchoJob(5)
    key = job_key(job)
    claims = Claims(str(tmp_path))
    assert claims.acquire(key)  # "another worker" is computing
    cache = ResultCache(str(tmp_path))

    def foreign_finish():
        time.sleep(0.25)
        cache.put(key, 10)
        claims.release(key)

    writer = threading.Thread(target=foreign_finish)
    writer.start()
    try:
        engine = ExecutionEngine(_policy(tmp_path))
        results = engine.run([job], label="waiter")
    finally:
        writer.join()
    assert results[0].value == 10
    assert results[0].cached  # served from the foreign computation


def test_abandoned_claim_is_taken_over(tmp_path):
    """A claim whose holder died (stale) does not block the batch:
    the waiter takes it over and computes locally."""
    job = EchoJob(7)
    key = job_key(job)
    claims = Claims(str(tmp_path))
    assert claims.acquire(key)
    _age_claim(claims, key, CLAIM_TTL_SECONDS + 60)

    engine = ExecutionEngine(_policy(tmp_path))
    results = engine.run([job], label="takeover")
    assert results[0].value == 14
    assert not results[0].cached  # computed here, not waited out
    assert not claims.is_active(key)
    assert ResultCache(str(tmp_path)).get(key) == 14


def test_released_claim_without_result_is_taken_over(tmp_path):
    """Holder released (failed) without writing a result: the waiter
    acquires the freed claim and computes rather than spinning."""
    job = EchoJob(9)
    key = job_key(job)
    claims = Claims(str(tmp_path))
    assert claims.acquire(key)

    def foreign_abort():
        time.sleep(0.2)
        claims.release(key)  # gave up, no result written

    aborter = threading.Thread(target=foreign_abort)
    aborter.start()
    try:
        engine = ExecutionEngine(_policy(tmp_path))
        results = engine.run([job], label="abort-takeover")
    finally:
        aborter.join()
    assert results[0].value == 18
    assert ResultCache(str(tmp_path)).get(key) == 18


def test_duplicate_keys_in_one_run_do_not_deadlock(tmp_path):
    """Two jobs with the same key in one batch must not wait on their
    own claim; both compute/resolve and the run terminates."""
    engine = ExecutionEngine(_policy(tmp_path))
    results = engine.run([EchoJob(3), EchoJob(3)], label="dup")
    assert [r.value for r in results] == [6, 6]
    assert Claims(str(tmp_path)).active_keys() == set()


def test_coordinate_without_cache_is_a_noop(tmp_path):
    policy = ExecPolicy(coordinate=True, use_cache=False)
    results = ExecutionEngine(policy).run([EchoJob(2)])
    assert results[0].value == 4
