"""Tests for the stable cache-key hashing."""

import os
import subprocess
import sys

import pytest

from repro.exec.hashing import (
    CODE_VERSION,
    canonical_json,
    jsonable,
    stable_hash,
    versioned_key,
)
from repro.exec.job import BlockStatsJob, SimJob
from repro.frontend.config import FrontendConfig
from repro.harness.registry import registry_spec
from repro.xbc.config import XbcConfig


def test_stable_hash_deterministic():
    payload = {"b": 2, "a": [1, 2, 3], "c": {"x": True}}
    assert stable_hash(payload) == stable_hash(dict(reversed(payload.items())))


def test_stable_hash_discriminates():
    assert stable_hash({"a": 1}) != stable_hash({"a": 2})
    assert stable_hash({"a": 1}) != stable_hash({"b": 1})


def test_dataclass_payload_includes_class_name():
    # Two config types must never collide even with equal field values.
    payload = jsonable(XbcConfig())
    assert payload["__class__"] == "XbcConfig"


def test_enum_and_tuple_normalization():
    from repro.isa.instruction import InstrKind

    assert jsonable(InstrKind.CALL) == "call"
    assert jsonable((1, 2)) == [1, 2]


def test_unhashable_payload_rejected():
    with pytest.raises(TypeError):
        canonical_json(object())


def test_versioned_key_changes_with_code_version(monkeypatch):
    before = versioned_key({"x": 1})
    monkeypatch.setattr("repro.exec.hashing.CODE_VERSION", CODE_VERSION + ".dev")
    assert versioned_key({"x": 1}) != before


def test_sim_job_key_fields_all_matter():
    spec = registry_spec("specint", 0, 20_000)
    base = SimJob("xbc", spec, total_uops=4096)
    assert versioned_key(base.key_payload()) == versioned_key(
        SimJob("xbc", spec, total_uops=4096).key_payload()
    )
    for other in (
        SimJob("tc", spec, total_uops=4096),
        SimJob("xbc", spec, total_uops=8192),
        SimJob("xbc", registry_spec("specint", 1, 20_000), total_uops=4096),
        SimJob("xbc", spec, total_uops=4096, assoc=4),
        SimJob("xbc", spec, total_uops=4096,
               fe_config=FrontendConfig(renamer_width=6)),
        SimJob("xbc", spec, total_uops=4096,
               xbc_config=XbcConfig(total_uops=4096)),
    ):
        assert versioned_key(other.key_payload()) != versioned_key(
            base.key_payload()
        )


def test_blockstats_job_key_distinct_from_sim_job():
    spec = registry_spec("games", 0, 20_000)
    sim = versioned_key(SimJob("xbc", spec).key_payload())
    stats = versioned_key(BlockStatsJob(spec).key_payload())
    assert sim != stats


def test_key_stable_across_processes():
    """The same job must hash identically in a fresh interpreter.

    This is what makes the on-disk cache shareable between runs and
    worker processes — keys must not depend on PYTHONHASHSEED, object
    ids or import order.
    """
    spec = registry_spec("specint", 0, 20_000)
    local = versioned_key(SimJob("xbc", spec, total_uops=4096).key_payload())

    code = (
        "from repro.exec.hashing import versioned_key\n"
        "from repro.exec.job import SimJob\n"
        "from repro.harness.registry import registry_spec\n"
        "spec = registry_spec('specint', 0, 20000)\n"
        "print(versioned_key("
        "SimJob('xbc', spec, total_uops=4096).key_payload()))\n"
    )
    src_dir = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src_dir)
    env["PYTHONHASHSEED"] = "12345"  # force a different string-hash seed
    output = subprocess.run(
        [sys.executable, "-c", code],
        env=env, capture_output=True, text=True, check=True,
    ).stdout.strip()
    assert output == local
