"""Tests for the execution engine: ordering, caching, retry, timeout."""

from __future__ import annotations

import json
import os
import signal
import time

import pytest

from repro.common.errors import ExecutionError
from repro.exec.engine import ExecPolicy, ExecutionEngine, execute_jobs
from repro.exec.job import SimJob
from repro.harness.experiments.fig9 import run_fig9
from repro.harness.registry import clear_trace_cache, registry_spec


# ---------------------------------------------------------------------------
# Minimal jobs implementing the engine's duck-typed protocol.  Defined at
# module level so they stay picklable for process-pool runs.
# ---------------------------------------------------------------------------


class EchoJob:
    """Deterministic cacheable job: returns ``value * 2``."""

    def __init__(self, value: int) -> None:
        self.value = value

    def execute(self):
        return self.value * 2

    def key_payload(self):
        return {"kind": "test-echo", "value": self.value}

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "echo", "value": self.value}


class UncacheableJob(EchoJob):
    """Same work, but opts out of result caching."""

    def key_payload(self):
        return None


class FlakyJob:
    """Fails the first *fail_times* executions, then succeeds.

    Attempts are counted in a file so the count survives both retry
    rounds and (if parallel) process boundaries.
    """

    def __init__(self, counter_path: str, fail_times: int) -> None:
        self.counter_path = counter_path
        self.fail_times = fail_times

    def _bump(self) -> int:
        count = 0
        if os.path.exists(self.counter_path):
            with open(self.counter_path) as handle:
                count = int(handle.read().strip() or "0")
        count += 1
        with open(self.counter_path, "w") as handle:
            handle.write(str(count))
        return count

    def execute(self):
        count = self._bump()
        if count <= self.fail_times:
            raise RuntimeError(f"injected failure #{count}")
        return "recovered"

    def key_payload(self):
        return None

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "flaky", "fail_times": self.fail_times}


class AlwaysFailJob:
    """Never succeeds; exercises retry exhaustion."""

    def execute(self):
        raise ValueError("this job always fails")

    def key_payload(self):
        return None

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "always-fail"}


class SleepJob:
    """Sleeps long enough to trip a short per-job timeout."""

    def __init__(self, seconds: float) -> None:
        self.seconds = seconds

    def execute(self):
        time.sleep(self.seconds)
        return "slept"

    def key_payload(self):
        return None

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "sleep", "seconds": self.seconds}


# ---------------------------------------------------------------------------
# Ordering and equivalence
# ---------------------------------------------------------------------------


def test_results_come_back_in_submission_order():
    jobs = [EchoJob(v) for v in (5, 1, 9, 3)]
    values = [r.value for r in execute_jobs(jobs)]
    assert values == [10, 2, 18, 6]


def test_parallel_matches_serial_exactly():
    """The acceptance property: ``--jobs N`` must not change any number.

    Serial and parallel runs route results through the same
    encode/decode pair and are consumed in submission order, so the
    float averages must be *equal*, not merely close.
    """
    specs = [registry_spec("specint", 0, 20_000),
             registry_spec("games", 0, 20_000)]
    sizes = (2048, 4096)
    clear_trace_cache()
    serial = run_fig9(specs, sizes=sizes)
    clear_trace_cache()
    parallel = run_fig9(
        specs, sizes=sizes, policy=ExecPolicy(workers=2)
    )
    clear_trace_cache()
    assert serial.tc_miss == parallel.tc_miss
    assert serial.xbc_miss == parallel.xbc_miss
    assert serial.detail == parallel.detail


# ---------------------------------------------------------------------------
# Result caching
# ---------------------------------------------------------------------------


def test_second_run_is_served_from_cache(tmp_path):
    policy = ExecPolicy(use_cache=True, cache_dir=str(tmp_path))
    jobs = [EchoJob(v) for v in (1, 2, 3)]

    cold = ExecutionEngine(policy)
    first = cold.run(jobs, label="t")
    assert [r.cached for r in first] == [False, False, False]
    assert cold.last_manifest.cache_hits == 0

    warm = ExecutionEngine(policy)
    second = warm.run(jobs, label="t")
    assert [r.cached for r in second] == [True, True, True]
    assert [r.value for r in second] == [r.value for r in first]
    assert warm.last_manifest.cache_hits == 3
    assert all(rec.status == "cached" for rec in warm.last_manifest.jobs)


def test_uncacheable_jobs_always_execute(tmp_path):
    policy = ExecPolicy(use_cache=True, cache_dir=str(tmp_path))
    ExecutionEngine(policy).run([UncacheableJob(4)])
    rerun = ExecutionEngine(policy).run([UncacheableJob(4)])
    assert rerun[0].cached is False
    assert rerun[0].value == 8


def test_cached_sim_result_equals_computed(tmp_path):
    """A FrontendStats served from disk must equal the computed one."""
    policy = ExecPolicy(use_cache=True, cache_dir=str(tmp_path))
    job = SimJob("xbc", registry_spec("specint", 0, 15_000), total_uops=2048)
    clear_trace_cache()
    computed = ExecutionEngine(policy).run([job])[0]
    clear_trace_cache()
    cached = ExecutionEngine(policy).run([job])[0]
    clear_trace_cache()
    assert computed.cached is False
    assert cached.cached is True
    assert cached.value == computed.value


# ---------------------------------------------------------------------------
# Retry, failure, timeout
# ---------------------------------------------------------------------------


def test_flaky_job_recovers_via_retry(tmp_path):
    counter = str(tmp_path / "attempts")
    policy = ExecPolicy(max_attempts=3, backoff=0.001)
    engine = ExecutionEngine(policy)
    results = engine.run([FlakyJob(counter, fail_times=2)])
    assert results[0].value == "recovered"
    assert results[0].attempts == 3
    record = engine.last_manifest.jobs[0]
    assert record.status == "ok"
    assert record.attempts == 3


def test_exhausted_retries_raise_with_manifest(tmp_path):
    policy = ExecPolicy(max_attempts=2, backoff=0.001)
    engine = ExecutionEngine(policy)
    with pytest.raises(ExecutionError, match="always fails"):
        engine.run([AlwaysFailJob(), EchoJob(1)])
    manifest = engine.last_manifest
    assert manifest.failures == 1
    failed = manifest.jobs[0]
    assert failed.status == "failed"
    assert failed.attempts == policy.max_attempts
    assert "always fails" in failed.error
    # The healthy job still completed and is recorded as such.
    assert manifest.jobs[1].status == "ok"


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs POSIX SIGALRM"
)
def test_timeout_is_enforced_and_recorded():
    policy = ExecPolicy(timeout=0.15, max_attempts=1)
    engine = ExecutionEngine(policy)
    with pytest.raises(ExecutionError, match="JobTimeout"):
        engine.run([SleepJob(5.0)])
    record = engine.last_manifest.jobs[0]
    assert record.status == "timeout"
    # The job must have been cut off near the timeout, not after 5 s.
    assert record.wall_time < 2.0


# ---------------------------------------------------------------------------
# Manifest
# ---------------------------------------------------------------------------


def test_manifest_written_with_expected_fields(tmp_path):
    manifest_dir = str(tmp_path / "manifests")
    policy = ExecPolicy(manifest_dir=manifest_dir)
    engine = ExecutionEngine(policy)
    engine.run([EchoJob(1), EchoJob(2)], label="unit")

    assert engine.last_manifest_path is not None
    assert os.path.dirname(engine.last_manifest_path) == manifest_dir
    with open(engine.last_manifest_path) as handle:
        document = json.load(handle)
    assert document["label"] == "unit"
    assert document["workers"] == 1
    assert document["wall_time"] >= 0.0
    assert len(document["jobs"]) == 2
    for job in document["jobs"]:
        assert job["status"] == "ok"
        assert job["attempts"] == 1
        assert job["worker"] == os.getpid()
        assert job["job_id"]
        assert job["params"]["job"] == "echo"


def test_manifest_stays_in_memory_without_cache_or_dir():
    engine = ExecutionEngine(ExecPolicy())
    engine.run([EchoJob(1)])
    assert engine.last_manifest is not None
    assert engine.last_manifest_path is None
