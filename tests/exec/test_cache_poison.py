"""Regression tests: interrupted jobs must never poison the caches.

A job that times out, dies with its worker, or is cancelled mid-run
must leave *no* entry (visible or temp) in the result cache, so the
next run recomputes instead of serving a phantom result.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.common.errors import ExecutionError
from repro.exec.cache import ResultCache, _atomic_write
from repro.exec.engine import ExecPolicy, ExecutionEngine, job_key


def _bump(counter_path: str) -> int:
    count = 0
    if os.path.exists(counter_path):
        with open(counter_path) as handle:
            count = int(handle.read().strip() or "0")
    count += 1
    with open(counter_path, "w") as handle:
        handle.write(str(count))
    return count


# ---------------------------------------------------------------------------
# Jobs (module-level so they pickle into pool workers)
# ---------------------------------------------------------------------------


class KillWorkerJob:
    """Cacheable job whose first execution SIGKILLs its worker.

    The kill only fires outside *parent_pid*: if the engine degraded
    to serial in-process execution (sandbox without fork) the job
    completes instead of killing the test runner, and the test skips.
    """

    def __init__(self, counter_path: str, parent_pid: int,
                 value: int = 21) -> None:
        self.counter_path = counter_path
        self.parent_pid = parent_pid
        self.value = value

    def execute(self):
        count = _bump(self.counter_path)
        if count == 1 and os.getpid() != self.parent_pid:
            os.kill(os.getpid(), signal.SIGKILL)
        return self.value * 2

    def key_payload(self):
        return {"kind": "test-kill-worker", "value": self.value}

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "kill-worker", "value": self.value}


class SlowCacheableJob:
    """Cacheable job that sleeps; used to trip per-job timeouts."""

    def __init__(self, seconds: float, tag: str) -> None:
        self.seconds = seconds
        self.tag = tag

    def execute(self):
        time.sleep(self.seconds)
        return f"slept:{self.tag}"

    def key_payload(self):
        return {"kind": "test-slow-cacheable", "tag": self.tag,
                "seconds": self.seconds}

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "slow-cacheable", "tag": self.tag}


class PadJob:
    """Filler so the pool has two pending jobs and runs in parallel."""

    def __init__(self, value: int) -> None:
        self.value = value

    def execute(self):
        time.sleep(0.05)
        return self.value

    def key_payload(self):
        return None

    @staticmethod
    def encode_result(value):
        return value

    @staticmethod
    def decode_result(payload):
        return payload

    def describe(self):
        return {"job": "pad"}


# ---------------------------------------------------------------------------
# Regressions
# ---------------------------------------------------------------------------


def test_killed_worker_leaves_no_cache_entry_and_next_run_recomputes(
    tmp_path,
):
    """Satellite acceptance: kill a worker mid-job, assert the result
    cache holds nothing for that job, and the next run recomputes."""
    cache_dir = str(tmp_path / "cache")
    counter = str(tmp_path / "attempts")
    policy = ExecPolicy(
        workers=2, use_cache=True, cache_dir=cache_dir,
        max_attempts=1, backoff=0.001,
    )
    job = KillWorkerJob(counter, parent_pid=os.getpid())
    engine = ExecutionEngine(policy)
    try:
        engine.run([job, PadJob(1)], label="kill")
        crashed = False
    except ExecutionError:
        crashed = True
    if not crashed:
        if engine._serial_fallback:
            pytest.skip("no process pool in this sandbox; cannot "
                        "kill a worker")
        pytest.fail("worker kill did not surface as an ExecutionError")

    key = job_key(job)
    assert key is not None
    cache = ResultCache(cache_dir)
    assert cache.get(key) is None, "killed job left a poisoned entry"
    results_dir = os.path.join(cache_dir, "results")
    leftovers = [
        name for name in os.listdir(results_dir) if key in name
    ]
    assert leftovers == [], f"partial files for the killed job: {leftovers}"

    # Second run: same key must recompute (cached=False), not be served
    # from a phantom entry; the counter file makes the job succeed now.
    retry = ExecutionEngine(ExecPolicy(
        workers=1, use_cache=True, cache_dir=cache_dir, max_attempts=1,
    ))
    result = retry.run([KillWorkerJob(counter, os.getpid())])[0]
    assert result.cached is False
    assert result.value == 42

    # And only now is the result legitimately cached.
    third = ExecutionEngine(ExecPolicy(
        workers=1, use_cache=True, cache_dir=cache_dir,
    )).run([KillWorkerJob(counter, os.getpid())])[0]
    assert third.cached is True
    assert third.value == 42


@pytest.mark.skipif(
    not hasattr(signal, "SIGALRM"), reason="needs POSIX SIGALRM"
)
def test_timed_out_job_leaves_no_cache_entry_and_next_run_recomputes(
    tmp_path,
):
    cache_dir = str(tmp_path / "cache")
    job = SlowCacheableJob(0.6, tag="timeout-case")
    policy = ExecPolicy(
        use_cache=True, cache_dir=cache_dir, timeout=0.1, max_attempts=1,
    )
    engine = ExecutionEngine(policy)
    with pytest.raises(ExecutionError, match="JobTimeout"):
        engine.run([job])
    assert engine.last_manifest.jobs[0].status == "timeout"

    key = job_key(job)
    assert ResultCache(cache_dir).get(key) is None

    # Without the timeout the same key computes fresh and then caches.
    relaxed = ExecPolicy(use_cache=True, cache_dir=cache_dir)
    result = ExecutionEngine(relaxed).run(
        [SlowCacheableJob(0.6, tag="timeout-case")]
    )[0]
    assert result.cached is False
    assert result.value == "slept:timeout-case"
    again = ExecutionEngine(relaxed).run(
        [SlowCacheableJob(0.6, tag="timeout-case")]
    )[0]
    assert again.cached is True


def test_interrupted_atomic_write_removes_its_temp_file(
    tmp_path, monkeypatch
):
    """A cancellation (BaseException) mid-write must clean the temp
    file and never expose a partial visible entry."""
    target = tmp_path / "entry.json"

    def interrupted_replace(src, dst):
        raise KeyboardInterrupt

    monkeypatch.setattr(os, "replace", interrupted_replace)
    with pytest.raises(KeyboardInterrupt):
        _atomic_write(str(target), "{\"payload\": 1}")
    assert list(tmp_path.iterdir()) == []


def test_failed_job_is_not_cached_even_with_strict_false(tmp_path):
    """The serve path runs strict=False; failures must still bypass
    the result cache entirely."""
    cache_dir = str(tmp_path / "cache")

    class _Fail(SlowCacheableJob):
        def execute(self):
            raise RuntimeError("boom")

    job = _Fail(0.0, tag="strict-false")
    policy = ExecPolicy(use_cache=True, cache_dir=cache_dir,
                        max_attempts=1)
    result = ExecutionEngine(policy).run([job], strict=False)[0]
    assert not result.ok
    assert "boom" in result.error
    assert ResultCache(cache_dir).get(job_key(job)) is None
