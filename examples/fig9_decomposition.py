#!/usr/bin/env python
"""Decompose Figure 9: how much of each structure's miss rate is
capacity-inherent versus organization-induced?

For one workload this example runs three curves against cache size:

- the *analytic floor*: the fully-associative, redundancy-free LRU
  miss rate implied by the trace's XB reuse distances
  (:mod:`repro.analysis.workingset`);
- the simulated XBC;
- the simulated TC.

The gap between the floor and the XBC is conflict/rebuild overhead;
the much larger gap to the TC is the redundancy and path-thrashing the
paper's design removes.  The measured TC redundancy factor is printed
alongside for scale.

Run with:  python examples/fig9_decomposition.py
"""

from repro.analysis.redundancy import measure_tc_redundancy
from repro.analysis.workingset import measure_stack_distances
from repro.common.tables import format_table
from repro.frontend.config import FrontendConfig
from repro.harness.registry import default_registry, make_trace
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend

SIZES = (1024, 2048, 4096, 8192, 16384)


def main() -> None:
    spec = default_registry(traces_per_suite=1, length_uops=120_000,
                            suites=["sysmark"])[0]
    trace = make_trace(spec)
    print(trace.describe())

    distances = measure_stack_distances(trace)
    redundancy = measure_tc_redundancy(trace)

    fe = FrontendConfig()
    rows = []
    for size in SIZES:
        floor = distances.miss_rate_at(size)
        xbc = XbcFrontend(fe, XbcConfig(total_uops=size)).run(trace)
        tc = TcFrontend(fe, TcConfig(total_uops=size)).run(trace)
        rows.append([
            size,
            floor * 100,
            xbc.uop_miss_rate * 100,
            tc.uop_miss_rate * 100,
            (xbc.uop_miss_rate - floor) * 100,
            (tc.uop_miss_rate - xbc.uop_miss_rate) * 100,
        ])

    print()
    print(format_table(
        ["uops", "ideal floor %", "XBC %", "TC %",
         "XBC organization overhead", "TC redundancy cost"],
        rows,
        title="Miss-rate decomposition vs capacity (sysmark-0)",
    ))
    print()
    print(f"TC redundancy (unbounded build): "
          f"{redundancy.redundancy:.2f} copies/uop "
          f"({redundancy.path_associativity_pressure:.2f} paths/start IP); "
          f"XBC: {redundancy.xb_redundancy:.2f}")
    print("Reading: the XBC tracks the analytic floor within a few")
    print("points; the TC pays its redundancy factor in effective")
    print("capacity, which is the Figure-9 gap the paper reports.")


if __name__ == "__main__":
    main()
