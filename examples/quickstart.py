#!/usr/bin/env python
"""Quickstart: generate a workload, simulate the XBC, read the stats.

Run with:  python examples/quickstart.py
"""

from repro import (
    FrontendConfig,
    XbcConfig,
    XbcFrontend,
    execute_program,
    generate_program,
    profile_for_suite,
)


def main() -> None:
    # 1. Build a synthetic SPECint-like program (deterministic by seed).
    profile = profile_for_suite("specint")
    program = generate_program(profile, seed=2000, name="demo", suite="specint")
    print(program.describe())

    # 2. Execute it to get a dynamic instruction trace.
    trace = execute_program(program, max_uops=100_000)
    print(trace.describe())

    # 3. Simulate the eXtended Block Cache frontend over the trace.
    frontend = XbcFrontend(
        FrontendConfig(),                 # renamer 8 uops/cycle, gshare-16
        XbcConfig(total_uops=8192),       # 4 banks x 4 uops x 2 ways
    )
    stats = frontend.run(trace)

    # 4. The paper's quantities, directly off the stats object.
    print()
    print(stats.summary())
    print()
    print(f"uop miss rate (Fig 9 metric):   {stats.uop_miss_rate:.2%}")
    print(f"delivery bandwidth (Fig 8):     {stats.delivery_bandwidth:.2f} uops/cycle")
    print(f"stored redundancy:              "
          f"{stats.extra['xbc_redundancy_x1000'] / 1000:.3f} copies/uop")
    print(f"branch promotions performed:    {stats.extra.get('promotions', 0)}")

    # 5. The intro's three-phase framing (~50/30/20 rule of thumb),
    #    measured: delivery = steady state, build = transition,
    #    penalties = stall.
    phases = stats.phase_breakdown()
    print(f"phases: steady {phases['steady']:.0%}, "
          f"transition {phases['transition']:.0%}, "
          f"stall {phases['stall']:.0%}")


if __name__ == "__main__":
    main()
