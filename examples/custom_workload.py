#!/usr/bin/env python
"""Build a custom workload profile and study indirect-branch pressure.

The three suite presets are starting points, not limits: every tunable
of the generator is on :class:`~repro.program.profiles.WorkloadProfile`.
Here we synthesize increasingly indirect-heavy programs (think virtual
dispatch) and watch what they do to both structures — indirect branches
end XBs *and* traces, so both get shorter, but the TC additionally
duplicates the shared continuations.

Run with:  python examples/custom_workload.py
"""

from dataclasses import replace

from repro.common.tables import format_table
from repro.frontend.config import FrontendConfig
from repro.program.generator import generate_program
from repro.program.profiles import profile_for_suite
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend
from repro.trace.blockstats import compute_block_stats
from repro.trace.executor import execute_program
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend


def make_profile(indirect_fraction: float):
    """Shift terminator weight from plain conditionals to indirects."""
    base = profile_for_suite("sysmark")
    shift = indirect_fraction - (base.p_indirect + base.p_indirect_call)
    return replace(
        base,
        p_cond=base.p_cond - shift,
        p_indirect=indirect_fraction * 0.7,
        p_indirect_call=indirect_fraction * 0.3,
        mean_indirect_targets=6.0,
    )


def main() -> None:
    rows = []
    for fraction in (0.02, 0.06, 0.12, 0.20):
        profile = make_profile(fraction)
        program = generate_program(
            profile, seed=31, name=f"ind-{fraction}", suite="custom"
        )
        trace = execute_program(program, max_uops=80_000)
        block_stats = compute_block_stats(trace)

        fe = FrontendConfig()
        tc = TcFrontend(fe, TcConfig(total_uops=8192)).run(trace)
        xbc = XbcFrontend(fe, XbcConfig(total_uops=8192)).run(trace)
        rows.append([
            f"{fraction:.0%}",
            block_stats.xb.mean,
            tc.uop_miss_rate * 100,
            xbc.uop_miss_rate * 100,
            (1 - xbc.uop_miss_rate / tc.uop_miss_rate) * 100,
        ])

    print(format_table(
        ["indirect mix", "avg XB (uops)", "TC miss %", "XBC miss %",
         "XBC advantage %"],
        rows,
        title="Indirect-branch pressure on both structures (8K uops)",
    ))


if __name__ == "__main__":
    main()
