#!/usr/bin/env python
"""Branch promotion study (§3.8).

Promotion merges a monotonic-branch XB with its habitual successor so
one pointer fetches both — its value shows where *prediction bandwidth*
is the limiter.  This example sweeps pointers-per-cycle with promotion
on and off, reproducing the paper's motivation for combining the two
mechanisms (Figure 1's "XB w/ promotion" series shows the length gain;
here we see the bandwidth gain).

Run with:  python examples/promotion_study.py
"""

from repro.common.tables import format_table
from repro.frontend.config import FrontendConfig
from repro.harness.registry import default_registry, make_trace
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend


def run(trace, pointers: int, promotion: bool):
    config = XbcConfig(
        total_uops=8192,
        xbs_per_cycle=pointers,
        enable_promotion=promotion,
    )
    return XbcFrontend(FrontendConfig(), config).run(trace)


def main() -> None:
    specs = default_registry(traces_per_suite=1, length_uops=80_000)
    rows = []
    for pointers in (1, 2, 3):
        for promotion in (False, True):
            fetch_bw = 0.0
            deliver_bw = 0.0
            combs = 0
            for spec in specs:
                stats = run(make_trace(spec), pointers, promotion)
                fetch_bw += stats.fetch_bandwidth
                deliver_bw += stats.delivery_bandwidth
                combs += stats.extra.get("comb_fetches", 0)
            n = len(specs)
            rows.append([
                pointers,
                "on" if promotion else "off",
                fetch_bw / n,
                deliver_bw / n,
                combs // n,
            ])

    print(format_table(
        ["XB ptrs/cycle", "promotion", "uops/fetch", "uops/cycle",
         "comb fetches"],
        rows,
        title="Promotion x prediction-bandwidth sweep (8K-uop XBC)",
    ))
    print()
    print("Expected shape: with a single pointer per cycle, promotion")
    print("recovers fetch bandwidth (a combined XB costs no prediction);")
    print("with two or more pointers the renamer (8 uops/cycle) hides it.")


if __name__ == "__main__":
    main()
