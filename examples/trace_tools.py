#!/usr/bin/env python
"""Trace tooling: serialize, reload, and analyze a trace offline.

Shows the workflow for working with traces as artifacts: write one to
disk, load it back, partition it into canonical extended blocks, and
render the Figure-1 length histograms — all without running a cache
simulation.

Run with:  python examples/trace_tools.py [path]
"""

import sys
import tempfile
from collections import Counter

from repro import (
    compute_block_stats,
    execute_program,
    generate_program,
    load_trace,
    profile_for_suite,
    save_trace,
)
from repro.xbc.xbseq import build_xb_stream


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else None
    if path is None:
        path = tempfile.mktemp(suffix=".trace")
        program = generate_program(
            profile_for_suite("games"), seed=77, name="games-demo",
            suite="games",
        )
        trace = execute_program(program, max_uops=60_000)
        save_trace(trace, path)
        print(f"wrote {path}")

    trace = load_trace(path)
    print(trace.describe())

    # Canonical XB partitioning (what the XBC stores and fetches).
    steps = build_xb_stream(trace)
    end_kinds = Counter(
        s.end_kind.value if s.end_kind else "quota" for s in steps
    )
    print(f"\n{len(steps)} extended blocks; end-condition mix:")
    for kind, count in end_kinds.most_common():
        print(f"  {kind:>14}: {count:>6}  ({count / len(steps):.1%})")

    distinct = len({s.end_ip for s in steps})
    print(f"distinct XBs: {distinct} "
          f"({len(steps) / distinct:.1f} dynamic executions each)")

    # Figure-1 style histograms.
    stats = compute_block_stats(trace)
    print()
    print(stats.xb.render(label="XB length distribution (uops)"))
    print()
    print("means:", {k: round(v, 2) for k, v in stats.means().items()})


if __name__ == "__main__":
    main()
