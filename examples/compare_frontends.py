#!/usr/bin/env python
"""Compare all four frontends (IC, TC, BBTC, XBC) across the suites.

This is the library's version of the paper's §4 comparison, extended
with the baseline IC frontend and the Block-Based Trace Cache of §2.4.

Run with:  python examples/compare_frontends.py [--budget 8192]
"""

import argparse

from repro.common.tables import format_table
from repro.harness.registry import default_registry, make_trace
from repro.harness.runner import run_frontend


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=8192,
                        help="uop budget for TC/BBTC/XBC (default 8192)")
    parser.add_argument("--length", type=int, default=80_000,
                        help="trace length in uops")
    args = parser.parse_args()

    specs = default_registry(traces_per_suite=1, length_uops=args.length)
    rows = []
    for spec in specs:
        trace = make_trace(spec)
        row = [spec.name]
        for kind in ("ic", "dc", "tc", "bbtc", "xbc"):
            stats = run_frontend(kind, trace, total_uops=args.budget)
            if kind == "ic":
                row.append(f"{stats.overall_bandwidth:.2f} u/c")
            else:
                row.append(
                    f"{stats.uop_miss_rate:.1%} @ "
                    f"{stats.delivery_bandwidth:.1f} u/c"
                )
        rows.append(row)

    print(format_table(
        ["trace", "IC (bandwidth)", "DC (miss@bw)", "TC (miss@bw)",
         "BBTC (miss@bw)", "XBC (miss@bw)"],
        rows,
        title=f"Frontend comparison at a {args.budget}-uop budget",
    ))
    print()
    print("Reading: the IC column is overall bandwidth (it has no uop")
    print("structure); the others show uop miss rate (lower is better)")
    print("at their delivery-mode bandwidth.  The XBC should show the")
    print("lowest miss rate at TC-like bandwidth — the paper's claim.")


if __name__ == "__main__":
    main()
