#!/usr/bin/env python
"""Microbenchmark: packed predictor implementations vs their references.

The flat frontends inline the packed-array predictors, so their wins
show up indirectly in ``repro bench``; this script measures each
structure head-to-head on synthetic operation streams so a predictor
regression is visible in isolation.  For every structure it drives the
packed class and the reference class with the *same* pre-generated
stream and prints ops/second plus the speedup ratio.

Run from the repository root::

    python scripts/bench_predictors.py [--ops N] [--repeats N] [--json]

The streams deliberately mix hits, misses and capacity evictions
(addresses are drawn from pools a few times larger than each
structure) because that is the regime the frontends operate in.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

from repro.branch.btb import (  # noqa: E402
    BranchTargetBuffer,
    ReferenceBranchTargetBuffer,
)
from repro.branch.indirect import (  # noqa: E402
    IndirectPredictor,
    ReferenceIndirectPredictor,
)
from repro.branch.rsb import IntReturnStack, ReturnStackBuffer  # noqa: E402


def _time_best(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _btb_stream(rng, ops):
    pool = [rng.randrange(0x1000, 0x40000) & ~1 for _ in range(2048 * 3)]
    return [
        (rng.random() < 0.5, rng.choice(pool),
         rng.randrange(0x1000, 0x40000) & ~1)
        for _ in range(ops)
    ]


def _bench_btb(kind, stream):
    cls = BranchTargetBuffer if kind == "packed" else ReferenceBranchTargetBuffer
    def run():
        btb = cls(entries=2048, assoc=4)
        lookup = btb.lookup
        install = btb.install
        for is_lookup, ip, target in stream:
            if is_lookup:
                lookup(ip)
            else:
                install(ip, target)
    return run


def _indirect_stream(rng, ops):
    pool = [rng.randrange(0x1000, 0x40000) & ~1 for _ in range(96)]
    targets = [rng.randrange(0x1000, 0x40000) & ~1 for _ in range(8)]
    return [(rng.choice(pool), rng.choice(targets)) for _ in range(ops)]


def _bench_indirect(kind, stream):
    cls = IndirectPredictor if kind == "packed" else ReferenceIndirectPredictor
    def run():
        pred = cls(table_entries=1024, history_bits=8)
        update = pred.update
        for ip, target in stream:
            update(ip, target, target)
    return run


def _rsb_stream(rng, ops):
    return [
        (rng.random() < 0.5, rng.randrange(0x1000, 0x40000) & ~1)
        for _ in range(ops)
    ]


def _bench_rsb(kind, stream):
    cls = IntReturnStack if kind == "packed" else ReturnStackBuffer
    def run():
        rsb = cls(depth=16)
        push = rsb.push
        pop = rsb.pop
        for is_push, value in stream:
            if is_push:
                push(value)
            else:
                pop()
    return run


STRUCTURES = (
    ("btb", _btb_stream, _bench_btb),
    ("indirect", _indirect_stream, _bench_indirect),
    ("rsb", _rsb_stream, _bench_rsb),
)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--ops", type=int, default=200_000,
                        help="operations per stream (default 200k)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="best-of-N timing repeats (default 3)")
    parser.add_argument("--json", action="store_true",
                        help="emit a machine-readable report")
    args = parser.parse_args(argv)

    report = {}
    for name, make_stream, make_bench in STRUCTURES:
        stream = make_stream(random.Random(1234), args.ops)
        row = {}
        for kind in ("packed", "reference"):
            seconds = _time_best(make_bench(kind, stream), args.repeats)
            row[kind] = round(args.ops / seconds, 1)
        row["speedup"] = round(row["packed"] / row["reference"], 2)
        report[name] = row

    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"predictor microbench ({args.ops:,} ops, best of {args.repeats})")
    for name, row in report.items():
        print(
            f"  {name:<9} packed {row['packed']:>12,.0f} ops/s   "
            f"reference {row['reference']:>12,.0f} ops/s   "
            f"{row['speedup']:.2f}x"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
