#!/usr/bin/env python
"""CI smoke test for ``repro serve``.

Exercises the whole service surface the way a user would, against a
real subprocess:

1. start ``python -m repro serve --port 0`` and wait for the listen line;
2. check ``/healthz``;
3. submit one job over HTTP and follow its NDJSON event stream to
   completion;
4. submit the identical request again and require a coalesced/memoized
   answer with a byte-identical result;
5. check ``/metrics`` counters reflect exactly one engine execution;
6. SIGTERM the server and require a graceful drain with exit code 0.

Exits non-zero (with a message) on the first violated expectation.
Run from the repository root: ``python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_DIR = os.path.join(REPO_ROOT, "src")
sys.path.insert(0, SRC_DIR)

from repro.serve.client import ServeClient  # noqa: E402

REQUEST = {"kind": "sim", "frontend": "xbc", "suite": "specint",
           "index": 0, "length": 25_000, "total_uops": 2048}


def fail(message: str) -> None:
    print(f"[serve-smoke] FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"[serve-smoke] ok: {message}")


def wait_for_url(process, lines, timeout: float = 60.0) -> str:
    def pump():
        for line in process.stderr:
            lines.append(line)

    threading.Thread(target=pump, daemon=True).start()
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        for line in lines:
            match = re.search(r"listening on (http://[\d.]+:\d+)", line)
            if match:
                return match.group(1)
        if process.poll() is not None:
            fail(f"server exited early rc={process.returncode}: "
                 f"{''.join(lines)}")
        time.sleep(0.05)
    process.kill()
    fail(f"server never came up: {''.join(lines)}")
    raise AssertionError  # unreachable


def main() -> int:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    cache_dir = tempfile.mkdtemp(prefix="repro-serve-smoke-")
    env["REPRO_CACHE_DIR"] = cache_dir

    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        env=env, stderr=subprocess.PIPE, text=True,
    )
    lines: list = []
    try:
        base_url = wait_for_url(process, lines)
        print(f"[serve-smoke] server up at {base_url}")
        client = ServeClient(base_url, timeout=60.0)

        health = client.healthz()
        check(health["ready"] is True, "healthz reports ready")

        acknowledgement = client.submit(REQUEST)
        check(acknowledgement["disposition"] == "new",
              "first submission is new work")
        job_id = acknowledgement["job_id"]

        events = [event["event"]
                  for event in client.events(job_id, timeout=120.0)]
        check(events[0] == "queued" and events[-1] == "done",
              f"event stream runs queued -> done ({events})")

        document = client.job(job_id)
        check(document["status"] == "done", "job reached done")
        first_result = json.dumps(document["result"], sort_keys=True)

        again = client.submit(REQUEST)
        check(again["disposition"] in ("coalesced", "memoized"),
              f"repeat submission coalesces ({again['disposition']})")
        repeat = json.dumps(client.job(job_id)["result"], sort_keys=True)
        check(repeat == first_result, "repeat result is byte-identical")

        metrics = client.metrics()
        check(metrics["jobs"]["submitted"] == 1,
              "metrics count one submitted job")
        check(metrics["engine"]["executed"] == 1,
              "metrics count one engine execution")
        check(metrics["requests"]["total"] >= 6,
              "metrics count the HTTP requests")

        process.send_signal(signal.SIGTERM)
        returncode = process.wait(timeout=60.0)
        check(returncode == 0, f"SIGTERM drain exits 0 (rc={returncode})")
        time.sleep(0.2)
        check(any("drained" in line for line in lines),
              "drain summary printed on stderr")
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10.0)

    print("[serve-smoke] PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
