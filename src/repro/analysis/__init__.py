"""Offline workload/structure analysis.

The paper's design rests on three quantitative arguments it mostly
asserts in prose: traces are *redundant* (§2.3), extended blocks are
*multi-entry* (§3.1), and hit rates are governed by working-set versus
capacity.  This package measures all three on any trace, independent
of the timing simulators:

- :mod:`repro.analysis.redundancy` — trace-cache redundancy factor of
  an unbounded TC build over the trace (copies per distinct uop);
- :mod:`repro.analysis.xbstats` — extended-block usage: distinct XBs,
  entry-point diversity, execution-frequency skew, quota splits;
- :mod:`repro.analysis.workingset` — XB-granular LRU stack distances
  and the analytic fully-associative miss curve they imply;
- :mod:`repro.analysis.fragmentation` — slot overhead of the XBC's
  banked lines versus 16-uop trace lines and decoded-cache lines.
"""

from repro.analysis.fragmentation import FragmentationReport, measure_fragmentation
from repro.analysis.redundancy import RedundancyReport, measure_tc_redundancy
from repro.analysis.xbstats import XbUsageReport, measure_xb_usage
from repro.analysis.workingset import StackDistanceReport, measure_stack_distances

__all__ = [
    "FragmentationReport",
    "measure_fragmentation",
    "RedundancyReport",
    "measure_tc_redundancy",
    "XbUsageReport",
    "measure_xb_usage",
    "StackDistanceReport",
    "measure_stack_distances",
]
