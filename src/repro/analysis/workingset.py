"""Stack-distance (reuse) analysis at XB granularity.

The classic Mattson LRU stack-distance result: for a fully-associative
LRU cache of capacity C, an access misses iff its reuse distance
exceeds C.  Measuring distances over the XB access stream — weighted
by each XB's uop footprint — yields the *analytic* miss-rate-versus-
capacity curve of an ideal (fully-associative, redundancy-free)
uop store.  Comparing it against the simulated Figure-9 curves
separates how much of each structure's misses are capacity-inherent
versus induced by its organization (conflicts, redundancy, path
thrashing).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.trace.record import Trace
from repro.xbc.xbseq import build_xb_stream


@dataclass
class StackDistanceReport:
    """Reuse-distance distribution of the XB access stream."""

    #: sorted (uop-weighted) reuse distances of every non-cold access
    distances: List[int] = field(default_factory=list)
    #: uops of each access, aligned with the access stream
    total_accesses: int = 0
    cold_accesses: int = 0
    total_uops: int = 0
    cold_uops: int = 0
    #: uops of non-cold accesses whose distance exceeds a capacity —
    #: kept as parallel arrays for fast curve evaluation
    _sorted_distances: List[int] = field(default_factory=list)
    _suffix_uops: List[int] = field(default_factory=list)

    def finalize(self, pairs: List[tuple]) -> None:
        """Store (distance, uops) pairs sorted for curve queries."""
        pairs.sort()
        self._sorted_distances = [d for d, _u in pairs]
        weights = [u for _d, u in pairs]
        # suffix sums: uops with distance >= position
        suffix = [0] * (len(weights) + 1)
        for i in range(len(weights) - 1, -1, -1):
            suffix[i] = suffix[i + 1] + weights[i]
        self._suffix_uops = suffix
        self.distances = self._sorted_distances

    def miss_uops_at(self, capacity_uops: int) -> int:
        """Uops missed by an ideal LRU store of the given capacity."""
        index = bisect.bisect_right(self._sorted_distances, capacity_uops)
        return self.cold_uops + self._suffix_uops[index]

    def miss_rate_at(self, capacity_uops: int) -> float:
        """Analytic fully-associative miss rate at a capacity."""
        if self.total_uops == 0:
            return 0.0
        return self.miss_uops_at(capacity_uops) / self.total_uops

    def curve(self, capacities: Sequence[int]) -> Dict[int, float]:
        """Miss rate at each capacity (the ideal Figure-9 lower bound)."""
        return {c: self.miss_rate_at(c) for c in capacities}

    def summary(self, capacities: Sequence[int] = (2048, 4096, 8192, 16384)) -> str:
        """Human-readable report."""
        lines = [
            "XB reuse-distance analysis:",
            f"  accesses: {self.total_accesses} "
            f"({self.cold_accesses} cold)",
            "  ideal fully-associative miss rate:",
        ]
        for capacity, rate in self.curve(capacities).items():
            lines.append(f"    {capacity:>7} uops: {rate:.2%}")
        return "\n".join(lines)


def measure_stack_distances(trace: Trace, quota: int = 16) -> StackDistanceReport:
    """Compute uop-weighted LRU stack distances over the XB stream.

    Distance is measured in *uops of distinct XBs* touched since the
    previous access to the same XB — i.e. the minimal capacity that
    would have kept it resident in a redundancy-free store.
    """
    report = StackDistanceReport()
    stack: List[int] = []          # XB end IPs, most recent last
    position: Dict[int, int] = {}  # end_ip -> index in `stack`
    footprint: Dict[int, int] = {} # end_ip -> max uops seen
    pairs: List[tuple] = []

    for step in build_xb_stream(trace, quota):
        ip = step.end_ip
        uops = len(step.uops)
        report.total_accesses += 1
        report.total_uops += uops
        footprint[ip] = max(footprint.get(ip, 0), uops)

        if ip not in position:
            report.cold_accesses += 1
            report.cold_uops += uops
        else:
            index = position[ip]
            distance = sum(
                footprint[other] for other in stack[index + 1:]
            )
            pairs.append((distance, uops))
            stack.pop(index)
            for other in stack[index:]:
                position[other] -= 1
        position[ip] = len(stack)
        stack.append(ip)

    report.finalize(pairs)
    return report
