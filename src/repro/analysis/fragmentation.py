"""Storage fragmentation analysis (§2.2 / §3.2).

Fixed-size lines waste the slots past a block's end.  The paper argues
the XBC's banked 4-uop lines keep this small (only an XB's last line
can be partial), while a 16-uop trace line loses everything past the
trace's end, and a decoded cache fragments on top of that by reserving
worst-case uop space per instruction slot.

This analysis computes, from a trace alone (unbounded builds, no
eviction noise), the slot overhead each organization pays per stored
uop — storage the cache budget buys but cannot use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Set

from repro.tc.config import TcConfig
from repro.tc.fill import TcFillUnit
from repro.trace.record import Trace
from repro.xbc.xbseq import build_xb_stream


@dataclass
class FragmentationReport:
    """Slot overhead per organization, over distinct stored content."""

    #: distinct XB lines needed and the uops they hold
    xbc_lines: int = 0
    xbc_stored_uops: int = 0
    xbc_line_uops: int = 4
    #: distinct traces and the uops they hold
    tc_lines: int = 0
    tc_stored_uops: int = 0
    tc_line_uops: int = 16
    #: decoded-cache lines (8-uop) holding consecutive instructions
    dc_lines: int = 0
    dc_stored_uops: int = 0
    dc_line_uops: int = 8
    #: distinct uops in the trace (the content a perfect store holds once)
    distinct_uops: int = 0

    @staticmethod
    def _waste(lines: int, line_uops: int, stored: int) -> float:
        capacity = lines * line_uops
        if capacity == 0:
            return 0.0
        return 1.0 - stored / capacity

    @property
    def xbc_waste(self) -> float:
        """Fraction of allocated XBC slots left empty."""
        return self._waste(self.xbc_lines, self.xbc_line_uops,
                           self.xbc_stored_uops)

    @property
    def tc_waste(self) -> float:
        """Fraction of allocated TC slots left empty."""
        return self._waste(self.tc_lines, self.tc_line_uops,
                           self.tc_stored_uops)

    @property
    def dc_waste(self) -> float:
        """Fraction of allocated decoded-cache slots left empty."""
        return self._waste(self.dc_lines, self.dc_line_uops,
                           self.dc_stored_uops)

    def slots_per_distinct_uop(self, organization: str) -> float:
        """Allocated slots per distinct uop: fragmentation **and**
        redundancy folded into one capacity-cost number (1.0 = perfect)."""
        lines, line_uops = {
            "xbc": (self.xbc_lines, self.xbc_line_uops),
            "tc": (self.tc_lines, self.tc_line_uops),
            "dc": (self.dc_lines, self.dc_line_uops),
        }[organization]
        if self.distinct_uops == 0:
            return 1.0
        return lines * line_uops / self.distinct_uops

    def summary(self) -> str:
        """Human-readable report."""
        return "\n".join([
            "Storage fragmentation (unbounded builds):",
            f"  XBC (4-uop banked lines):  {self.xbc_waste:.1%} slots wasted "
            f"({self.xbc_lines} lines for {self.xbc_stored_uops} uops)",
            f"  TC (16-uop trace lines):   {self.tc_waste:.1%} slots wasted "
            f"({self.tc_lines} lines for {self.tc_stored_uops} uops)",
            f"  DC (8-uop decoded lines):  {self.dc_waste:.1%} slots wasted "
            f"({self.dc_lines} lines for {self.dc_stored_uops} uops)",
            "  slots per distinct uop (fragmentation x redundancy; 1.0 = "
            "perfect):",
            f"    XBC {self.slots_per_distinct_uop('xbc'):.2f}   "
            f"TC {self.slots_per_distinct_uop('tc'):.2f}   "
            f"DC {self.slots_per_distinct_uop('dc'):.2f}",
        ])


def measure_fragmentation(
    trace: Trace,
    xbc_line_uops: int = 4,
    tc_config: TcConfig = TcConfig(),
    dc_line_uops: int = 8,
) -> FragmentationReport:
    """Compute slot overhead per organization from one trace."""
    report = FragmentationReport(
        xbc_line_uops=xbc_line_uops,
        tc_line_uops=tc_config.line_uops,
        dc_line_uops=dc_line_uops,
    )

    instr_table = trace.instr_table
    distinct = set()
    for ip, count in zip(trace.ips, trace.nuops):
        base = ip << 4
        for index in range(count):
            distinct.add(base | index)
    report.distinct_uops = len(distinct)

    # XBC: one entry-maximal copy per distinct XB; only the top line of
    # each is partial.
    longest: Dict[int, int] = {}
    for step in build_xb_stream(trace):
        length = len(step.uops)
        if length > longest.get(step.end_ip, 0):
            longest[step.end_ip] = length
    for length in longest.values():
        lines = (length + xbc_line_uops - 1) // xbc_line_uops
        report.xbc_lines += lines
        report.xbc_stored_uops += length

    # TC: every distinct trace takes a 16-uop line.
    fill = TcFillUnit(tc_config)
    seen: Set[tuple] = set()
    def lines_of():
        for ip, taken in zip(trace.ips, trace.takens):
            yield from fill.feed(instr_table[ip], bool(taken))
        tail = fill.flush()
        if tail is not None:
            yield tail

    for line in lines_of():
        signature = line.path_signature()
        if signature in seen:
            continue
        seen.add(signature)
        report.tc_lines += 1
        report.tc_stored_uops += line.total_uops

    # DC: consecutive-instruction lines anchored at each distinct entry
    # point (a jump target mid-run starts a new, partially duplicate
    # line — the §2.2 fragmentation source).
    dc_lines: Dict[int, int] = {}
    pending_start = None
    pending_uops = 0
    expected_ip = None
    for ip in trace.ips:
        instr = instr_table[ip]
        breaks = (
            pending_start is None
            or instr.ip != expected_ip
            or pending_uops + instr.num_uops > dc_line_uops
        )
        if breaks:
            if pending_start is not None:
                previous = dc_lines.get(pending_start, 0)
                dc_lines[pending_start] = max(previous, pending_uops)
            pending_start = instr.ip
            pending_uops = 0
        pending_uops += instr.num_uops
        # Lines hold statically consecutive instructions; a taken branch
        # makes the next record's IP differ from next_ip and the check
        # above starts a new line at the target.
        expected_ip = instr.next_ip
    if pending_start is not None:
        previous = dc_lines.get(pending_start, 0)
        dc_lines[pending_start] = max(previous, pending_uops)
    report.dc_lines = len(dc_lines)
    report.dc_stored_uops = sum(dc_lines.values())
    return report
