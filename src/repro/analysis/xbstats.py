"""Extended-block usage statistics (§3.1's multi-entry argument).

An XB is worth indexing by its *ending* IP exactly because control
enters the same block at many points — every such entry would be a
separate (redundant) trace in a TC.  This analysis measures that
directly: for each distinct XB, how many distinct entry offsets occur,
how executions distribute over XBs, and how often the 16-uop quota
(rather than a branch) ends a block.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set

from repro.common.histogram import Histogram
from repro.trace.record import Trace
from repro.xbc.xbseq import build_xb_stream


@dataclass
class XbUsageReport:
    """Per-trace XB usage profile."""

    dynamic_xbs: int = 0
    distinct_xbs: int = 0
    quota_ended_dynamic: int = 0
    #: distinct entry offsets per distinct XB
    entries_histogram: Histogram = field(default_factory=Histogram)
    #: dynamic executions per distinct XB
    executions_histogram: Histogram = field(default_factory=Histogram)
    #: occurrence length in uops (the Figure-1 XB series, for reference)
    length_histogram: Histogram = field(default_factory=Histogram)

    @property
    def multi_entry_fraction(self) -> float:
        """Fraction of distinct XBs entered at more than one offset."""
        total = self.entries_histogram.total
        if total == 0:
            return 0.0
        return 1.0 - self.entries_histogram.fraction_of(1)

    @property
    def mean_entries_per_xb(self) -> float:
        """Average distinct entry points per XB."""
        return self.entries_histogram.mean

    @property
    def quota_fraction(self) -> float:
        """Dynamic fraction of XBs ended by the quota, not a branch."""
        if self.dynamic_xbs == 0:
            return 0.0
        return self.quota_ended_dynamic / self.dynamic_xbs

    @property
    def hot_xb_coverage(self) -> float:
        """Dynamic coverage of the hottest 10% of XBs."""
        items = sorted(
            (count for _v, c in self.executions_histogram.items()
             for count in [_v] * c),
            reverse=True,
        )
        if not items:
            return 0.0
        top = items[: max(1, len(items) // 10)]
        return sum(top) / sum(items)

    def summary(self) -> str:
        """Human-readable report."""
        return "\n".join([
            "XB usage:",
            f"  dynamic XBs:            {self.dynamic_xbs}",
            f"  distinct XBs:           {self.distinct_xbs}",
            f"  entries per XB:         {self.mean_entries_per_xb:.2f} "
            f"({self.multi_entry_fraction:.1%} multi-entry)",
            f"  quota-ended (dynamic):  {self.quota_fraction:.1%}",
            f"  hottest 10% XBs cover:  {self.hot_xb_coverage:.1%} "
            "of executions",
        ])


def measure_xb_usage(trace: Trace, quota: int = 16) -> XbUsageReport:
    """Profile the canonical XB stream of a trace."""
    report = XbUsageReport()
    entries: Dict[int, Set[int]] = {}
    executions: Dict[int, int] = {}
    for step in build_xb_stream(trace, quota):
        report.dynamic_xbs += 1
        if step.end_kind is None:
            report.quota_ended_dynamic += 1
        entries.setdefault(step.end_ip, set()).add(step.entry_offset)
        executions[step.end_ip] = executions.get(step.end_ip, 0) + 1
        report.length_histogram.add(step.entry_offset)
    report.distinct_xbs = len(entries)
    for offsets in entries.values():
        report.entries_histogram.add(len(offsets))
    for count in executions.values():
        report.executions_histogram.add(count)
    return report
