"""Trace-cache redundancy analysis (§2.3).

"Instruction redundancy is the average number of times each uop appears
in the TC."  The structural sources are (i) multiple *paths* through
the same code building different traces, and (ii) *alignment*: a trace
may start at any instruction, so the same uop lands at many positions.

This analysis feeds a whole trace through an unbounded trace build —
every distinct (start IP, path) trace that would ever be built is kept
— and counts copies per distinct uop.  It is an upper bound for any
finite TC (eviction only removes copies) and isolates the redundancy
argument from capacity effects.  The XBC equivalent is computed from
the canonical XB partitioning: distinct stored uops over distinct
executed uops, which is 1.0 by construction plus the line-boundary
duplicates of complex variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

from repro.common.histogram import Histogram
from repro.tc.config import TcConfig
from repro.tc.fill import TcFillUnit
from repro.trace.record import Trace
from repro.xbc.xbseq import build_xb_stream


@dataclass
class RedundancyReport:
    """Copies-per-uop statistics of an unbounded trace build."""

    distinct_uops: int = 0
    stored_uop_copies: int = 0
    distinct_traces: int = 0
    distinct_start_ips: int = 0
    copies_histogram: Histogram = field(default_factory=Histogram)
    #: XB-side numbers for comparison
    distinct_xbs: int = 0
    xb_redundancy: float = 1.0

    @property
    def redundancy(self) -> float:
        """Average copies of each distinct uop across all traces."""
        if self.distinct_uops == 0:
            return 1.0
        return self.stored_uop_copies / self.distinct_uops

    @property
    def path_associativity_pressure(self) -> float:
        """Average distinct paths per trace start IP."""
        if self.distinct_start_ips == 0:
            return 0.0
        return self.distinct_traces / self.distinct_start_ips

    def summary(self) -> str:
        """Human-readable report."""
        return "\n".join([
            "TC redundancy (unbounded build):",
            f"  distinct uops touched:    {self.distinct_uops}",
            f"  stored uop copies:        {self.stored_uop_copies}",
            f"  redundancy factor:        {self.redundancy:.2f} copies/uop",
            f"  distinct traces:          {self.distinct_traces} "
            f"({self.path_associativity_pressure:.2f} paths per start IP)",
            f"  XBC comparison:           {self.distinct_xbs} XBs at "
            f"{self.xb_redundancy:.2f} copies/uop",
        ])


def measure_tc_redundancy(
    trace: Trace,
    tc_config: TcConfig = TcConfig(),
) -> RedundancyReport:
    """Run the unbounded trace build and count copies per uop."""
    fill = TcFillUnit(tc_config)
    seen: Set[Tuple] = set()
    copies: Dict[int, int] = {}
    stored = 0
    start_ips: Set[int] = set()
    instr_table = trace.instr_table
    def lines_of():
        for ip, taken in zip(trace.ips, trace.takens):
            yield from fill.feed(instr_table[ip], bool(taken))
        tail = fill.flush()
        if tail is not None:
            yield tail

    for line in lines_of():
        signature = line.path_signature()
        if signature in seen:
            continue
        seen.add(signature)
        start_ips.add(line.start_ip)
        for entry in line.entries:
            for index in range(entry.instr.num_uops):
                uid = (entry.instr.ip << 4) | index
                copies[uid] = copies.get(uid, 0) + 1
                stored += 1

    report = RedundancyReport(
        distinct_uops=len(copies),
        stored_uop_copies=stored,
        distinct_traces=len(seen),
        distinct_start_ips=len(start_ips),
    )
    for count in copies.values():
        report.copies_histogram.add(count)

    # XB side: distinct uops per distinct XB content (entry-maximal).
    xb_uops: Dict[int, Set[int]] = {}
    for step in build_xb_stream(trace):
        xb_uops.setdefault(step.end_ip, set()).update(step.uops)
    report.distinct_xbs = len(xb_uops)
    distinct = set()
    total = 0
    for uops in xb_uops.values():
        distinct.update(uops)
        total += len(uops)
    report.xb_redundancy = total / len(distinct) if distinct else 1.0
    return report
