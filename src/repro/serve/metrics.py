"""Live operational metrics for the simulation service.

One :class:`ServiceMetrics` instance is shared by the HTTP layer and
the scheduler; ``GET /metrics`` renders :meth:`ServiceMetrics.snapshot`
as JSON.  Everything is plain counters plus fixed-bucket latency
histograms (:data:`LATENCY_BUCKET_BOUNDS`) — cheap enough to update on
every request, with quantiles computed only when a snapshot is taken,
and binned identically to the ``repro bench --serve-load`` harness so
both report comparable p50/p99.

All updates happen on the event-loop thread (engine observer events
are trampolined there by the scheduler), so no locking is needed.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from collections import deque
from typing import Dict, List, Optional, Sequence


def _log_bounds(lo: float, hi: float, per_decade: int) -> tuple:
    """Log-spaced bucket upper bounds from *lo* to at least *hi*."""
    bounds = []
    value = lo
    factor = 10.0 ** (1.0 / per_decade)
    while value < hi:
        bounds.append(value)
        value *= factor
    bounds.append(value)
    return tuple(bounds)


#: Shared histogram bucket upper bounds, in seconds: 100 µs to ~100 s,
#: 8 buckets per decade (~33% resolution).  The serve ``/metrics``
#: endpoint and the ``--serve-load`` harness both bin with these, so a
#: human comparing the two reads percentiles from identical buckets.
LATENCY_BUCKET_BOUNDS = _log_bounds(1e-4, 100.0, per_decade=8)


class LatencyHistogram:
    """Fixed-bucket latency histogram with quantile estimates.

    Buckets are log-spaced and *fixed* (:data:`LATENCY_BUCKET_BOUNDS`
    by default), so histograms from different processes — N serve
    shards, the load harness's client threads — can be merged by
    adding counts, and a quantile read anywhere means the same thing.
    A quantile is reported as the upper bound of the bucket holding
    that rank (a ≤33% overestimate, never an underestimate).
    """

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKET_BOUNDS
                 ) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)  # +1: overflow bucket
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation."""
        self.counts[bisect_left(self.bounds, seconds)] += 1
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold *other* (same bounds) into this histogram."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        self.max = max(self.max, other.max)

    def quantile(self, q: float) -> Optional[float]:
        """Upper bound of the bucket holding the *q*-rank observation."""
        if not self.count:
            return None
        rank = max(1, min(self.count, int(q * self.count) + 1))
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if seen >= rank:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self.max  # overflow bucket: all we know is the max
        return self.max

    def mean(self) -> Optional[float]:
        """Exact mean of all observations (``None`` before the first)."""
        if not self.count:
            return None
        return self.total / self.count

    def snapshot(self) -> Dict[str, Optional[float]]:
        """p50/p95/p99/mean/max in milliseconds plus the sample count."""
        def ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "count": self.count,
            "p50_ms": ms(self.quantile(0.50)),
            "p95_ms": ms(self.quantile(0.95)),
            "p99_ms": ms(self.quantile(0.99)),
            "mean_ms": ms(self.mean()),
            "max_ms": ms(self.max if self.count else None),
        }


class LatencyReservoir:
    """Rolling window of the last *size* latencies, in seconds."""

    def __init__(self, size: int = 512) -> None:
        self._window = deque(maxlen=size)
        self.count = 0
        self.total = 0.0

    def record(self, seconds: float) -> None:
        """Add one observation."""
        self._window.append(seconds)
        self.count += 1
        self.total += seconds

    def quantile(self, q: float) -> Optional[float]:
        """The *q*-quantile of the current window (``None`` if empty)."""
        if not self._window:
            return None
        ordered = sorted(self._window)
        rank = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
        return ordered[rank]

    def mean(self) -> Optional[float]:
        """Lifetime mean latency (``None`` before the first sample)."""
        if not self.count:
            return None
        return self.total / self.count

    def snapshot(self) -> Dict[str, Optional[float]]:
        """p50/p95/mean in milliseconds plus the sample count."""
        def ms(value: Optional[float]) -> Optional[float]:
            return None if value is None else round(value * 1000.0, 3)

        return {
            "count": self.count,
            "p50_ms": ms(self.quantile(0.50)),
            "p95_ms": ms(self.quantile(0.95)),
            "mean_ms": ms(self.mean()),
        }


class ServiceMetrics:
    """Counters and gauges behind ``GET /metrics``."""

    def __init__(self) -> None:
        #: monotonic start mark — uptime must not jump when the wall
        #: clock is stepped (NTP adjustment, suspend/resume).
        self.started = time.monotonic()
        #: HTTP surface.
        self.requests_total = 0
        self.responses_by_status: Dict[int, int] = {}
        #: Submission funnel.
        self.jobs_submitted = 0      #: accepted as new work
        self.jobs_coalesced = 0      #: deduplicated onto in-flight work
        self.jobs_memoized = 0       #: answered from a terminal entry
        self.jobs_rejected = 0       #: 429 backpressure rejections
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.jobs_cancelled = 0      #: queued jobs dropped by a drain
        #: Engine-side accounting.
        self.engine_runs = 0
        self.engine_executed = 0     #: jobs actually computed
        self.engine_cache_hits = 0   #: jobs served by the result cache
        self.uops_delivered = 0      #: trace uops of completed sim work
        self.busy_seconds = 0.0      #: summed per-job engine wall time
        #: submit -> terminal latency of completed jobs (fixed-bucket
        #: histogram: p50/p95/p99 comparable with the load harness).
        self.job_latency = LatencyHistogram()
        #: wall time of whole engine batches.
        self.batch_latency = LatencyHistogram()

    # ------------------------------------------------------------------

    def record_response(self, status: int) -> None:
        """Count one HTTP response."""
        self.requests_total += 1
        self.responses_by_status[status] = (
            self.responses_by_status.get(status, 0) + 1
        )

    def uops_per_sec(self) -> Optional[float]:
        """Aggregate simulation throughput over executed jobs."""
        if self.busy_seconds <= 0.0:
            return None
        return self.uops_delivered / self.busy_seconds

    def cache_hit_ratio(self) -> Optional[float]:
        """Engine result-cache hits / engine-resolved jobs."""
        resolved = self.engine_executed + self.engine_cache_hits
        if not resolved:
            return None
        return self.engine_cache_hits / resolved

    def snapshot(
        self, queue_depth: int = 0, inflight: int = 0, draining: bool = False,
        queue_depths: Optional[List[int]] = None,
        inflights: Optional[List[int]] = None,
    ) -> Dict[str, object]:
        """The ``/metrics`` document (gauges passed in by the caller).

        *queue_depths* / *inflights*, when given, are the per-shard
        gauges of a multi-worker scheduler (one element per shard).
        """
        ups = self.uops_per_sec()
        ratio = self.cache_hit_ratio()
        jobs: Dict[str, object] = {
            "submitted": self.jobs_submitted,
            "coalesced": self.jobs_coalesced,
            "memoized": self.jobs_memoized,
            "rejected": self.jobs_rejected,
            "completed": self.jobs_completed,
            "failed": self.jobs_failed,
            "cancelled": self.jobs_cancelled,
            "queue_depth": queue_depth,
            "inflight": inflight,
        }
        if queue_depths is not None:
            jobs["shards"] = len(queue_depths)
            jobs["queue_depths"] = list(queue_depths)
        if inflights is not None:
            jobs["inflights"] = list(inflights)
        return {
            "uptime_seconds": round(time.monotonic() - self.started, 3),
            "draining": draining,
            "requests": {
                "total": self.requests_total,
                "by_status": {
                    str(code): count
                    for code, count in sorted(
                        self.responses_by_status.items()
                    )
                },
            },
            "jobs": jobs,
            "engine": {
                "runs": self.engine_runs,
                "executed": self.engine_executed,
                "cache_hits": self.engine_cache_hits,
                "cache_hit_ratio": (
                    None if ratio is None else round(ratio, 4)
                ),
                "uops_delivered": self.uops_delivered,
                "busy_seconds": round(self.busy_seconds, 6),
                "uops_per_sec": None if ups is None else round(ups, 1),
            },
            "latency": {
                "job": self.job_latency.snapshot(),
                "batch": self.batch_latency.snapshot(),
            },
        }


def merge_sysinfo(snapshot: Dict[str, object],
                  cache_root: Optional[str] = None) -> Dict[str, object]:
    """Extend a metrics snapshot with host + persistent-cache info.

    Reuses the same machine-readable builders as ``repro info --json``
    so scripts see one schema in both places.
    """
    from repro.sysinfo import cache_data, perf_data

    merged = dict(snapshot)
    merged["cache"] = cache_data(cache_root)
    merged["perf"] = perf_data()
    return merged
