"""The wire format of the simulation service.

A *job request* is a flat JSON object describing one unit of work in
the same vocabulary the CLI uses.  :func:`parse_job` validates it and
builds the corresponding :class:`~repro.exec.job.SimJob` /
:class:`~repro.exec.job.BlockStatsJob`; every rejection raises
:class:`ProtocolError` with a message precise enough to fix the
request (the HTTP layer maps it to a 400).

Request schema (defaults in parentheses)::

    {
      "kind":    "sim" | "blockstats"      ("sim")
      "suite":   "specint"|"sysmark"|"games"  ("specint")
      "index":   int >= 0                  (0)
      "length":  trace length in uops      (150000)
      # kind == "sim" only:
      "frontend": "ic"|"dc"|"tc"|"xbc"|"bbtc"   (required)
      "total_uops": structure budget in uops    (8192)
      "assoc":   associativity shorthand        (0 = frontend default)
      "config":  {field: value} overrides for the frontend's config
                 dataclass (optional; unknown fields are rejected)
      # kind == "blockstats" only:
      "promotion_threshold": float in (0.5, 1.0]  (paper default)

The server enforces the ``MAX_*`` bounds below so one request cannot
monopolize a shared instance; run heavier points through the CLI.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional

from repro.bbtc.config import BbtcConfig
from repro.common.errors import ConfigError, ReproError
from repro.exec.engine import job_key
from repro.exec.job import BlockStatsJob, SimJob
from repro.frontend.decoded_cache import DcConfig
from repro.harness.registry import DEFAULT_LENGTH, registry_spec
from repro.harness.runner import FRONTEND_KINDS
from repro.program.profiles import SUITE_NAMES
from repro.tc.config import TcConfig
from repro.trace.blockstats import PROMOTION_BIAS
from repro.xbc.config import XbcConfig

#: Per-request ceilings (one shared server, many clients).
MAX_LENGTH_UOPS = 2_000_000
MAX_TOTAL_UOPS = 262_144
MAX_INDEX = 63

#: Frontends that take a structure config, with the request field the
#: overrides land in and the dataclass they are validated against.
_CONFIG_KINDS = {
    "xbc": ("xbc_config", XbcConfig),
    "tc": ("tc_config", TcConfig),
    "bbtc": ("bbtc_config", BbtcConfig),
    "dc": ("dc_config", DcConfig),
}


class ProtocolError(ReproError):
    """A malformed or out-of-bounds job request (HTTP 400)."""


def _field(payload: Dict[str, Any], name: str, kind, default):
    """Fetch + type-check one request field (bool is not an int here)."""
    value = payload.get(name, default)
    if kind is int and isinstance(value, bool):
        raise ProtocolError(f"field {name!r} must be an integer")
    if not isinstance(value, kind):
        expected = kind[0].__name__ if isinstance(kind, tuple) \
            else kind.__name__
        raise ProtocolError(
            f"field {name!r} must be {expected}, "
            f"got {type(value).__name__}"
        )
    return value


def _int_field(payload, name, default, low, high) -> int:
    value = _field(payload, name, int, default)
    if not low <= value <= high:
        raise ProtocolError(
            f"field {name!r} must be in [{low}, {high}], got {value}"
        )
    return value


def _build_config(frontend: str, overrides: Dict[str, Any],
                  total_uops: int):
    """Validate *overrides* against the frontend's config dataclass."""
    _, config_cls = _CONFIG_KINDS[frontend]
    fields = {f.name: f for f in dataclasses.fields(config_cls)}
    kwargs: Dict[str, Any] = {"total_uops": total_uops}
    for name, value in overrides.items():
        field = fields.get(name)
        if field is None:
            known = ", ".join(sorted(fields))
            raise ProtocolError(
                f"unknown {config_cls.__name__} field {name!r} "
                f"(known: {known})"
            )
        default = getattr(config_cls, name, field.default)
        if isinstance(default, bool):
            if not isinstance(value, bool):
                raise ProtocolError(f"config field {name!r} must be boolean")
        elif isinstance(default, int):
            if isinstance(value, bool) or not isinstance(value, int):
                raise ProtocolError(f"config field {name!r} must be integer")
        elif isinstance(default, str) and not isinstance(value, str):
            raise ProtocolError(f"config field {name!r} must be a string")
        kwargs[name] = value
    try:
        return config_cls(**kwargs)
    except (TypeError, ValueError, ConfigError) as exc:
        raise ProtocolError(f"invalid {config_cls.__name__}: {exc}") from exc


def parse_job(payload: Any):
    """Validate one request payload and return the job it describes."""
    if not isinstance(payload, dict):
        raise ProtocolError("job request must be a JSON object")
    kind = _field(payload, "kind", str, "sim")
    if kind not in ("sim", "blockstats"):
        raise ProtocolError(
            f"unknown job kind {kind!r}; expected 'sim' or 'blockstats'"
        )
    suite = _field(payload, "suite", str, "specint")
    if suite not in SUITE_NAMES:
        raise ProtocolError(
            f"unknown suite {suite!r}; expected one of {list(SUITE_NAMES)}"
        )
    index = _int_field(payload, "index", 0, 0, MAX_INDEX)
    length = _int_field(payload, "length", DEFAULT_LENGTH,
                        1_000, MAX_LENGTH_UOPS)
    try:
        spec = registry_spec(suite, index, length)
    except ConfigError as exc:
        raise ProtocolError(str(exc)) from exc

    if kind == "blockstats":
        threshold = _field(
            payload, "promotion_threshold", (int, float), PROMOTION_BIAS
        )
        if not 0.5 < float(threshold) <= 1.0:
            raise ProtocolError(
                "field 'promotion_threshold' must be in (0.5, 1.0], "
                f"got {threshold}"
            )
        _reject_unknown(payload, {"kind", "suite", "index", "length",
                                  "promotion_threshold"})
        return BlockStatsJob(spec, promotion_threshold=float(threshold))

    frontend = payload.get("frontend")
    if frontend is None:
        raise ProtocolError("sim request is missing the 'frontend' field")
    if frontend not in FRONTEND_KINDS:
        raise ProtocolError(
            f"unknown frontend {frontend!r}; "
            f"expected one of {list(FRONTEND_KINDS)}"
        )
    total_uops = _int_field(payload, "total_uops", 8192, 512, MAX_TOTAL_UOPS)
    assoc = _int_field(payload, "assoc", 0, 0, 64)
    _reject_unknown(payload, {"kind", "suite", "index", "length",
                              "frontend", "total_uops", "assoc", "config"})

    config_kwargs: Dict[str, Any] = {}
    overrides = payload.get("config")
    if overrides is not None:
        if not isinstance(overrides, dict):
            raise ProtocolError("field 'config' must be an object")
        if frontend not in _CONFIG_KINDS:
            raise ProtocolError(
                f"frontend {frontend!r} takes no structure config"
            )
        field_name, _ = _CONFIG_KINDS[frontend]
        config_kwargs[field_name] = _build_config(
            frontend, overrides, total_uops
        )

    return SimJob(
        frontend=frontend,
        spec=spec,
        total_uops=total_uops,
        assoc=assoc,
        **config_kwargs,
    )


def _reject_unknown(payload: Dict[str, Any], known: set) -> None:
    unknown = sorted(set(payload) - known)
    if unknown:
        raise ProtocolError(
            f"unknown request field(s): {', '.join(unknown)} "
            f"(known: {', '.join(sorted(known))})"
        )


def request_key(payload: Any) -> str:
    """The engine/coalescing key a request would get (validates it)."""
    key = job_key(parse_job(payload))
    assert key is not None  # protocol jobs are always cacheable
    return key


def describe_job(job) -> Dict[str, Any]:
    """The manifest-style parameter dict for responses and listings."""
    return job.describe()


def job_request(job) -> Optional[Dict[str, Any]]:
    """Reconstruct the request payload for *job* (for resubmit files).

    Structure-config overrides are folded back in as a ``config``
    object; returns ``None`` for job types the protocol cannot express.
    """
    if isinstance(job, BlockStatsJob):
        return {
            "kind": "blockstats",
            "suite": job.spec.suite,
            "index": job.spec.index,
            "length": job.spec.length_uops,
            "promotion_threshold": job.promotion_threshold,
        }
    if isinstance(job, SimJob):
        payload: Dict[str, Any] = {
            "kind": "sim",
            "frontend": job.frontend,
            "suite": job.spec.suite,
            "index": job.spec.index,
            "length": job.spec.length_uops,
            "total_uops": job.total_uops,
            "assoc": job.assoc,
        }
        entry = _CONFIG_KINDS.get(job.frontend)
        if entry is not None:
            field_name, _ = entry
            config = getattr(job, field_name)
            if config is not None:
                payload["config"] = {
                    f.name: getattr(config, f.name)
                    for f in dataclasses.fields(config)
                    if f.name != "total_uops"
                }
        return payload
    return None
