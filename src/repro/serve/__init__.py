"""``repro.serve`` — a long-running asyncio simulation service.

The CLI pays full process startup, trace generation and cache probing
per invocation; design-space sweeps (hundreds of small, highly
redundant simulation points) want the opposite: one warm process that
keeps the execution engine, trace cache and result cache resident and
answers requests over HTTP.  This package provides exactly that:

- :mod:`repro.serve.protocol` — JSON job requests →
  :class:`~repro.exec.job.SimJob` / ``BlockStatsJob`` with strict
  validation;
- :mod:`repro.serve.scheduler` — single-flight coalescing on the
  engine's content-addressed job key, batching into engine runs,
  bounded-queue backpressure, graceful drain with a resubmit
  manifest, and key-sharded multi-worker dispatch;
- :mod:`repro.serve.pool` — persistent engine worker processes (one
  per shard) with crash respawn and batch retry;
- :mod:`repro.serve.app` — the stdlib asyncio HTTP surface
  (``/jobs``, NDJSON event streams, ``/healthz``, ``/metrics``);
- :mod:`repro.serve.metrics` — live request/queue/latency/throughput
  counters with fixed-bucket latency histograms;
- :mod:`repro.serve.client` — the synchronous client behind
  ``repro submit`` / ``repro jobs``, with inline fallback and
  bounded retry/backoff.

Start a server with ``python -m repro serve``; see ``docs/serving.md``
for the API and lifecycle.
"""

from repro.serve.app import (
    DEFAULT_PORT,
    BackgroundServer,
    ServeApp,
    build_app,
    run_server,
)
from repro.serve.client import (
    RetryPolicy,
    ServeClient,
    ServeError,
    ServeUnavailable,
    execute_inline,
    submit_or_inline,
)
from repro.serve.metrics import (
    LATENCY_BUCKET_BOUNDS,
    LatencyHistogram,
    LatencyReservoir,
    ServiceMetrics,
)
from repro.serve.pool import PoolError, ShardWorker
from repro.serve.protocol import ProtocolError, parse_job, request_key
from repro.serve.scheduler import (
    Backpressure,
    Draining,
    JobEntry,
    Scheduler,
    shard_for_key,
)

__all__ = [
    "Backpressure",
    "BackgroundServer",
    "DEFAULT_PORT",
    "Draining",
    "JobEntry",
    "LATENCY_BUCKET_BOUNDS",
    "LatencyHistogram",
    "LatencyReservoir",
    "PoolError",
    "ProtocolError",
    "RetryPolicy",
    "Scheduler",
    "ShardWorker",
    "ServeApp",
    "ServeClient",
    "ServeError",
    "ServeUnavailable",
    "ServiceMetrics",
    "build_app",
    "execute_inline",
    "parse_job",
    "request_key",
    "run_server",
    "shard_for_key",
    "submit_or_inline",
]
