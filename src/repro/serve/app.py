"""The asyncio HTTP surface of ``repro serve``.

A deliberately small HTTP/1.1 server on stdlib ``asyncio.start_server``
(the repo has a no-third-party-runtime-deps rule): every connection
carries one request, responses are JSON with ``Connection: close``,
and the event stream is newline-delimited JSON written incrementally.

Routes::

    GET  /healthz            liveness + drain state
    GET  /metrics            live counters + cache/perf info (JSON)
    POST /jobs               submit a job request (protocol.parse_job)
    GET  /jobs               list known jobs (no result payloads)
    GET  /jobs/<id>          one job, result included when done
    GET  /jobs/<id>/events   NDJSON status/progress stream to terminal

Error mapping: validation 400, unknown id 404, full queue 429 (with
``Retry-After``), draining 503.  ``SIGTERM``/``SIGINT`` trigger a
graceful drain: intake stops, the in-flight engine batch finishes,
queued jobs are persisted to a resubmit manifest, and the process
exits 0 (see :meth:`ServeApp.serve_until_shutdown`).
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.exec.engine import ExecPolicy
from repro.serve.metrics import ServiceMetrics, merge_sysinfo
from repro.serve.protocol import ProtocolError, parse_job
from repro.serve.scheduler import Backpressure, Draining, Scheduler

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 8177

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}

#: Request-body ceiling; job requests are tiny.
MAX_BODY_BYTES = 1 << 20
#: Event streams emit a heartbeat line at this idle interval.
HEARTBEAT_SECONDS = 15.0


def _head(status: int, content_type: str,
          extra: Optional[Dict[str, str]] = None,
          length: Optional[int] = None) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        "Connection: close",
    ]
    if length is not None:
        lines.append(f"Content-Length: {length}")
    for name, value in (extra or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")


class ServeApp:
    """One HTTP server bound to one scheduler + metrics pair."""

    def __init__(
        self,
        scheduler: Scheduler,
        metrics: Optional[ServiceMetrics] = None,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        cache_root: Optional[str] = None,
        drain_manifest_dir: Optional[str] = None,
    ) -> None:
        self.scheduler = scheduler
        self.metrics = metrics or scheduler.metrics
        self.host = host
        self.port = port
        self.cache_root = cache_root
        self.drain_manifest_dir = drain_manifest_dir
        self.drain_summary: Optional[Dict[str, Any]] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the socket and start the scheduler run loop."""
        self.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # port=0 means "pick one"; expose what the OS chose.
        self.port = self._server.sockets[0].getsockname()[1]

    def request_shutdown(self) -> None:
        """Flip the shutdown event (signal handlers land here)."""
        self._shutdown.set()

    async def serve_until_shutdown(
        self, install_signals: bool = True
    ) -> Dict[str, Any]:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`).

        Performs the graceful drain before returning: the bound socket
        closes, the in-flight batch finishes, queued jobs land in the
        resubmit manifest.  Returns the drain summary.
        """
        if self._server is None:
            await self.start()
        if install_signals:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):
                    pass  # non-POSIX loop or non-main thread
        await self._shutdown.wait()
        return await self.shutdown()

    async def shutdown(self) -> Dict[str, Any]:
        """Close the listener and drain the scheduler."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.drain_summary = await self.scheduler.drain(
            manifest_dir=self.drain_manifest_dir
        )
        return self.drain_summary

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_inner(reader, writer)
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except Exception as exc:  # one bad connection must not kill serve
            try:
                await self._send_json(
                    writer, 500, {"error": f"internal error: {exc}"}
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _handle_inner(self, reader, writer) -> None:
        request = await asyncio.wait_for(reader.readline(), timeout=30.0)
        parts = request.decode("latin-1").split()
        if len(parts) < 2:
            return
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=30.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 100:
                return
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            await self._send_json(
                writer, 413, {"error": "request body too large"}
            )
            return
        body = await reader.readexactly(length) if length else b""

        split = urlsplit(target)
        path = split.path.rstrip("/") or "/"
        query = {
            name: values[-1]
            for name, values in parse_qs(split.query).items()
        }
        await self._route(writer, method, path, query, body)

    async def _send_json(
        self, writer, status: int, payload: Any,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        writer.write(
            _head(status, "application/json", extra, len(body)) + body
        )
        await writer.drain()
        self.metrics.record_response(status)

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------

    async def _route(self, writer, method, path, query, body) -> None:
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, self._health())
            return
        if path == "/metrics" and method == "GET":
            await self._send_json(writer, 200, self._metrics())
            return
        if path == "/jobs" and method == "POST":
            await self._submit(writer, body)
            return
        if path == "/jobs" and method == "GET":
            jobs = [
                entry.to_dict(include_result=False)
                for entry in self.scheduler.entries()
            ]
            await self._send_json(writer, 200, {"jobs": jobs})
            return
        if path.startswith("/jobs/"):
            rest = path[len("/jobs/"):]
            if method != "GET":
                await self._send_json(
                    writer, 405, {"error": f"{method} not allowed"}
                )
                return
            if rest.endswith("/events"):
                await self._events(writer, rest[: -len("/events")], query)
                return
            entry = self.scheduler.entry(rest)
            if entry is None:
                await self._send_json(
                    writer, 404, {"error": f"unknown job {rest!r}"}
                )
                return
            await self._send_json(writer, 200, entry.to_dict())
            return
        if path in ("/healthz", "/metrics", "/jobs"):
            await self._send_json(
                writer, 405, {"error": f"{method} not allowed on {path}"}
            )
            return
        await self._send_json(writer, 404, {"error": f"no route {path!r}"})

    def _health(self) -> Dict[str, Any]:
        return {
            "status": "draining" if self.scheduler.draining else "ok",
            "ready": not self.scheduler.draining,
            "queue_depth": self.scheduler.queue_depth,
            "inflight": self.scheduler.inflight,
            "shards": self.scheduler.shards,
            "uptime_seconds": round(
                time.monotonic() - self.metrics.started, 3
            ),
        }

    def _metrics(self) -> Dict[str, Any]:
        snapshot = self.metrics.snapshot(
            queue_depth=self.scheduler.queue_depth,
            inflight=self.scheduler.inflight,
            draining=self.scheduler.draining,
            queue_depths=self.scheduler.queue_depths,
            inflights=self.scheduler.inflights,
        )
        return merge_sysinfo(snapshot, self.cache_root)

    # ------------------------------------------------------------------
    # handlers
    # ------------------------------------------------------------------

    async def _submit(self, writer, body: bytes) -> None:
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
        except (ValueError, UnicodeDecodeError) as exc:
            await self._send_json(
                writer, 400, {"error": f"request body is not JSON: {exc}"}
            )
            return
        try:
            job = parse_job(payload)
        except ProtocolError as exc:
            await self._send_json(writer, 400, {"error": str(exc)})
            return
        try:
            entry, disposition = self.scheduler.submit(job, request=payload)
        except Backpressure as exc:
            await self._send_json(
                writer, 429, {"error": str(exc),
                              "retry_after": exc.retry_after},
                extra={"Retry-After": str(exc.retry_after)},
            )
            return
        except Draining as exc:
            await self._send_json(writer, 503, {"error": str(exc)})
            return
        status = 202 if disposition == "new" else 200
        await self._send_json(writer, status, {
            "job_id": entry.key,
            "status": entry.status,
            "disposition": disposition,
            "submissions": entry.submissions,
            "url": f"/jobs/{entry.key}",
            "events": f"/jobs/{entry.key}/events",
        })

    async def _events(self, writer, job_id: str, query) -> None:
        entry = self.scheduler.entry(job_id)
        if entry is None:
            await self._send_json(
                writer, 404, {"error": f"unknown job {job_id!r}"}
            )
            return
        try:
            timeout = min(600.0, float(query.get("timeout", 300.0)))
        except ValueError:
            timeout = 300.0
        queue = self.scheduler.subscribe(entry)
        writer.write(_head(200, "application/x-ndjson"))
        self.metrics.record_response(200)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        try:
            while True:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    event = await asyncio.wait_for(
                        queue.get(), min(remaining, HEARTBEAT_SECONDS)
                    )
                except asyncio.TimeoutError:
                    event = {"event": "heartbeat", "job_id": entry.key,
                             "status": entry.status}
                if event is None:
                    break
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
        finally:
            self.scheduler.unsubscribe(entry, queue)


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------


def build_app(
    policy: Optional[ExecPolicy] = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    queue_size: int = 64,
    batch_max: int = 8,
    batch_window: float = 0.05,
    drain_manifest_dir: Optional[str] = None,
    serve_workers: int = 1,
) -> ServeApp:
    """Assemble metrics + scheduler + app with one policy.

    *serve_workers* > 1 shards the scheduler over that many persistent
    engine worker processes (see ``docs/serving.md``); 1 keeps the
    classic single-process inline engine.
    """
    policy = policy or ExecPolicy()
    metrics = ServiceMetrics()
    scheduler = Scheduler(
        policy=policy,
        queue_size=queue_size,
        batch_max=batch_max,
        batch_window=batch_window,
        metrics=metrics,
        shards=max(1, serve_workers),
    )
    cache_root = policy.resolved_cache_dir() if policy.use_cache else None
    if drain_manifest_dir is None and cache_root:
        import os

        drain_manifest_dir = os.path.join(cache_root, "manifests")
    return ServeApp(
        scheduler, metrics, host=host, port=port,
        cache_root=cache_root, drain_manifest_dir=drain_manifest_dir,
    )


def run_server(app: ServeApp, quiet: bool = False) -> int:
    """Blocking entry point used by ``repro serve``; returns exit code."""

    async def main() -> Dict[str, Any]:
        await app.start()
        if not quiet:
            print(
                f"[serve] listening on http://{app.host}:{app.port} "
                f"(queue={app.scheduler.queue_size}, "
                f"workers={app.scheduler.policy.workers}, "
                f"shards={app.scheduler.shards}"
                f"{' pooled' if app.scheduler.use_pool else ''}, "
                f"batch={app.scheduler.batch_max})",
                file=sys.stderr, flush=True,
            )
        summary = await app.serve_until_shutdown()
        return summary

    try:
        summary = asyncio.run(main())
    except KeyboardInterrupt:  # signal handler unavailable: still clean
        return 0
    if not quiet:
        cancelled = summary.get("cancelled", 0)
        manifest = summary.get("resubmit_manifest")
        line = f"[serve] drained: {cancelled} queued job(s) cancelled"
        if manifest:
            line += f"; resubmit manifest {manifest}"
        print(line, file=sys.stderr, flush=True)
    return 0


class BackgroundServer:
    """A serve instance on a daemon thread (tests and benchmarks).

    ``start()`` returns the base URL once the socket is bound;
    ``stop()`` performs the same graceful drain as SIGTERM and joins
    the thread.
    """

    def __init__(self, app: ServeApp) -> None:
        self.app = app
        self.base_url: Optional[str] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.error: Optional[BaseException] = None

    def start(self, timeout: float = 10.0) -> str:
        """Launch the server; returns ``http://host:port``."""
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("serve thread failed to start in time")
        if self.error is not None:
            raise RuntimeError(f"serve thread died: {self.error}")
        assert self.base_url is not None
        return self.base_url

    def _run(self) -> None:
        async def main() -> None:
            self._loop = asyncio.get_running_loop()
            await self.app.start()
            self.base_url = f"http://{self.app.host}:{self.app.port}"
            self._ready.set()
            await self.app.serve_until_shutdown(install_signals=False)

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface startup failures to start()
            self.error = exc
            self._ready.set()

    def stop(self, timeout: float = 30.0) -> Optional[Dict[str, Any]]:
        """Drain and join; returns the drain summary."""
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self.app.request_shutdown)
            self._thread.join(timeout)
        return self.app.drain_summary
