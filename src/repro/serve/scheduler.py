"""The serve-side job scheduler.

One :class:`Scheduler` sits between the HTTP layer and the execution
engine and provides the three properties a long-running shared
simulation service needs:

- **single-flight coalescing** — submissions are keyed by the engine's
  content-addressed job key (:func:`repro.exec.engine.job_key`), so N
  concurrent requests for the same job point attach to one in-flight
  computation and one engine run; terminal entries additionally answer
  repeat submissions from memory (the engine's persistent cache backs
  this across restarts);
- **batching** — queued jobs are gathered (up to ``batch_max`` within
  ``batch_window`` seconds) into one engine run so they share the
  engine's worker pool and per-run overheads;
- **backpressure + drain** — intake queues are bounded; a full queue
  rejects with :class:`Backpressure` (HTTP 429), and :meth:`drain`
  stops intake, lets in-flight batches finish, cancels queued
  entries and persists their requests to a resubmit manifest;
- **sharding** — with ``shards > 1`` the scheduler runs N independent
  queue/run-loop pairs, each backed by a persistent
  :class:`~repro.serve.pool.ShardWorker` engine process.  Job keys
  are consistent-hashed to a shard (:func:`shard_for_key`, rendezvous
  hashing), so identical keys always land on the same shard and
  single-flight coalescing keeps working per-shard; cross-shard (and
  cross-process) duplicate suppression is the cache-claim layer's
  job (``ExecPolicy.coordinate``).

Everything here runs on the event loop; engines run on worker threads
(inline via :meth:`ExecutionEngine.run_async`, pooled via
:meth:`ShardWorker.run_batch` in an executor) and observer events are
trampolined back with ``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import math
import os
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from repro.common.errors import ReproError
from repro.exec.engine import ExecPolicy, ExecutionEngine, job_key
from repro.serve.metrics import ServiceMetrics
from repro.serve.pool import PoolError, ShardWorker
from repro.serve.protocol import job_request

#: Queue sentinel that tells a run loop to exit after its batch.
_SENTINEL = object()


def shard_for_key(key: str, shards: int) -> int:
    """Consistent shard assignment by rendezvous (HRW) hashing.

    Every (key, shard) pair gets a stable pseudo-random weight; the
    key goes to the highest.  Unlike ``hash(key) % shards`` this moves
    only ~1/N of the keyspace when the shard count changes, so warm
    per-shard coalescing state survives a resize mostly intact.
    """
    if shards <= 1:
        return 0
    best_shard = 0
    best_weight = -1
    for shard in range(shards):
        digest = hashlib.sha256(f"{key}|{shard}".encode("utf-8")).digest()
        weight = int.from_bytes(digest[:8], "big")
        if weight > best_weight:
            best_weight = weight
            best_shard = shard
    return best_shard


class Backpressure(ReproError):
    """The intake queue is full (HTTP 429)."""

    def __init__(self, retry_after: int) -> None:
        super().__init__(
            f"queue full; retry in ~{retry_after}s"
        )
        self.retry_after = retry_after


class Draining(ReproError):
    """The service is shutting down and accepts no new work (HTTP 503)."""


class JobEntry:
    """One logical job: shared by every submission with its key."""

    def __init__(self, key: str, job: Any,
                 request: Optional[Dict[str, Any]] = None) -> None:
        self.key = key
        self.job = job
        self.request = request
        self.status = "queued"   #: queued | running | done | failed | cancelled
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        #: monotonic twins of the wall-clock stamps above: the epoch
        #: fields are API-visible timestamps, but durations (wall_ms,
        #: job latency) must not jump when the wall clock is stepped.
        self._mono_created = time.monotonic()
        self._mono_started: Optional[float] = None
        self._mono_finished: Optional[float] = None
        self.payload: Any = None     #: encoded result once done
        self.error = ""
        self.cached = False          #: served by the engine result cache
        self.attempts = 0
        self.submissions = 1         #: total submissions coalesced here
        self.done_event = asyncio.Event()
        self.subscribers: List[asyncio.Queue] = []
        self.history: List[Dict[str, Any]] = []

    @property
    def terminal(self) -> bool:
        """Whether the entry reached a final state."""
        return self.status in ("done", "failed", "cancelled")

    def to_dict(self, include_result: bool = True) -> Dict[str, Any]:
        """The ``GET /jobs/<id>`` document."""
        wall_ms = None
        if self._mono_started is not None and self._mono_finished is not None:
            wall_ms = round(
                (self._mono_finished - self._mono_started) * 1000.0, 3
            )
        payload: Dict[str, Any] = {
            "job_id": self.key,
            "status": self.status,
            "params": self.job.describe(),
            "submissions": self.submissions,
            "cached": self.cached,
            "attempts": self.attempts,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
            "wall_ms": wall_ms,
        }
        if self.error:
            payload["error"] = self.error
        if include_result and self.status == "done":
            payload["result"] = self.payload
        return payload


class Scheduler:
    """Coalescing, batching, bounded-queue job scheduler (see module)."""

    def __init__(
        self,
        policy: Optional[ExecPolicy] = None,
        queue_size: int = 64,
        batch_max: int = 8,
        batch_window: float = 0.05,
        metrics: Optional[ServiceMetrics] = None,
        history_limit: int = 512,
        shards: int = 1,
        use_pool: Optional[bool] = None,
    ) -> None:
        self.policy = policy or ExecPolicy()
        self.queue_size = queue_size
        self.batch_max = max(1, batch_max)
        self.batch_window = batch_window
        self.metrics = metrics or ServiceMetrics()
        self.history_limit = history_limit
        self.shards = max(1, shards)
        #: pool mode runs each shard on a persistent worker process;
        #: inline mode (the shards=1 default) runs engine batches on
        #: this process the way single-worker serving always has.
        self.use_pool = (self.shards > 1) if use_pool is None else use_pool
        #: the policy shard engines run: pooled shards get their
        #: parallelism from being processes, so each worker runs its
        #: engine inline (no nested pool) with cache-claim
        #: coordination against its sibling shards.
        self.shard_policy = (
            replace(self.policy, workers=1,
                    coordinate=self.policy.use_cache)
            if self.use_pool else self.policy
        )
        self.draining = False
        self._entries: Dict[str, JobEntry] = {}
        self._queues: List[asyncio.Queue] = [
            asyncio.Queue(maxsize=queue_size) for _ in range(self.shards)
        ]
        self._inflight = [0] * self.shards
        self._seq = 0
        self._runners: List[asyncio.Task] = []
        self._workers: List[Optional[ShardWorker]] = [None] * self.shards
        #: inline engine batches swap a process-global trace store in
        #: registry.set_trace_store; with several inline shard loops
        #: that swap must not interleave.
        self._inline_lock = asyncio.Lock()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start the run loops (must be called with a running loop)."""
        if self._runners:
            return
        loop = asyncio.get_running_loop()
        if self.use_pool:
            for shard in range(self.shards):
                if self._workers[shard] is None:
                    self._workers[shard] = ShardWorker(
                        shard, self.shard_policy
                    )
        self._runners = [
            loop.create_task(
                self._run_loop(shard),
                name=f"repro-serve-scheduler-{shard}",
            )
            for shard in range(self.shards)
        ]

    async def drain(
        self, manifest_dir: Optional[str] = None
    ) -> Dict[str, Any]:
        """Stop intake, finish in-flight work, persist queued requests.

        Returns a summary dict; when *manifest_dir* is given and jobs
        had to be cancelled, their request payloads are written to
        ``resubmit-<timestamp>.json`` there so a restarted server (or
        ``repro submit``) can replay them.
        """
        self.draining = True
        cancelled: List[JobEntry] = []
        for queue in self._queues:
            while True:
                try:
                    entry = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if entry is _SENTINEL:
                    continue
                cancelled.append(entry)
        for entry in cancelled:
            entry.status = "cancelled"
            entry.finished = time.time()
            entry._mono_finished = time.monotonic()
            entry.error = "cancelled by server drain"
            self.metrics.jobs_cancelled += 1
            self._publish(entry, {"event": "cancelled"})
            entry.done_event.set()
        for queue in self._queues:
            await queue.put(_SENTINEL)
        if self._runners:
            await asyncio.gather(*self._runners)
            self._runners = []
        for shard, worker in enumerate(self._workers):
            if worker is not None:
                worker.stop()
                self._workers[shard] = None
        manifest_path = None
        requests = [
            entry.request or job_request(entry.job)
            for entry in cancelled
        ]
        requests = [request for request in requests if request is not None]
        if manifest_dir and requests:
            manifest_path = self._write_resubmit(manifest_dir, requests)
        return {
            "cancelled": len(cancelled),
            "resubmit_manifest": manifest_path,
            "requests": requests,
        }

    def _write_resubmit(self, directory: str, requests: List[dict]) -> str:
        os.makedirs(directory, exist_ok=True)
        stamp = time.strftime("%Y%m%d-%H%M%S")
        path = os.path.join(
            directory, f"resubmit-{stamp}-{os.getpid()}.json"
        )
        document = {
            "kind": "repro-serve-resubmit",
            "written": time.time(),
            "jobs": requests,
        }
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    # ------------------------------------------------------------------
    # submission surface
    # ------------------------------------------------------------------

    def submit(
        self, job: Any, request: Optional[Dict[str, Any]] = None
    ) -> Tuple[JobEntry, str]:
        """Register one submission; returns ``(entry, disposition)``.

        Disposition is ``"new"`` (queued a fresh entry), ``"coalesced"``
        (attached to an identical in-flight entry) or ``"memoized"``
        (an identical entry already finished; its result stands, since
        jobs are deterministic functions of their key).
        """
        key = job_key(job)
        if key is None:
            self._seq += 1
            key = f"adhoc-{self._seq:06d}"
        entry = self._entries.get(key)
        if entry is not None:
            if not entry.terminal:
                entry.submissions += 1
                self.metrics.jobs_coalesced += 1
                return entry, "coalesced"
            if entry.status == "done":
                entry.submissions += 1
                self.metrics.jobs_memoized += 1
                return entry, "memoized"
            # failed/cancelled terminal entries may be resubmitted.
        if self.draining:
            raise Draining("server is draining; submit again later")
        entry = JobEntry(key, job, request)
        shard = shard_for_key(key, self.shards)
        try:
            self._queues[shard].put_nowait(entry)
        except asyncio.QueueFull:
            self.metrics.jobs_rejected += 1
            raise Backpressure(self.retry_after_hint()) from None
        self._entries[key] = entry
        self._trim_entries()
        self.metrics.jobs_submitted += 1
        self._publish(entry, {"event": "queued"})
        return entry, "new"

    def entry(self, key: str) -> Optional[JobEntry]:
        """Look up one entry by job id."""
        return self._entries.get(key)

    def entries(self) -> List[JobEntry]:
        """All known entries, oldest first."""
        return list(self._entries.values())

    @property
    def queue_depth(self) -> int:
        """Jobs accepted but not yet handed to an engine (all shards)."""
        return sum(queue.qsize() for queue in self._queues)

    @property
    def queue_depths(self) -> List[int]:
        """Per-shard accepted-but-unstarted job counts."""
        return [queue.qsize() for queue in self._queues]

    @property
    def inflight(self) -> int:
        """Jobs inside currently-running engine batches (all shards)."""
        return sum(self._inflight)

    @property
    def inflights(self) -> List[int]:
        """Per-shard in-batch job counts."""
        return list(self._inflight)

    def retry_after_hint(self) -> int:
        """A 429 ``Retry-After`` estimate from observed job latency."""
        mean = self.metrics.job_latency.mean() or 1.0
        # Effective parallelism: pooled shards are one process each
        # (their engines run inline); otherwise the engine's own pool.
        workers = self.shards if self.use_pool else max(
            1, self.policy.workers
        )
        backlog = self.queue_depth + self.inflight
        return max(1, min(60, math.ceil(mean * backlog / workers)))

    # ------------------------------------------------------------------
    # event streaming
    # ------------------------------------------------------------------

    def subscribe(self, entry: JobEntry) -> asyncio.Queue:
        """Event queue for *entry*: history replay, then live events.

        A ``None`` item marks the end of the stream (entry terminal).
        """
        queue: asyncio.Queue = asyncio.Queue()
        for event in entry.history:
            queue.put_nowait(event)
        if entry.terminal:
            queue.put_nowait(None)
        else:
            entry.subscribers.append(queue)
        return queue

    def unsubscribe(self, entry: JobEntry, queue: asyncio.Queue) -> None:
        """Detach an event queue (no-op if already gone)."""
        try:
            entry.subscribers.remove(queue)
        except ValueError:
            pass

    def _publish(self, entry: JobEntry, event: Dict[str, Any]) -> None:
        payload = {
            "job_id": entry.key,
            "status": entry.status,
            "ts": round(time.time(), 6),
        }
        payload.update(event)
        entry.history.append(payload)
        for queue in entry.subscribers:
            queue.put_nowait(payload)
        if entry.terminal:
            for queue in entry.subscribers:
                queue.put_nowait(None)
            entry.subscribers.clear()

    def _trim_entries(self) -> None:
        """Bound the entry map: drop oldest terminal entries."""
        excess = len(self._entries) - self.history_limit
        if excess <= 0:
            return
        for key in [
            key for key, entry in self._entries.items() if entry.terminal
        ][:excess]:
            del self._entries[key]

    # ------------------------------------------------------------------
    # run loop
    # ------------------------------------------------------------------

    async def _run_loop(self, shard: int) -> None:
        loop = asyncio.get_running_loop()
        queue = self._queues[shard]
        while True:
            entry = await queue.get()
            if entry is _SENTINEL:
                return
            batch = [entry]
            deadline = loop.time() + self.batch_window
            stop_after = False
            while len(batch) < self.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    extra = await asyncio.wait_for(queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if extra is _SENTINEL:
                    stop_after = True
                    break
                batch.append(extra)
            await self._execute_batch(shard, batch)
            if stop_after:
                return

    async def _execute_batch(
        self, shard: int, batch: List[JobEntry]
    ) -> None:
        self._inflight[shard] = len(batch)
        self.metrics.engine_runs += 1
        for entry in batch:
            entry.status = "running"
            entry.started = time.time()
            entry._mono_started = time.monotonic()
            self._publish(entry, {"event": "running"})
        batch_start = time.perf_counter()
        try:
            if self.use_pool:
                outcomes = await self._pool_batch(shard, batch)
            else:
                outcomes = await self._inline_batch(batch)
        except Exception as exc:  # engine invariant failure, not a job error
            for entry in batch:
                self._finish(entry, error=f"{type(exc).__name__}: {exc}")
            self._inflight[shard] = 0
            return
        self.metrics.batch_latency.record(time.perf_counter() - batch_start)
        for entry, outcome in zip(batch, outcomes):
            if outcome["ok"]:
                self._finish(
                    entry,
                    payload=outcome["payload"],
                    cached=outcome["cached"],
                    attempts=outcome["attempts"],
                )
            else:
                entry.attempts = outcome["attempts"]
                self._finish(entry, error=outcome["error"])
        self._inflight[shard] = 0

    async def _inline_batch(
        self, batch: List[JobEntry]
    ) -> List[Dict[str, Any]]:
        """Run one batch on an engine in this process.

        With several inline shards the batches are serialized: the
        engine swaps a process-global trace store while it runs, and
        two concurrent swaps would race.  (Pool mode has no such
        serialization — that is where multi-worker throughput comes
        from.)
        """
        loop = asyncio.get_running_loop()

        def observer(event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._on_engine_event, batch, event)

        engine = ExecutionEngine(self.policy)
        async with self._inline_lock:
            results = await engine.run_async(
                [entry.job for entry in batch],
                label="serve",
                observer=observer,
                strict=False,
            )
        outcomes: List[Dict[str, Any]] = []
        for entry, result in zip(batch, results):
            if result.ok:
                outcomes.append({
                    "ok": True,
                    "payload": entry.job.encode_result(result.value),
                    "cached": result.cached,
                    "attempts": result.attempts,
                })
            else:
                outcomes.append({
                    "ok": False,
                    "error": result.error,
                    "attempts": result.attempts,
                })
        return outcomes

    async def _pool_batch(
        self, shard: int, batch: List[JobEntry]
    ) -> List[Dict[str, Any]]:
        """Run one batch on this shard's persistent worker process."""
        loop = asyncio.get_running_loop()
        worker = self._workers[shard]
        if worker is None:  # drain already stopped the pool
            raise PoolError(f"shard {shard} has no worker")

        def on_event(event: Dict[str, Any]) -> None:
            loop.call_soon_threadsafe(self._on_engine_event, batch, event)

        return await loop.run_in_executor(
            None,
            worker.run_batch,
            f"serve-s{shard}",
            [entry.job for entry in batch],
            on_event,
        )

    def _on_engine_event(
        self, batch: List[JobEntry], event: Dict[str, Any]
    ) -> None:
        """Engine observer events, now on the loop thread."""
        index = event.get("index", -1)
        if not 0 <= index < len(batch):
            return
        entry = batch[index]
        name = event.get("event")
        if name == "cached":
            self.metrics.engine_cache_hits += 1
            self._publish(entry, {"event": "cache-hit"})
        elif name == "running":
            entry.attempts = event.get("attempt", entry.attempts)
            self._publish(
                entry,
                {"event": "attempt", "attempt": event.get("attempt", 1)},
            )
        elif name == "done":
            self.metrics.engine_executed += 1
            wall = float(event.get("wall") or 0.0)
            self.metrics.busy_seconds += wall
            spec = getattr(entry.job, "spec", None)
            if spec is not None:
                self.metrics.uops_delivered += spec.length_uops
            self._publish(
                entry,
                {"event": "computed", "wall": round(wall, 6),
                 "attempt": event.get("attempt", 1)},
            )
        elif name == "failed":
            self._publish(
                entry,
                {"event": "attempt-failed",
                 "attempt": event.get("attempt", 1),
                 "error": event.get("error", ""),
                 "final": bool(event.get("final"))},
            )

    def _finish(
        self, entry: JobEntry,
        payload: Any = None, error: str = "",
        cached: bool = False, attempts: int = 0,
    ) -> None:
        """Mark *entry* terminal with an already-encoded *payload*.

        Both execution paths hand over the encoded form (the pool
        worker encodes in the child with the same ``encode_result``),
        so pooled and inline results are byte-identical on the wire.
        """
        entry.finished = time.time()
        entry._mono_finished = time.monotonic()
        if error:
            entry.status = "failed"
            entry.error = error
            self.metrics.jobs_failed += 1
            self._publish(entry, {"event": "failed", "error": error})
        else:
            entry.status = "done"
            entry.cached = cached
            entry.attempts = attempts
            entry.payload = payload
            self.metrics.jobs_completed += 1
            self.metrics.job_latency.record(
                entry._mono_finished - entry._mono_created
            )
            self._publish(
                entry, {"event": "done", "cached": entry.cached}
            )
        entry.done_event.set()
