"""Persistent engine worker processes for multi-worker serving.

One :class:`ShardWorker` owns one long-lived child process running
:func:`_worker_main`: a loop that receives job batches over a pipe,
executes them on a warm :class:`~repro.exec.engine.ExecutionEngine`
and streams observer events back, ending each batch with the encoded
outcomes.  The scheduler assigns every shard its own worker, so the
pipe protocol never interleaves batches.

Design points:

- **byte-identity** — the child encodes results with the same
  ``job.encode_result`` the inline scheduler path uses and the parent
  stores the encoded payload as-is, so a sharded server returns
  byte-identical results to a single-worker one;
- **crash recovery** — a worker that dies mid-batch (OOM kill, fault
  test) is respawned and the batch retried once; jobs are
  deterministic and cache writes atomic, so a re-run is safe.  The
  dead worker's cache claims go stale (its pid is gone) and are
  broken by the retry;
- **shutdown** — workers ignore SIGINT/SIGTERM; the parent
  coordinates drain and sends an explicit stop message (escalating to
  ``terminate()`` only if the child does not exit).

The child engine runs with ``coordinate=True`` cache claims (set by
the scheduler's policy), so two shards handed the same key in
different batches never simulate it twice: the second shard waits for
the first shard's result entry.
"""

from __future__ import annotations

import multiprocessing
import signal
from typing import Any, Callable, Dict, List, Optional

from repro.exec.engine import ExecPolicy, ExecutionEngine

#: Seconds a stopping worker gets to exit before ``terminate()``.
STOP_GRACE_SECONDS = 5.0


class PoolError(RuntimeError):
    """A worker could not complete a batch even after a respawn."""


def _worker_main(conn, policy: ExecPolicy, shard: int) -> None:
    """Child process loop: run batches until told to stop.

    The engine instance persists across batches, so serial-fallback
    state and cache handles stay warm the way a single-worker serve
    process keeps them warm.

    Signals: the parent coordinates shutdown, so a process-group
    SIGTERM/SIGINT must not kill a worker mid-batch — the in-flight
    batch is the work a drain promises to finish.  SIGTERM instead
    sets a flag the loop honors *between* batches (this is also what
    lets ``Process.terminate()`` reap an idle worker); SIGINT is
    ignored outright.
    """
    stop_requested = {"flag": False}

    def _on_term(signum, frame):  # pragma: no cover - fires via signal
        stop_requested["flag"] = True

    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, _on_term)
    except (OSError, ValueError):  # non-POSIX or exotic context
        pass
    engine = ExecutionEngine(policy)
    while True:
        try:
            while not conn.poll(0.2):
                if stop_requested["flag"]:
                    return
            message = conn.recv()
        except (EOFError, OSError):
            return  # parent went away: nothing left to serve
        if message[0] == "stop":
            return
        if message[0] != "run":
            continue
        _, label, jobs = message

        def observer(event: Dict[str, Any]) -> None:
            try:
                conn.send(("event", event))
            except (BrokenPipeError, OSError):
                pass  # parent gone; finish the batch for the cache

        results = engine.run(
            jobs, label=label, observer=observer, strict=False
        )
        outcomes: List[Dict[str, Any]] = []
        for job, result in zip(jobs, results):
            if result.ok:
                outcomes.append({
                    "ok": True,
                    "payload": job.encode_result(result.value),
                    "cached": result.cached,
                    "attempts": result.attempts,
                    "wall": result.wall_time,
                })
            else:
                outcomes.append({
                    "ok": False,
                    "error": result.error,
                    "attempts": result.attempts,
                    "wall": result.wall_time,
                })
        try:
            conn.send(("done", outcomes))
        except (BrokenPipeError, OSError):
            return


class ShardWorker:
    """One persistent engine worker process, pipe-attached to a shard."""

    def __init__(self, shard: int, policy: ExecPolicy) -> None:
        self.shard = shard
        self.policy = policy
        self.restarts = 0
        self._conn = None
        self._process: Optional[multiprocessing.Process] = None
        self._spawn()

    # ------------------------------------------------------------------

    def _spawn(self) -> None:
        parent, child = multiprocessing.Pipe()
        process = multiprocessing.Process(
            target=_worker_main,
            args=(child, self.policy, self.shard),
            name=f"repro-serve-shard-{self.shard}",
            daemon=True,
        )
        process.start()
        child.close()  # the child holds its own copy
        self._conn = parent
        self._process = process

    @property
    def alive(self) -> bool:
        """Whether the child process is currently running."""
        return self._process is not None and self._process.is_alive()

    def _respawn(self) -> None:
        self.restarts += 1
        try:
            if self._process is not None and self._process.is_alive():
                self._process.terminate()
                self._process.join(STOP_GRACE_SECONDS)
        except (OSError, ValueError):
            pass
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._spawn()

    # ------------------------------------------------------------------

    def run_batch(
        self,
        label: str,
        jobs: List[Any],
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> List[Dict[str, Any]]:
        """Execute *jobs* on the worker; blocks until the batch is done.

        Called from an executor thread (one per shard at most), never
        from the event loop.  Observer events are delivered to
        *on_event* on this thread.  A dead worker is respawned and the
        batch retried once; a second failure raises :class:`PoolError`.
        """
        last_error: Optional[BaseException] = None
        for round_ in range(2):
            if not self.alive:
                self._respawn()
            try:
                return self._run_once(label, jobs, on_event)
            except (EOFError, BrokenPipeError, OSError) as exc:
                # The worker died mid-batch.  Respawn and retry once:
                # jobs are deterministic and cache writes atomic, so a
                # re-run cannot corrupt anything.
                last_error = exc
                self._respawn()
        raise PoolError(
            f"shard {self.shard} worker failed twice: {last_error}"
        )

    def _run_once(self, label, jobs, on_event) -> List[Dict[str, Any]]:
        self._conn.send(("run", label, jobs))
        while True:
            message = self._conn.recv()
            if message[0] == "event":
                if on_event is not None:
                    try:
                        on_event(message[1])
                    except Exception:
                        pass
            elif message[0] == "done":
                return message[1]

    # ------------------------------------------------------------------

    def stop(self) -> None:
        """Ask the worker to exit; escalate to terminate if it won't."""
        process = self._process
        if process is None:
            return
        if process.is_alive() and self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        process.join(STOP_GRACE_SECONDS)
        if process.is_alive():
            process.terminate()
            process.join(STOP_GRACE_SECONDS)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass
        self._process = None

    def kill(self) -> None:
        """Hard-kill the child (fault-injection tests)."""
        if self._process is not None and self._process.is_alive():
            self._process.kill()
            self._process.join(STOP_GRACE_SECONDS)
