"""Thin client for a running ``repro serve`` instance.

Stdlib-only (``http.client``), one connection per request to match the
server's ``Connection: close`` discipline.  :func:`submit_or_inline`
is the CLI's entry point: it talks to a server when one is reachable
and otherwise executes the job inline through the same protocol and
engine, so ``repro submit`` always produces a result.

Saturation behaviour: :meth:`ServeClient.submit_with_retry` retries
429 backpressure rejections and connection resets with bounded
exponential backoff plus jitter (:class:`RetryPolicy`), so a client
under a saturated server sheds load smoothly instead of failing fast
— and thousands of load-harness clients don't retry in lockstep.
Connection *refused* (no server at all) is never retried; it is the
inline-fallback signal.
"""

from __future__ import annotations

import errno
import http.client
import json
import os
import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

from repro.common.errors import ReproError
from repro.exec.engine import ExecPolicy, ExecutionEngine, job_key
from repro.serve.protocol import parse_job

#: Environment override for the default server address.
SERVER_ENV = "REPRO_SERVER"


def default_server() -> str:
    """``$REPRO_SERVER`` or the local default address."""
    from repro.serve.app import DEFAULT_PORT

    return os.environ.get(SERVER_ENV) or f"http://127.0.0.1:{DEFAULT_PORT}"


class ServeError(ReproError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeUnavailable(ReproError):
    """No server is listening at the target address.

    ``reset=True`` marks a connection *reset* (the server exists but
    dropped us — saturation, accept-queue overflow, mid-restart),
    which is worth retrying; plain refusal is not.
    """

    def __init__(self, message: str, reset: bool = False) -> None:
        super().__init__(message)
        self.reset = reset


def _is_reset(exc: BaseException) -> bool:
    """Whether a socket error is a reset (retryable) vs a refusal."""
    if isinstance(exc, (ConnectionResetError, ConnectionAbortedError,
                        BrokenPipeError, http.client.RemoteDisconnected)):
        return True
    if isinstance(exc, ConnectionRefusedError):
        return False
    number = getattr(exc, "errno", None)
    return number in (errno.ECONNRESET, errno.EPIPE)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with jitter for submit retries.

    Delay for attempt *n* (0-based) is ``min(cap, base * 2**n)``,
    stretched to a 429's ``Retry-After`` hint when that is larger
    (still capped), then multiplied by a uniform factor in
    ``[1 - jitter, 1 + jitter]`` so a fleet of saturated clients
    de-synchronizes instead of stampeding in lockstep.
    """

    #: total tries (1 = no retry).
    attempts: int = 5
    #: base of the exponential backoff, in seconds.
    base: float = 0.1
    #: per-sleep ceiling, in seconds.
    cap: float = 5.0
    #: uniform jitter half-width as a fraction of the delay.
    jitter: float = 0.5

    def retryable(self, exc: BaseException) -> bool:
        """Whether *exc* is a saturation signal worth retrying."""
        if isinstance(exc, ServeError):
            return exc.status == 429
        if isinstance(exc, ServeUnavailable):
            return exc.reset
        return False

    def delay(self, attempt: int, retry_after: Optional[int] = None,
              rng: Optional[Callable[[], float]] = None) -> float:
        """The sleep before retry *attempt* (0-based), jittered."""
        delay = min(self.cap, self.base * (2.0 ** attempt))
        if retry_after:
            delay = max(delay, min(self.cap, float(retry_after)))
        spread = (rng or random.random)() * 2.0 - 1.0
        return max(0.0, delay * (1.0 + self.jitter * spread))


class ServeClient:
    """Synchronous JSON client for the serve API."""

    def __init__(self, base_url: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.base_url = (base_url or default_server()).rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ReproError(
                f"unsupported server URL {self.base_url!r} (http only)"
            )
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], Any]:
        connection = self._connect()
        try:
            payload = None
            headers = {"Accept": "application/json"}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, socket.timeout, OSError,
                    http.client.RemoteDisconnected) as exc:
                raise ServeUnavailable(
                    f"no server at {self.base_url}: {exc}",
                    reset=_is_reset(exc),
                ) from exc
            document: Any = None
            if raw:
                try:
                    document = json.loads(raw.decode("utf-8"))
                except ValueError:
                    document = {"error": raw.decode("utf-8", "replace")}
            return response.status, dict(response.getheaders()), document
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: Optional[dict] = None) -> Any:
        status, headers, document = self._request(method, path, body)
        if status >= 400:
            message = "unexpected error"
            if isinstance(document, dict) and document.get("error"):
                message = str(document["error"])
            retry_after = None
            for name, value in headers.items():
                if name.lower() == "retry-after":
                    try:
                        retry_after = int(value)
                    except ValueError:
                        pass
            raise ServeError(status, message, retry_after=retry_after)
        return document

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def is_up(self) -> bool:
        """Whether a serve instance answers ``/healthz``."""
        try:
            self.healthz()
            return True
        except (ServeUnavailable, ServeError):
            return False

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._checked("GET", "/metrics")

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs``; raises :class:`ServeError` on 4xx/5xx."""
        return self._checked("POST", "/jobs", body=request)

    def submit_with_retry(
        self,
        request: Dict[str, Any],
        retry: Optional[RetryPolicy] = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: Optional[Callable[[], float]] = None,
    ) -> Dict[str, Any]:
        """:meth:`submit` with bounded backoff on 429/connection-reset.

        Non-retryable failures (400s, refused connections) propagate
        immediately; retryable ones are re-tried up to
        ``retry.attempts`` times and the last error re-raised when the
        budget is spent.  *sleep*/*rng* are injectable for tests.
        """
        retry = retry or RetryPolicy()
        last: Optional[Exception] = None
        for attempt in range(max(1, retry.attempts)):
            try:
                return self.submit(request)
            except (ServeError, ServeUnavailable) as exc:
                if not retry.retryable(exc):
                    raise
                last = exc
            if attempt + 1 >= max(1, retry.attempts):
                break
            retry_after = getattr(last, "retry_after", None)
            sleep(retry.delay(attempt, retry_after=retry_after, rng=rng))
        assert last is not None
        raise last

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>``."""
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        """``GET /jobs``."""
        return self._checked("GET", "/jobs")

    def events(self, job_id: str,
               timeout: float = 300.0) -> Iterator[Dict[str, Any]]:
        """``GET /jobs/<id>/events``: yield NDJSON events to stream end."""
        connection = self._connect()
        try:
            try:
                connection.request(
                    "GET", f"/jobs/{job_id}/events?timeout={timeout:g}"
                )
                response = connection.getresponse()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServeUnavailable(
                    f"no server at {self.base_url}: {exc}",
                    reset=_is_reset(exc),
                ) from exc
            if response.status >= 400:
                raw = response.read()
                message = raw.decode("utf-8", "replace")
                try:
                    message = json.loads(message).get("error", message)
                except ValueError:
                    pass
                raise ServeError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except ValueError:
                    continue
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.25) -> Dict[str, Any]:
        """Block until the job is terminal; returns its document.

        Follows the event stream (cheap, push-based) and falls back to
        polling ``GET /jobs/<id>`` if the stream ends early.
        """
        deadline = time.monotonic() + timeout
        try:
            for event in self.events(job_id, timeout=timeout):
                if event.get("status") in ("done", "failed", "cancelled"):
                    break
        except ServeUnavailable:
            pass  # server may be draining; fall through to polls
        while True:
            document = self.job(job_id)
            if document["status"] in ("done", "failed", "cancelled"):
                return document
            if time.monotonic() > deadline:
                raise ServeError(
                    504, f"job {job_id} not terminal after {timeout}s"
                )
            time.sleep(poll)


def execute_inline(
    request: Dict[str, Any], policy: Optional[ExecPolicy] = None
) -> Dict[str, Any]:
    """Run one request locally through the same protocol + engine.

    Returns a job document shaped like ``GET /jobs/<id>`` with
    ``"disposition": "inline"`` so callers can tell the paths apart.
    """
    job = parse_job(request)
    engine = ExecutionEngine(policy or ExecPolicy(use_cache=True))
    started = time.time()
    result = engine.run([job], label="submit-inline")[0]
    finished = time.time()
    return {
        "job_id": job_key(job),
        "status": "done",
        "disposition": "inline",
        "params": job.describe(),
        "cached": result.cached,
        "attempts": result.attempts,
        "created": started,
        "started": started,
        "finished": finished,
        "wall_ms": round((finished - started) * 1000.0, 3),
        "result": job.encode_result(result.value),
    }


def submit_or_inline(
    request: Dict[str, Any],
    server: Optional[str] = None,
    wait: bool = True,
    timeout: float = 300.0,
    policy: Optional[ExecPolicy] = None,
    retry: Optional[RetryPolicy] = None,
) -> Tuple[Dict[str, Any], str]:
    """Submit to a server if reachable, else execute inline.

    Returns ``(document, via)`` where *via* is ``"server"`` or
    ``"inline"``.  With ``wait=False`` against a live server the
    returned document is the submission acknowledgement, not the
    result.  Backpressure (429) and connection resets are retried
    with backoff per *retry* before giving up; a refused connection
    (no server) falls back to inline immediately.
    """
    client = ServeClient(server, timeout=min(timeout, 30.0))
    try:
        acknowledgement = client.submit_with_retry(request, retry=retry)
    except ServeUnavailable:
        return execute_inline(request, policy=policy), "inline"
    if not wait:
        return acknowledgement, "server"
    document = client.wait(acknowledgement["job_id"], timeout=timeout)
    document["disposition"] = acknowledgement.get("disposition")
    return document, "server"
