"""Thin client for a running ``repro serve`` instance.

Stdlib-only (``http.client``), one connection per request to match the
server's ``Connection: close`` discipline.  :func:`submit_or_inline`
is the CLI's entry point: it talks to a server when one is reachable
and otherwise executes the job inline through the same protocol and
engine, so ``repro submit`` always produces a result.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import time
from typing import Any, Dict, Iterator, Optional, Tuple
from urllib.parse import urlsplit

from repro.common.errors import ReproError
from repro.exec.engine import ExecPolicy, ExecutionEngine, job_key
from repro.serve.protocol import parse_job

#: Environment override for the default server address.
SERVER_ENV = "REPRO_SERVER"


def default_server() -> str:
    """``$REPRO_SERVER`` or the local default address."""
    from repro.serve.app import DEFAULT_PORT

    return os.environ.get(SERVER_ENV) or f"http://127.0.0.1:{DEFAULT_PORT}"


class ServeError(ReproError):
    """A non-2xx response from the server."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[int] = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServeUnavailable(ReproError):
    """No server is listening at the target address."""


class ServeClient:
    """Synchronous JSON client for the serve API."""

    def __init__(self, base_url: Optional[str] = None,
                 timeout: float = 30.0) -> None:
        self.base_url = (base_url or default_server()).rstrip("/")
        split = urlsplit(self.base_url)
        if split.scheme not in ("http", ""):
            raise ReproError(
                f"unsupported server URL {self.base_url!r} (http only)"
            )
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, Dict[str, str], Any]:
        connection = self._connect()
        try:
            payload = None
            headers = {"Accept": "application/json"}
            if body is not None:
                payload = json.dumps(body).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=payload,
                                   headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServeUnavailable(
                    f"no server at {self.base_url}: {exc}"
                ) from exc
            document: Any = None
            if raw:
                try:
                    document = json.loads(raw.decode("utf-8"))
                except ValueError:
                    document = {"error": raw.decode("utf-8", "replace")}
            return response.status, dict(response.getheaders()), document
        finally:
            connection.close()

    def _checked(self, method: str, path: str,
                 body: Optional[dict] = None) -> Any:
        status, headers, document = self._request(method, path, body)
        if status >= 400:
            message = "unexpected error"
            if isinstance(document, dict) and document.get("error"):
                message = str(document["error"])
            retry_after = None
            for name, value in headers.items():
                if name.lower() == "retry-after":
                    try:
                        retry_after = int(value)
                    except ValueError:
                        pass
            raise ServeError(status, message, retry_after=retry_after)
        return document

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------

    def is_up(self) -> bool:
        """Whether a serve instance answers ``/healthz``."""
        try:
            self.healthz()
            return True
        except (ServeUnavailable, ServeError):
            return False

    def healthz(self) -> Dict[str, Any]:
        """``GET /healthz``."""
        return self._checked("GET", "/healthz")

    def metrics(self) -> Dict[str, Any]:
        """``GET /metrics``."""
        return self._checked("GET", "/metrics")

    def submit(self, request: Dict[str, Any]) -> Dict[str, Any]:
        """``POST /jobs``; raises :class:`ServeError` on 4xx/5xx."""
        return self._checked("POST", "/jobs", body=request)

    def job(self, job_id: str) -> Dict[str, Any]:
        """``GET /jobs/<id>``."""
        return self._checked("GET", f"/jobs/{job_id}")

    def jobs(self) -> Dict[str, Any]:
        """``GET /jobs``."""
        return self._checked("GET", "/jobs")

    def events(self, job_id: str,
               timeout: float = 300.0) -> Iterator[Dict[str, Any]]:
        """``GET /jobs/<id>/events``: yield NDJSON events to stream end."""
        connection = self._connect()
        try:
            try:
                connection.request(
                    "GET", f"/jobs/{job_id}/events?timeout={timeout:g}"
                )
                response = connection.getresponse()
            except (ConnectionError, socket.timeout, OSError) as exc:
                raise ServeUnavailable(
                    f"no server at {self.base_url}: {exc}"
                ) from exc
            if response.status >= 400:
                raw = response.read()
                message = raw.decode("utf-8", "replace")
                try:
                    message = json.loads(message).get("error", message)
                except ValueError:
                    pass
                raise ServeError(response.status, message)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line.decode("utf-8"))
                except ValueError:
                    continue
        finally:
            connection.close()

    def wait(self, job_id: str, timeout: float = 300.0,
             poll: float = 0.25) -> Dict[str, Any]:
        """Block until the job is terminal; returns its document.

        Follows the event stream (cheap, push-based) and falls back to
        polling ``GET /jobs/<id>`` if the stream ends early.
        """
        deadline = time.monotonic() + timeout
        try:
            for event in self.events(job_id, timeout=timeout):
                if event.get("status") in ("done", "failed", "cancelled"):
                    break
        except ServeUnavailable:
            pass  # server may be draining; fall through to polls
        while True:
            document = self.job(job_id)
            if document["status"] in ("done", "failed", "cancelled"):
                return document
            if time.monotonic() > deadline:
                raise ServeError(
                    504, f"job {job_id} not terminal after {timeout}s"
                )
            time.sleep(poll)


def execute_inline(
    request: Dict[str, Any], policy: Optional[ExecPolicy] = None
) -> Dict[str, Any]:
    """Run one request locally through the same protocol + engine.

    Returns a job document shaped like ``GET /jobs/<id>`` with
    ``"disposition": "inline"`` so callers can tell the paths apart.
    """
    job = parse_job(request)
    engine = ExecutionEngine(policy or ExecPolicy(use_cache=True))
    started = time.time()
    result = engine.run([job], label="submit-inline")[0]
    finished = time.time()
    return {
        "job_id": job_key(job),
        "status": "done",
        "disposition": "inline",
        "params": job.describe(),
        "cached": result.cached,
        "attempts": result.attempts,
        "created": started,
        "started": started,
        "finished": finished,
        "wall_ms": round((finished - started) * 1000.0, 3),
        "result": job.encode_result(result.value),
    }


def submit_or_inline(
    request: Dict[str, Any],
    server: Optional[str] = None,
    wait: bool = True,
    timeout: float = 300.0,
    policy: Optional[ExecPolicy] = None,
) -> Tuple[Dict[str, Any], str]:
    """Submit to a server if reachable, else execute inline.

    Returns ``(document, via)`` where *via* is ``"server"`` or
    ``"inline"``.  With ``wait=False`` against a live server the
    returned document is the submission acknowledgement, not the
    result.
    """
    client = ServeClient(server, timeout=min(timeout, 30.0))
    try:
        acknowledgement = client.submit(request)
    except ServeUnavailable:
        return execute_inline(request, policy=policy), "inline"
    if not wait:
        return acknowledgement, "server"
    document = client.wait(acknowledgement["job_id"], timeout=timeout)
    document["disposition"] = acknowledgement.get("disposition")
    return document, "server"
