"""Machine-readable host / cache / perf info.

``repro info --json`` and the serve layer's ``/metrics`` endpoint both
render these dicts, so scripts get one stable schema instead of
scraping the human-readable ``repro info`` text.
"""

from __future__ import annotations

import glob
import json
import os
import platform
from typing import Any, Dict, Optional

from repro.exec.cache import default_cache_dir, disk_cache_stats


def host_data() -> Dict[str, Any]:
    """Interpreter and machine context."""
    getter = getattr(os, "sched_getaffinity", None)
    try:
        affinity = len(getter(0)) if getter is not None else None
    except OSError:  # pragma: no cover - containers without the syscall
        affinity = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "cpu_affinity": affinity,
    }


def cache_data(root: Optional[str] = None) -> Dict[str, Any]:
    """Persistent trace/result cache inventory for *root*."""
    root = root or default_cache_dir()
    if not os.path.isdir(root):
        return {"root": root, "present": False}
    disk = disk_cache_stats(root)
    return {
        "root": root,
        "present": True,
        "traces": {
            "entries": disk.traces.entries, "bytes": disk.traces.bytes,
        },
        "results": {
            "entries": disk.results.entries, "bytes": disk.results.bytes,
        },
    }


def latest_bench_report(search_dir: str = ".") -> Optional[Dict[str, Any]]:
    """The newest readable ``BENCH_*.json`` under *search_dir*, if any."""
    newest = None
    for path in glob.glob(os.path.join(search_dir, "BENCH_*.json")):
        try:
            mtime = os.path.getmtime(path)
            if newest is None or mtime > newest[0]:
                with open(path, "r", encoding="utf-8") as handle:
                    newest = (mtime, path, json.load(handle))
        except (OSError, ValueError):
            continue
    if newest is None:
        return None
    _, path, report = newest
    report = dict(report)
    report["_path"] = path
    return report


def perf_data(search_dir: str = ".") -> Dict[str, Any]:
    """The ``[perf]`` section of ``repro info`` as data."""
    payload: Dict[str, Any] = {"host": host_data()}
    report = latest_bench_report(search_dir)
    if report is None:
        payload["bench"] = None
        return payload
    payload["bench"] = {
        "path": report.get("_path"),
        "rev": report.get("rev"),
        "budget_uops": report.get("budget_uops"),
        "calibration_ops_per_sec": report.get("calibration_ops_per_sec"),
        "phases": {
            name: {"uops_per_sec": phase.get("uops_per_sec"),
                   "seconds": phase.get("seconds")}
            for name, phase in report.get("phases", {}).items()
        },
    }
    return payload


def profiles_data() -> list:
    """The ``[profiles]`` section: every registered profile's shape.

    Shape statistics are reported at the profile's native static
    footprint target (the scale the registry generates it at).
    """
    from repro.program.profiles import (
        PROFILE_STATIC_UOPS,
        registered_profiles,
    )

    entries = []
    for name, profile in sorted(registered_profiles().items()):
        target = PROFILE_STATIC_UOPS.get(name)
        native = profile.scaled(target) if target else profile
        entries.append({
            "name": name,
            "static_uops": target,
            "functions": native.num_functions,
            "max_call_depth": native.max_call_depth,
            "mean_block_uops": round(native.mean_block_uops(), 2),
            "indirect_rate": round(native.indirect_rate(), 4),
        })
    return entries


def info_data(cache_root: Optional[str] = None,
              traces: Optional[list] = None) -> Dict[str, Any]:
    """The full ``repro info --json`` document."""
    from repro.harness.registry import trace_cache_stats

    memory = trace_cache_stats()
    return {
        "traces": traces or [],
        "profiles": profiles_data(),
        "trace_cache": {
            "entries": memory.entries,
            "bytes": memory.bytes,
            "hits": memory.hits,
            "misses": memory.misses,
        },
        "cache": cache_data(cache_root),
        "perf": perf_data(),
    }
