"""Deterministic random-number helpers.

Everything stochastic in the library (program synthesis, branch
behaviour, trace execution) draws from a :class:`DeterministicRng`,
a thin wrapper over :class:`random.Random` that adds the distributions
the workload generator needs: bounded geometric draws, Zipf-weighted
choices and mixture selection.  Wrapping the standard generator keeps
runs reproducible from a single integer seed and lets substreams be
forked without correlating with the parent stream.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from functools import lru_cache
from math import log
from typing import List, Sequence, Tuple, TypeVar

T = TypeVar("T")


@lru_cache(maxsize=4096)
def _zipf_thresholds(count: int, skew: float) -> Tuple[float, Tuple[float, ...]]:
    """Cumulative Zipf weights for ``zipf_choice`` (memoized).

    Computed with exactly the float-accumulation order of
    ``zipf_weights`` + ``weighted_choice``, so a cached draw picks the
    identical item for the identical uniform draw — the cache is purely
    a speed optimization (the old per-call recompute made callee
    assignment O(n^2) in the function count, the server-profile
    generation hot spot).
    """
    raw = [1.0 / (rank**skew) for rank in range(1, count + 1)]
    raw_total = sum(raw)
    weights = [w / raw_total for w in raw]
    total = sum(weights)
    cumulative: List[float] = []
    acc = 0.0
    for weight in weights:
        acc += weight
        cumulative.append(acc)
    return total, tuple(cumulative)

# A large odd constant used to decorrelate forked substreams.  The exact
# value is irrelevant; it only needs to be fixed and odd.
_FORK_MIX = 0x9E3779B97F4A7C15


class DeterministicRng:
    """A seeded random source with workload-oriented distributions.

    Parameters
    ----------
    seed:
        Any integer.  Two instances created with the same seed produce
        identical streams.
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        # Materialized on first draw: a Mersenne-Twister init costs ~8us
        # and the generator forks one substream per function and per
        # branch behaviour, most of which never draw in a bounded run.
        self._rng: "random.Random | None" = None

    def _materialize(self) -> random.Random:
        rng = self._rng
        if rng is None:
            rng = self._rng = random.Random(self.seed)
        return rng

    def reset(self) -> None:
        """Rewind the stream to its initial (seed) state.

        Behaviour objects call this so that re-executing a program
        yields an identical trace.  The underlying generator object is
        reseeded in place rather than replaced, so bound references to
        it (the executor caches them for inlined draws) stay valid.
        A never-materialized stream is already in its initial state.
        """
        if self._rng is not None:
            self._rng.seed(self.seed)

    def fork(self, salt: int) -> "DeterministicRng":
        """Return an independent substream derived from *seed* and *salt*.

        Forking is how the generator gives each function/branch its own
        stream, so inserting a new draw in one place does not reshuffle
        every subsequent decision.
        """
        mixed = (self.seed * _FORK_MIX + salt * 0x100000001B3) & (2**64 - 1)
        return DeterministicRng(mixed)

    # -- direct pass-throughs ------------------------------------------------

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return (self._rng or self._materialize()).random()

    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        return (self._rng or self._materialize()).randint(lo, hi)

    def choice(self, seq: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return (self._rng or self._materialize()).choice(seq)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle *items* in place."""
        (self._rng or self._materialize()).shuffle(items)

    def sample(self, seq: Sequence[T], k: int) -> List[T]:
        """Sample *k* distinct items."""
        return (self._rng or self._materialize()).sample(seq, k)

    # -- distributions -------------------------------------------------------

    def geometric(self, mean: float, lo: int = 1, hi: int = 10**9) -> int:
        """Geometric draw with the given mean, clamped to [lo, hi].

        Block sizes, trip counts and similar "mostly small, sometimes
        large" quantities use this shape; it matches the long-tailed
        basic-block-length statistics reported for IA-32 code.

        Sampled by inverting the geometric CDF, so one uniform draw
        yields the value regardless of its magnitude (the old
        draw-per-increment loop consumed O(value) stream positions,
        dominating generation time for large means).
        """
        if mean <= lo:
            return lo
        p = 1.0 / (mean - lo + 1.0)
        if p >= 1.0:
            # mean is within float epsilon of lo: the draw is lo with
            # probability ~1, and log(1 - p) below would be log(0).
            return lo
        u = (self._rng or self._materialize()).random()
        value = lo + int(log(1.0 - u) / log(1.0 - p))
        return value if value < hi else hi

    def weighted_choice(self, pairs: Sequence[Tuple[T, float]]) -> T:
        """Choose an item given ``(item, weight)`` pairs."""
        total = sum(weight for _, weight in pairs)
        point = (self._rng or self._materialize()).random() * total
        acc = 0.0
        for item, weight in pairs:
            acc += weight
            if point < acc:
                return item
        return pairs[-1][0]

    def zipf_weights(self, count: int, skew: float = 1.0) -> List[float]:
        """Return *count* Zipf-distributed weights summing to 1.

        Indirect-branch target popularity follows this shape: one or two
        dominant targets plus a tail, which is what makes indirect
        prediction neither trivial nor hopeless.
        """
        raw = [1.0 / (rank**skew) for rank in range(1, count + 1)]
        total = sum(raw)
        return [w / total for w in raw]

    def zipf_choice(self, items: Sequence[T], skew: float = 1.0) -> T:
        """Choose from *items* with Zipf-decaying popularity by position.

        Draw-for-draw identical to
        ``weighted_choice(zip(items, zipf_weights(len(items), skew)))``
        but with the cumulative thresholds memoized per (count, skew)
        and the scan replaced by a bisect.
        """
        total, cumulative = _zipf_thresholds(len(items), skew)
        point = (self._rng or self._materialize()).random() * total
        index = bisect_right(cumulative, point)
        if index >= len(items):
            index = len(items) - 1
        return items[index]
