"""Shared low-level utilities for the XBC reproduction.

This package hosts the pieces every other subsystem leans on:
deterministic random-number helpers (:mod:`repro.common.rng`),
histogram/statistics containers (:mod:`repro.common.histogram`),
ASCII table rendering for the experiment reports
(:mod:`repro.common.tables`), bit-twiddling helpers
(:mod:`repro.common.bitutils`) and the library's exception hierarchy
(:mod:`repro.common.errors`).
"""

from repro.common.errors import (
    ReproError,
    ConfigError,
    GenerationError,
    SimulationError,
    TraceFormatError,
)
from repro.common.histogram import Histogram, RunningStats
from repro.common.rng import DeterministicRng
from repro.common.tables import format_table

__all__ = [
    "ReproError",
    "ConfigError",
    "GenerationError",
    "SimulationError",
    "TraceFormatError",
    "Histogram",
    "RunningStats",
    "DeterministicRng",
    "format_table",
]
