"""ASCII table rendering for experiment reports.

Every figure-regeneration harness prints its series through
:func:`format_table` so the terminal output is uniform and easy to diff
against the numbers recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width ASCII table.

    Floats are printed with three decimals; all other cells use ``str``.
    Column widths adapt to the widest cell.
    """
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)
