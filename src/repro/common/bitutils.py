"""Small bit-manipulation helpers used by the cache models.

The XBC identifies the banks holding an extended block with a *mask
vector* (one bit per bank); these helpers keep that representation
readable at the call sites.
"""

from __future__ import annotations

from typing import Iterator, List


def bit_set(mask: int, position: int) -> int:
    """Return *mask* with bit *position* set."""
    return mask | (1 << position)


def bit_test(mask: int, position: int) -> bool:
    """True when bit *position* of *mask* is set."""
    return bool(mask & (1 << position))

def bit_clear(mask: int, position: int) -> int:
    """Return *mask* with bit *position* cleared."""
    return mask & ~(1 << position)


def iter_bits(mask: int) -> Iterator[int]:
    """Yield the set bit positions of *mask*, lowest first."""
    position = 0
    while mask:
        if mask & 1:
            yield position
        mask >>= 1
        position += 1


def popcount(mask: int) -> int:
    """Number of set bits."""
    return bin(mask).count("1")


def mask_of(positions: List[int]) -> int:
    """Build a mask from a list of bit positions."""
    mask = 0
    for position in positions:
        mask |= 1 << position
    return mask


def log2_exact(value: int) -> int:
    """Integer log2 of a power of two; raises ``ValueError`` otherwise.

    Cache geometry parameters (set counts, line sizes) must be powers of
    two so index extraction is a shift, matching the hardware the paper
    assumes.
    """
    if value <= 0 or value & (value - 1):
        raise ValueError(f"{value} is not a positive power of two")
    return value.bit_length() - 1
