"""Exception hierarchy for the XBC reproduction library.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch everything coming from this package with a single handler
while still being able to distinguish configuration mistakes from
simulator bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigError(ReproError):
    """A configuration object is inconsistent or out of range."""


class GenerationError(ReproError):
    """The synthetic program generator could not satisfy its profile."""


class SimulationError(ReproError):
    """An internal invariant of a frontend simulator was violated.

    Seeing this exception always indicates a bug in the simulator (or a
    corrupted trace), never a legal-but-unlucky workload.
    """


class TraceFormatError(ReproError):
    """A serialized trace file could not be parsed."""


class ExecutionError(ReproError):
    """A job submitted to the execution engine failed all its attempts.

    Carries the final error text of (a sample of) the failed jobs; the
    run manifest records every attempt in full.
    """
