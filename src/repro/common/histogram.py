"""Histogram and running-statistics containers.

The paper's Figure 1 is a length-distribution histogram and its other
figures are averages over traces; these two small classes are the
library's uniform way of collecting such data.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple


class Histogram:
    """An integer-valued histogram with summary statistics.

    Values are bucketed exactly (one bucket per distinct integer), which
    suits block-length distributions whose support is 1..16.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum = 0

    def add(self, value: int, count: int = 1) -> None:
        """Record *value* occurring *count* times."""
        if count <= 0:
            return
        self._counts[value] = self._counts.get(value, 0) + count
        self._total += count
        self._sum += value * count

    def update(self, values: Iterable[int]) -> None:
        """Record every value in *values* once."""
        for value in values:
            self.add(value)

    @property
    def total(self) -> int:
        """Number of recorded samples."""
        return self._total

    @property
    def mean(self) -> float:
        """Arithmetic mean of the samples (0.0 when empty)."""
        if self._total == 0:
            return 0.0
        return self._sum / self._total

    def count_of(self, value: int) -> int:
        """Number of samples equal to *value*."""
        return self._counts.get(value, 0)

    def fraction_of(self, value: int) -> float:
        """Fraction of samples equal to *value* (0.0 when empty)."""
        if self._total == 0:
            return 0.0
        return self._counts.get(value, 0) / self._total

    def items(self) -> List[Tuple[int, int]]:
        """Sorted ``(value, count)`` pairs."""
        return sorted(self._counts.items())

    def percentile(self, q: float) -> int:
        """Smallest value at or below which at least ``q`` of samples fall.

        ``q`` is a fraction in (0, 1].  Raises ``ValueError`` on an empty
        histogram because there is no meaningful answer.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"percentile fraction out of range: {q}")
        if self._total == 0:
            raise ValueError("percentile of an empty histogram")
        threshold = q * self._total
        running = 0
        for value, count in self.items():
            running += count
            if running >= threshold:
                return value
        return self.items()[-1][0]

    def merged_with(self, other: "Histogram") -> "Histogram":
        """Return a new histogram combining both operands."""
        result = Histogram()
        for value, count in self.items():
            result.add(value, count)
        for value, count in other.items():
            result.add(value, count)
        return result

    def render(self, width: int = 40, label: str = "") -> str:
        """ASCII bar-chart rendering, one row per distinct value."""
        lines = []
        if label:
            lines.append(label)
        peak = max((c for _, c in self.items()), default=1)
        for value, count in self.items():
            bar = "#" * max(1, round(width * count / peak))
            lines.append(f"{value:>4}  {count:>8}  {bar}")
        lines.append(f"mean={self.mean:.2f}  n={self.total}")
        return "\n".join(lines)


class RunningStats:
    """Streaming mean/variance/min/max without storing samples.

    Uses Welford's algorithm, which stays numerically stable over the
    hundreds of thousands of per-cycle samples a simulation produces.
    """

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min_value = math.inf
        self.max_value = -math.inf

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        self.min_value = min(self.min_value, value)
        self.max_value = max(self.max_value, value)

    @property
    def mean(self) -> float:
        """Mean of the samples so far (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the samples so far."""
        if self.count < 2:
            return 0.0
        return self._m2 / self.count

    @property
    def stddev(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)
