"""Frontend factory and run helpers shared by all experiments."""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bbtc.config import BbtcConfig
from repro.bbtc.frontend import BbtcFrontend
from repro.common.errors import ConfigError
from repro.frontend.base import FrontendModel
from repro.frontend.config import FrontendConfig
from repro.frontend.decoded_cache import DcConfig, DecodedCacheFrontend
from repro.frontend.ic_frontend import ICFrontend
from repro.frontend.metrics import FrontendStats
from repro.tc.config import TcConfig
from repro.tc.frontend import TcFrontend
from repro.trace.record import Trace
from repro.xbc.config import XbcConfig
from repro.xbc.frontend import XbcFrontend

#: Frontend kinds the harness can build.
FRONTEND_KINDS: Tuple[str, ...] = ("ic", "dc", "tc", "xbc", "bbtc")


def make_frontend(
    kind: str,
    fe_config: Optional[FrontendConfig] = None,
    total_uops: int = 8192,
    assoc: int = 0,
    xbc_config: Optional[XbcConfig] = None,
    tc_config: Optional[TcConfig] = None,
    bbtc_config: Optional[BbtcConfig] = None,
    dc_config: Optional[DcConfig] = None,
) -> FrontendModel:
    """Build a frontend by name.

    ``total_uops`` budgets the uop structure; ``assoc`` (when nonzero)
    overrides associativity — ways-per-bank for the XBC, cache
    associativity for the TC, matching how Figure 10 sweeps both.
    Explicit structure configs take precedence over the shorthands.
    """
    fe = fe_config or FrontendConfig()
    if kind == "ic":
        return ICFrontend(fe)
    if kind == "dc":
        config = dc_config or DcConfig(total_uops=total_uops, assoc=assoc or 4)
        return DecodedCacheFrontend(fe, config)
    if kind == "tc":
        config = tc_config or TcConfig(
            total_uops=total_uops, assoc=assoc or 4
        )
        return TcFrontend(fe, config)
    if kind == "xbc":
        config = xbc_config or XbcConfig(
            total_uops=total_uops, ways_per_bank=assoc or 2
        )
        return XbcFrontend(fe, config)
    if kind == "bbtc":
        config = bbtc_config or BbtcConfig(
            total_uops=total_uops, assoc=assoc or 4
        )
        return BbtcFrontend(fe, config)
    raise ConfigError(
        f"unknown frontend kind {kind!r}; expected one of {FRONTEND_KINDS}"
    )


def run_frontend(
    kind: str,
    trace: Trace,
    fe_config: Optional[FrontendConfig] = None,
    total_uops: int = 8192,
    assoc: int = 0,
    **kwargs,
) -> FrontendStats:
    """Build-and-run convenience used by experiments and examples."""
    frontend = make_frontend(
        kind, fe_config, total_uops=total_uops, assoc=assoc, **kwargs
    )
    return frontend.run(trace)
