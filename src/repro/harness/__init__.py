"""Experiment harness.

Maps the paper's evaluation (§4) onto the library: a trace *registry*
(the synthetic stand-in for the 21-trace workload set), a *runner*
building frontends by name, and one module per figure/claim under
:mod:`repro.harness.experiments`.  ``python -m repro <experiment>``
drives everything from the command line.
"""

from repro.harness.registry import (
    TraceSpec,
    clear_trace_cache,
    default_registry,
    make_trace,
    registry_spec,
    trace_cache_stats,
)
from repro.harness.runner import make_frontend, run_frontend, FRONTEND_KINDS
from repro.harness.sweep import SweepRow, run_sweep, format_sweep, parse_param

__all__ = [
    "TraceSpec",
    "default_registry",
    "make_trace",
    "registry_spec",
    "clear_trace_cache",
    "trace_cache_stats",
    "make_frontend",
    "run_frontend",
    "FRONTEND_KINDS",
    "SweepRow",
    "run_sweep",
    "format_sweep",
    "parse_param",
]
