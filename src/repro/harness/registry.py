"""Trace registry: the synthetic stand-in for the paper's 21 traces.

The paper evaluates 8 SPECint95 traces, 8 SYSmark32 traces and 5 game
traces of 30M instructions each.  The registry generates deterministic
synthetic counterparts: each (suite, index) pair gets its own program
seed and a suite-dependent static footprint (with per-index variation,
the way real benchmark binaries vary), executed for a configurable uop
budget.  The default *scaled* registry uses 3 traces per suite and
150k-uop traces so every figure regenerates in seconds on a laptop;
``full=True`` restores the paper's 8/8/5 trace counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.program.generator import generate_program
from repro.program.profiles import SUITE_NAMES, profile_for_suite
from repro.trace.executor import execute_program
from repro.trace.record import Trace

#: Paper trace counts per suite.
PAPER_COUNTS: Dict[str, int] = {"specint": 8, "sysmark": 8, "games": 5}

#: Baseline static footprint (uops) per suite, before per-index variation.
#: SYSmark's flat, large footprint versus the games' small hot core is
#: what differentiates the suites' miss-rate behaviour.
STATIC_UOPS: Dict[str, int] = {"specint": 9000, "sysmark": 16000, "games": 6000}

#: Default dynamic trace length in uops (scaled from the paper's 30M
#: instructions; ratios, not absolute counts, are what the figures use).
DEFAULT_LENGTH = 150_000


@dataclass(frozen=True)
class TraceSpec:
    """Deterministic recipe for one synthetic trace."""

    suite: str
    index: int
    seed: int
    static_uops: int
    length_uops: int

    @property
    def name(self) -> str:
        """Registry-wide unique trace name."""
        return f"{self.suite}-{self.index}"


def default_registry(
    traces_per_suite: Optional[int] = None,
    length_uops: int = DEFAULT_LENGTH,
    full: bool = False,
    suites: Optional[List[str]] = None,
) -> List[TraceSpec]:
    """Build the trace list used by an experiment.

    With ``full=True`` the paper's 8/8/5 counts are used; otherwise
    *traces_per_suite* (default 3) per suite.
    """
    specs: List[TraceSpec] = []
    for suite in suites or SUITE_NAMES:
        if full:
            count = PAPER_COUNTS[suite]
        else:
            count = traces_per_suite if traces_per_suite is not None else 3
        base = STATIC_UOPS[suite]
        for index in range(count):
            # Vary footprint across a suite the way real binaries do.
            static = round(base * (0.75 + 0.20 * index))
            specs.append(
                TraceSpec(
                    suite=suite,
                    index=index,
                    seed=1000 * (SUITE_NAMES.index(suite) + 1) + 17 * index + 3,
                    static_uops=static,
                    length_uops=length_uops,
                )
            )
    return specs


_TRACE_CACHE: Dict[TraceSpec, Trace] = {}


def make_trace(spec: TraceSpec) -> Trace:
    """Generate (or return the cached) trace for a spec.

    Trace generation is deterministic, so caching is purely a speed
    optimization shared across the experiments of one process.
    """
    cached = _TRACE_CACHE.get(spec)
    if cached is not None:
        return cached
    profile = profile_for_suite(spec.suite).scaled(spec.static_uops)
    program = generate_program(
        profile, seed=spec.seed, name=spec.name, suite=spec.suite
    )
    trace = execute_program(program, max_uops=spec.length_uops)
    _TRACE_CACHE[spec] = trace
    return trace


def clear_trace_cache() -> None:
    """Drop cached traces (tests use this to bound memory)."""
    _TRACE_CACHE.clear()
