"""Trace registry: the synthetic stand-in for the paper's 21 traces.

The paper evaluates 8 SPECint95 traces, 8 SYSmark32 traces and 5 game
traces of 30M instructions each.  The registry generates deterministic
synthetic counterparts: each (suite, index) pair gets its own program
seed and a suite-dependent static footprint (with per-index variation,
the way real benchmark binaries vary), executed for a configurable uop
budget.  The default *scaled* registry uses 3 traces per suite and
150k-uop traces so every figure regenerates in seconds on a laptop;
``full=True`` restores the paper's 8/8/5 trace counts.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.program.generator import generate_program
from repro.program.profiles import (
    PROFILE_STATIC_UOPS,
    SERVER_NAMES,
    SUITE_NAMES,
    WorkloadProfile,
    profile_by_name,
)
from repro.trace.executor import execute_program
from repro.trace.record import Trace

#: Paper trace counts per suite.
PAPER_COUNTS: Dict[str, int] = {"specint": 8, "sysmark": 8, "games": 5}

#: Baseline static footprint (uops) per suite, before per-index variation.
#: SYSmark's flat, large footprint versus the games' small hot core is
#: what differentiates the suites' miss-rate behaviour.  (A view of the
#: profile registry's targets, kept under its historical name.)
STATIC_UOPS: Dict[str, int] = {
    suite: PROFILE_STATIC_UOPS[suite] for suite in SUITE_NAMES
}

#: Default dynamic trace length in uops (scaled from the paper's 30M
#: instructions; ratios, not absolute counts, are what the figures use).
DEFAULT_LENGTH = 150_000


@dataclass(frozen=True)
class TraceSpec:
    """Deterministic recipe for one synthetic trace.

    ``suite`` names the generating profile — one of the paper suites,
    a server-family profile, or any registered profile name.  A fuzzer
    candidate instead carries its (ad-hoc) profile inline in
    ``profile``, which then takes precedence over the name lookup; the
    embedded profile is part of the spec's cache identity, so two
    candidates differing in any tunable never share a trace.
    """

    suite: str
    index: int
    seed: int
    static_uops: int
    length_uops: int
    profile: Optional[WorkloadProfile] = None

    @property
    def name(self) -> str:
        """Registry-wide unique trace name."""
        return f"{self.suite}-{self.index}"


def registry_spec(
    suite: str, index: int, length_uops: int = DEFAULT_LENGTH
) -> TraceSpec:
    """The spec ``default_registry`` would assign to (suite, index).

    This is the single source of truth for the seed/footprint formulas,
    so CLI commands addressing one trace get exactly the registry's
    trace without building (and discarding) a whole registry.
    """
    if suite not in SUITE_NAMES:
        raise ConfigError(
            f"unknown suite {suite!r}; expected one of {SUITE_NAMES}"
        )
    if index < 0:
        raise ConfigError(f"trace index must be >= 0, got {index}")
    base = STATIC_UOPS[suite]
    # Vary footprint across a suite the way real binaries do.
    static = round(base * (0.75 + 0.20 * index))
    return TraceSpec(
        suite=suite,
        index=index,
        seed=1000 * (SUITE_NAMES.index(suite) + 1) + 17 * index + 3,
        static_uops=static,
        length_uops=length_uops,
    )


def scenario_spec(
    profile_name: str,
    index: int = 0,
    length_uops: int = DEFAULT_LENGTH,
    static_uops: Optional[int] = None,
) -> TraceSpec:
    """The spec for one trace of *any* registered profile.

    Paper suites delegate to :func:`registry_spec` (same seeds, same
    cache keys); other registered profiles — the server family in
    particular — get their own deterministic seed formula and default
    to the profile's native footprint target (overridable with
    *static_uops*, e.g. to scale a CI smoke run down).
    """
    if profile_name in SUITE_NAMES:
        if static_uops is not None:
            base = registry_spec(profile_name, index, length_uops)
            return TraceSpec(
                suite=base.suite, index=base.index, seed=base.seed,
                static_uops=static_uops, length_uops=length_uops,
            )
        return registry_spec(profile_name, index, length_uops)
    profile_by_name(profile_name)  # raises ConfigError on unknown names
    if index < 0:
        raise ConfigError(f"trace index must be >= 0, got {index}")
    base = static_uops
    if base is None:
        target = PROFILE_STATIC_UOPS.get(profile_name)
        if target is None:
            raise ConfigError(
                f"profile {profile_name!r} has no static footprint target; "
                "pass static_uops explicitly"
            )
        # Mild per-index variation, like the suite formula's but gentler:
        # server binaries of one family differ less than benchmark picks.
        base = round(target * (0.90 + 0.10 * index))
    ordinal = (
        SERVER_NAMES.index(profile_name)
        if profile_name in SERVER_NAMES
        else 7 + sum(ord(ch) for ch in profile_name) % 89
    )
    return TraceSpec(
        suite=profile_name,
        index=index,
        seed=7000 + 1000 * ordinal + 17 * index + 5,
        static_uops=base,
        length_uops=length_uops,
    )


def server_registry(
    traces_per_profile: int = 1,
    length_uops: int = DEFAULT_LENGTH,
    static_uops: Optional[int] = None,
    profiles: Optional[List[str]] = None,
) -> List[TraceSpec]:
    """Specs covering the server profile family.

    *static_uops* (when given) overrides every profile's native
    footprint target — the handle CI smoke paths use to keep server
    traces cheap while exercising the same machinery.
    """
    specs: List[TraceSpec] = []
    for name in profiles or list(SERVER_NAMES):
        for index in range(traces_per_profile):
            specs.append(
                scenario_spec(
                    name, index, length_uops, static_uops=static_uops
                )
            )
    return specs


def default_registry(
    traces_per_suite: Optional[int] = None,
    length_uops: int = DEFAULT_LENGTH,
    full: bool = False,
    suites: Optional[List[str]] = None,
) -> List[TraceSpec]:
    """Build the trace list used by an experiment.

    With ``full=True`` the paper's 8/8/5 counts are used; otherwise
    *traces_per_suite* (default 3) per suite.
    """
    specs: List[TraceSpec] = []
    for suite in suites or SUITE_NAMES:
        if full:
            count = PAPER_COUNTS[suite]
        else:
            count = traces_per_suite if traces_per_suite is not None else 3
        for index in range(count):
            specs.append(registry_spec(suite, index, length_uops))
    return specs


_TRACE_CACHE: Dict[TraceSpec, Trace] = {}

#: Optional persistent store (see :class:`repro.exec.cache.TraceStore`).
#: Anything with ``load(spec) -> Optional[Trace]`` and
#: ``store(spec, trace)`` works; the execution engine installs one when
#: caching is enabled (in this process and in every worker).
_TRACE_STORE = None

_CACHE_HITS = 0
_CACHE_MISSES = 0


@dataclass
class TraceCacheStats:
    """In-process trace-cache statistics (``repro info`` surfaces these)."""

    entries: int = 0
    #: approximate resident size of the cached record lists.
    bytes: int = 0
    hits: int = 0
    misses: int = 0

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"entries={self.entries} ~{self.bytes / 1024:.0f} KiB "
            f"hits={self.hits} misses={self.misses}"
        )


def set_trace_store(store) -> object:
    """Install a persistent trace store; returns the previous one."""
    global _TRACE_STORE
    previous = _TRACE_STORE
    _TRACE_STORE = store
    return previous


def make_trace(spec: TraceSpec) -> Trace:
    """Generate (or return the cached) trace for a spec.

    Trace generation is deterministic, so caching is purely a speed
    optimization.  Lookups go through two layers: the in-process dict
    (shared by the experiments of one process) and, when installed via
    :func:`set_trace_store`, a persistent content-addressed store
    shared across processes and runs.
    """
    global _CACHE_HITS, _CACHE_MISSES
    cached = _TRACE_CACHE.get(spec)
    if cached is not None:
        _CACHE_HITS += 1
        return cached
    _CACHE_MISSES += 1
    if _TRACE_STORE is not None:
        stored = _TRACE_STORE.load(spec)
        if stored is not None:
            _TRACE_CACHE[spec] = stored
            return stored
    profile = (
        spec.profile if spec.profile is not None
        else profile_by_name(spec.suite)
    ).scaled(spec.static_uops)
    profile.validate()  # embedded (fuzzer) profiles fail here, not mid-gen
    program = generate_program(
        profile, seed=spec.seed, name=spec.name, suite=spec.suite
    )
    trace = execute_program(program, max_uops=spec.length_uops)
    _TRACE_CACHE[spec] = trace
    if _TRACE_STORE is not None:
        try:
            _TRACE_STORE.store(spec, trace)
        except OSError:
            pass  # persistence is best-effort; the run must not fail
    return trace


def _trace_bytes(trace: Trace) -> int:
    """Rough resident size of one cached trace's columns."""
    size = (
        sys.getsizeof(trace.ips)
        + sys.getsizeof(trace.takens)
        + sys.getsizeof(trace.next_ips)
        + sys.getsizeof(trace.kinds)
        + sys.getsizeof(trace.nuops)
        + sys.getsizeof(trace.snexts)
    )
    size += sys.getsizeof(trace.instr_table)
    return size


def trace_cache_stats() -> TraceCacheStats:
    """Snapshot of the in-process cache (non-destructive)."""
    return TraceCacheStats(
        entries=len(_TRACE_CACHE),
        bytes=sum(_trace_bytes(trace) for trace in _TRACE_CACHE.values()),
        hits=_CACHE_HITS,
        misses=_CACHE_MISSES,
    )


def clear_trace_cache() -> TraceCacheStats:
    """Drop cached traces (tests use this to bound memory).

    Returns the statistics accumulated up to the clear, then resets
    the hit/miss counters along with the entries.
    """
    global _CACHE_HITS, _CACHE_MISSES
    stats = trace_cache_stats()
    _TRACE_CACHE.clear()
    _CACHE_HITS = 0
    _CACHE_MISSES = 0
    return stats
