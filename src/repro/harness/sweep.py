"""Generic XBC parameter sweeps.

The figure experiments pin the paper's configurations; this module is
for exploring beyond them: take any set of :class:`XbcConfig` fields,
a list of values for each, and run the full cross product over the
registry.  Invalid geometry combinations (non-power-of-two set counts
and the like) are reported as skipped rather than aborting the sweep.

CLI: ``python -m repro sweep --param banks=2,4,8 --param ways_per_bank=1,2``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.common.errors import ConfigError
from repro.common.tables import format_table
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import SimJob
from repro.frontend.config import FrontendConfig
from repro.harness.registry import TraceSpec, default_registry
from repro.xbc.config import XbcConfig


@dataclass
class SweepRow:
    """Averaged metrics for one parameter combination."""

    params: Dict[str, object]
    valid: bool = True
    reason: str = ""
    miss_rate: float = 0.0
    delivery_bandwidth: float = 0.0
    fetch_bandwidth: float = 0.0

    def label(self) -> str:
        """Human-readable ``k=v`` rendering of the combination."""
        return " ".join(f"{k}={v}" for k, v in self.params.items())


def parse_param(text: str) -> Dict[str, List[object]]:
    """Parse one ``name=v1,v2,...`` CLI fragment into a grid entry."""
    if "=" not in text:
        raise ConfigError(f"bad --param {text!r}; expected name=v1,v2")
    name, _, values_text = text.partition("=")
    values: List[object] = []
    for token in values_text.split(","):
        token = token.strip()
        if token.lower() in ("true", "false"):
            values.append(token.lower() == "true")
        else:
            try:
                values.append(int(token))
            except ValueError:
                try:
                    values.append(float(token))
                except ValueError:
                    values.append(token)
    if not values:
        raise ConfigError(f"--param {name} has no values")
    return {name.strip(): values}


def run_sweep(
    grid: Dict[str, Sequence[object]],
    specs: Optional[List[TraceSpec]] = None,
    base: Optional[XbcConfig] = None,
    fe_config: Optional[FrontendConfig] = None,
    policy: Optional[ExecPolicy] = None,
) -> List[SweepRow]:
    """Run the cross product of *grid* over the registry traces.

    Geometry is validated up front in this process; each surviving
    (combination, trace) point is an independent :class:`SimJob`
    fanned out through the execution engine per *policy*.
    """
    specs = specs if specs is not None else default_registry()
    base = base or XbcConfig()
    fe = fe_config or FrontendConfig()
    known = set(XbcConfig.__dataclass_fields__)
    for name in grid:
        if name not in known:
            raise ConfigError(
                f"unknown XbcConfig field {name!r}; "
                f"valid fields: {', '.join(sorted(known))}"
            )

    keys = sorted(grid)
    rows: List[SweepRow] = []
    configs: List[Optional[XbcConfig]] = []
    for combo in itertools.product(*(grid[key] for key in keys)):
        params = dict(zip(keys, combo))
        row = SweepRow(params=params)
        try:
            config = replace(base, **params)
            config.validate()
        except (ConfigError, TypeError) as exc:
            row.valid = False
            row.reason = str(exc)
            config = None
        rows.append(row)
        configs.append(config)

    jobs = [
        SimJob(frontend="xbc", spec=spec, fe_config=fe, xbc_config=config)
        for config in configs
        if config is not None
        for spec in specs
    ]
    outcomes = iter(execute_jobs(jobs, policy, label="sweep"))
    for row, config in zip(rows, configs):
        if config is None:
            continue
        miss = bw = fbw = 0.0
        for _spec in specs:
            stats = next(outcomes).value
            miss += stats.uop_miss_rate
            bw += stats.delivery_bandwidth
            fbw += stats.fetch_bandwidth
        count = len(specs)
        row.miss_rate = miss / count
        row.delivery_bandwidth = bw / count
        row.fetch_bandwidth = fbw / count
    return rows


def format_sweep(rows: List[SweepRow]) -> str:
    """Render the sweep as a table (invalid combos flagged)."""
    table = []
    for row in rows:
        if row.valid:
            table.append([
                row.label(), row.miss_rate * 100,
                row.delivery_bandwidth, row.fetch_bandwidth,
            ])
        else:
            table.append([row.label(), "invalid", "-", "-"])
    return format_table(
        ["parameters", "miss %", "uops/cyc", "uops/fetch"],
        table,
        title="XBC parameter sweep",
    )
