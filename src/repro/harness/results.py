"""Result export: CSV serialization of the experiment series.

Every experiment result can be flattened to ``(headers, rows)`` for
machine consumption (plotting, regression tracking).  The CLI's
``--csv`` option and the ``all`` command route through here.
"""

from __future__ import annotations

import csv
import io
from typing import Iterable, List, Sequence, Tuple

from repro.harness.experiments.ablations import AblationRow
from repro.harness.experiments.claims import ClaimsResult
from repro.harness.experiments.fig1 import Fig1Result
from repro.harness.experiments.fig8 import Fig8Row
from repro.harness.experiments.fig9 import Fig9Result
from repro.harness.experiments.fig10 import Fig10Result
from repro.harness.experiments.scenario import ScenarioRow
from repro.harness.sweep import SweepRow

Table = Tuple[List[str], List[List[object]]]


def fig1_table(result: Fig1Result) -> Table:
    """Flatten Figure-1 means per suite."""
    headers = ["suite", "basic_block", "xb", "xb_promoted", "dual_xb"]
    rows: List[List[object]] = []
    for suite, stats in sorted(result.per_suite.items()):
        means = stats.means()
        rows.append([
            suite,
            means["basic block"],
            means["XB"],
            means["XB w/ promotion"],
            means["dual XB"],
        ])
    overall = result.overall.means()
    rows.append([
        "ALL",
        overall["basic block"],
        overall["XB"],
        overall["XB w/ promotion"],
        overall["dual XB"],
    ])
    return headers, rows


def fig8_table(rows_in: Sequence[Fig8Row]) -> Table:
    """Flatten Figure-8 per-trace bandwidths."""
    headers = ["trace", "suite", "tc_bandwidth", "xbc_bandwidth", "ratio"]
    rows = [
        [r.trace, r.suite, r.tc_bandwidth, r.xbc_bandwidth, r.ratio]
        for r in rows_in
    ]
    return headers, rows


def fig9_table(result: Fig9Result) -> Table:
    """Flatten the Figure-9 size sweep."""
    headers = ["total_uops", "tc_miss", "xbc_miss", "reduction"]
    rows = [
        [size, result.tc_miss[size], result.xbc_miss[size],
         result.reduction(size)]
        for size in result.sizes
    ]
    return headers, rows


def fig10_table(result: Fig10Result) -> Table:
    """Flatten the Figure-10 associativity sweep."""
    headers = ["assoc", "tc_miss", "xbc_miss"]
    rows = [
        [assoc, result.tc_miss[assoc], result.xbc_miss[assoc]]
        for assoc in result.assocs
    ]
    return headers, rows


def claims_table(result: ClaimsResult) -> Table:
    """Flatten the T2/T3 claim measurements."""
    headers = ["metric", "value"]
    rows: List[List[object]] = [
        [f"reduction@{size}", reduction]
        for size, reduction in zip(result.fig9.sizes, result.reductions)
    ]
    rows.append(["reduction_spread", result.reduction_spread])
    rows.append(["tc_equivalent_size", result.tc_equivalent_size])
    rows.append(["tc_enlargement", result.tc_enlargement])
    return headers, rows


def ablations_table(rows_in: Sequence[AblationRow]) -> Table:
    """Flatten the ablation sweep."""
    headers = ["variant", "miss_rate", "bandwidth", "fetch_bandwidth"]
    rows = [
        [r.name, r.miss_rate, r.bandwidth, r.fetch_bandwidth]
        for r in rows_in
    ]
    return headers, rows


def sweep_table(rows_in: Sequence[SweepRow]) -> Table:
    """Flatten a parameter sweep (invalid combinations included)."""
    headers = [
        "parameters", "miss_rate", "delivery_bandwidth",
        "fetch_bandwidth", "valid",
    ]
    rows = [
        [row.label(), row.miss_rate, row.delivery_bandwidth,
         row.fetch_bandwidth, row.valid]
        for row in rows_in
    ]
    return headers, rows


def scenario_table(rows_in: Sequence[ScenarioRow]) -> Table:
    """Flatten the widened scenario matrix."""
    headers = ["scenario", "group", "tc_hit", "xbc_hit", "delta", "inverted"]
    rows = [
        [row.name, row.group, row.tc_hit, row.xbc_hit, row.delta,
         row.inverted]
        for row in rows_in
    ]
    return headers, rows


def to_csv(table: Table) -> str:
    """Render a ``(headers, rows)`` table as CSV text."""
    headers, rows = table
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(headers)
    writer.writerows(rows)
    return buffer.getvalue()


def write_csv(table: Table, path: str) -> None:
    """Write a table to *path* as CSV."""
    with open(path, "w", newline="") as handle:
        handle.write(to_csv(table))
