"""Figure 9 — uop miss rate versus cache size, XBC versus TC.

The paper sweeps the uop budget (8K–64K in their setup; 2K–16K in the
scaled default, same ratio to working set) and finds the XBC's miss
rate — percent of uops brought from the IC — lower at every size, with
the *reduction* roughly stable at ~29%.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.tables import format_table
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import SimJob
from repro.frontend.config import FrontendConfig
from repro.harness.registry import TraceSpec, default_registry

#: Scaled default sweep (the paper's 8K/16K/32K/64K at ~1/4 scale).
DEFAULT_SIZES = (2048, 4096, 8192, 16384)


@dataclass
class Fig9Result:
    """Average miss rate per size for both structures."""

    sizes: List[int] = field(default_factory=list)
    tc_miss: Dict[int, float] = field(default_factory=dict)
    xbc_miss: Dict[int, float] = field(default_factory=dict)
    #: per-(size, trace) detail for the claims module
    detail: Dict[int, List[Dict[str, float]]] = field(default_factory=dict)

    def reduction(self, size: int) -> float:
        """Relative miss reduction of the XBC at one size."""
        tc = self.tc_miss[size]
        if tc == 0:
            return 0.0
        return 1.0 - self.xbc_miss[size] / tc


def run_fig9(
    specs: Optional[List[TraceSpec]] = None,
    sizes: Sequence[int] = DEFAULT_SIZES,
    fe_config: Optional[FrontendConfig] = None,
    policy: Optional[ExecPolicy] = None,
) -> Fig9Result:
    """Sweep the uop budget for both structures.

    Every (size, trace, structure) point is an independent
    :class:`SimJob` submitted through the execution engine, so the
    sweep parallelizes and caches per *policy*.
    """
    specs = specs if specs is not None else default_registry()
    fe = fe_config or FrontendConfig()
    jobs = [
        SimJob(frontend=kind, spec=spec, fe_config=fe, total_uops=size)
        for size in sizes
        for spec in specs
        for kind in ("tc", "xbc")
    ]
    outcomes = iter(execute_jobs(jobs, policy, label="fig9"))

    result = Fig9Result(sizes=list(sizes))
    for size in sizes:
        tc_rates: List[float] = []
        xbc_rates: List[float] = []
        detail: List[Dict[str, float]] = []
        for spec in specs:
            tc = next(outcomes).value
            xbc = next(outcomes).value
            tc_rates.append(tc.uop_miss_rate)
            xbc_rates.append(xbc.uop_miss_rate)
            detail.append(
                {
                    "trace": spec.name,  # type: ignore[dict-item]
                    "tc": tc.uop_miss_rate,
                    "xbc": xbc.uop_miss_rate,
                }
            )
        result.tc_miss[size] = sum(tc_rates) / len(tc_rates)
        result.xbc_miss[size] = sum(xbc_rates) / len(xbc_rates)
        result.detail[size] = detail
    return result


def format_fig9(result: Fig9Result) -> str:
    """Render the size sweep with the per-size reduction."""
    rows = []
    for size in result.sizes:
        rows.append(
            [
                size,
                result.tc_miss[size] * 100.0,
                result.xbc_miss[size] * 100.0,
                result.reduction(size) * 100.0,
            ]
        )
    return format_table(
        ["uop budget", "TC miss %", "XBC miss %", "reduction %"],
        rows,
        title=(
            "Figure 9 — uop miss rate vs cache size "
            "(paper: XBC reduces misses ~29% at every size)"
        ),
    )
