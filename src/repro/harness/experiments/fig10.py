"""Figure 10 — miss rate versus associativity.

The paper varies associativity at a fixed budget and sees the familiar
curve: direct-mapped → 2-way removes ~60% of misses, 2-way → 4-way a
smaller additional gain.  For the XBC "associativity" means ways per
bank (the two-dimensional way-bank structure of §3.2); for the TC it
is plain cache associativity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.common.tables import format_table
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import SimJob
from repro.frontend.config import FrontendConfig
from repro.harness.registry import TraceSpec, default_registry

DEFAULT_ASSOCS = (1, 2, 4)


@dataclass
class Fig10Result:
    """Average miss rate per associativity for both structures."""

    assocs: List[int] = field(default_factory=list)
    total_uops: int = 16384
    tc_miss: Dict[int, float] = field(default_factory=dict)
    xbc_miss: Dict[int, float] = field(default_factory=dict)

    def reduction_from_dm(self, structure: str, assoc: int) -> float:
        """Miss reduction relative to the direct-mapped point."""
        table = self.tc_miss if structure == "tc" else self.xbc_miss
        base = table[self.assocs[0]]
        if base == 0:
            return 0.0
        return 1.0 - table[assoc] / base


def run_fig10(
    specs: Optional[List[TraceSpec]] = None,
    assocs: Sequence[int] = DEFAULT_ASSOCS,
    total_uops: int = 16384,
    fe_config: Optional[FrontendConfig] = None,
    policy: Optional[ExecPolicy] = None,
) -> Fig10Result:
    """Sweep associativity at a fixed uop budget."""
    specs = specs if specs is not None else default_registry()
    fe = fe_config or FrontendConfig()
    jobs = [
        SimJob(
            frontend=kind, spec=spec, fe_config=fe,
            total_uops=total_uops, assoc=assoc,
        )
        for assoc in assocs
        for spec in specs
        for kind in ("tc", "xbc")
    ]
    outcomes = iter(execute_jobs(jobs, policy, label="fig10"))
    result = Fig10Result(assocs=list(assocs), total_uops=total_uops)
    for assoc in assocs:
        tc_rates: List[float] = []
        xbc_rates: List[float] = []
        for _spec in specs:
            tc_rates.append(next(outcomes).value.uop_miss_rate)
            xbc_rates.append(next(outcomes).value.uop_miss_rate)
        result.tc_miss[assoc] = sum(tc_rates) / len(tc_rates)
        result.xbc_miss[assoc] = sum(xbc_rates) / len(xbc_rates)
    return result


def format_fig10(result: Fig10Result) -> str:
    """Render the associativity sweep and the reductions from DM."""
    rows = []
    for assoc in result.assocs:
        rows.append(
            [
                assoc,
                result.tc_miss[assoc] * 100.0,
                result.xbc_miss[assoc] * 100.0,
                result.reduction_from_dm("tc", assoc) * 100.0,
                result.reduction_from_dm("xbc", assoc) * 100.0,
            ]
        )
    return format_table(
        ["assoc", "TC miss %", "XBC miss %", "TC red. from DM %", "XBC red. from DM %"],
        rows,
        title=(
            f"Figure 10 — miss rate vs associativity at "
            f"{result.total_uops}-uop budget "
            "(paper: DM→2-way removes ~60% of misses)"
        ),
    )
