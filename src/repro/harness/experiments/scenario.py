"""The widened XBC-vs-TC scenario matrix.

The paper's Table compares the structures on its three suites — all
XBC-friendly territory.  This experiment widens the matrix with the
server profile family (huge instruction footprints) and the minimized
fuzz findings (adversarial corners where the TC wins), putting the
boundary of the XBC's advantage on one table: uop hit rate for both
structures at an equal budget, per trace, with group means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.common.tables import format_table
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import SimJob
from repro.frontend.config import FrontendConfig
from repro.harness.registry import (
    TraceSpec,
    default_registry,
    server_registry,
)
from repro.scenario.findings import Finding
from repro.scenario.space import ParameterSpace


@dataclass
class ScenarioRow:
    """One scenario's hit rates under both structures."""

    name: str
    #: "suite" (paper registry), "server", or "finding".
    group: str
    tc_hit: float
    xbc_hit: float

    @property
    def delta(self) -> float:
        """XBC − TC uop hit rate (negative = inversion)."""
        return self.xbc_hit - self.tc_hit

    @property
    def inverted(self) -> bool:
        """True when the TC out-hits the XBC on this scenario."""
        return self.tc_hit > self.xbc_hit


def finding_spec(finding: Finding) -> TraceSpec:
    """The exact TraceSpec a finding's recipe denotes."""
    space = ParameterSpace.default(finding.base)
    profile, static_uops = space.build(finding.point, clamp=False)
    return TraceSpec(
        suite=f"fuzz-{finding.base}",
        index=0,
        seed=finding.program_seed,
        static_uops=static_uops,
        length_uops=finding.length_uops,
        profile=profile,
    )


def run_scenario_matrix(
    suite_specs: Optional[List[TraceSpec]] = None,
    server_specs: Optional[List[TraceSpec]] = None,
    findings: Sequence[Finding] = (),
    total_uops: int = 8192,
    fe_config: Optional[FrontendConfig] = None,
    policy: Optional[ExecPolicy] = None,
) -> List[ScenarioRow]:
    """Measure TC and XBC hit rates across the widened matrix.

    Passing an explicit empty list for *suite_specs*/*server_specs*
    drops that group; ``None`` means the default registry for it.
    """
    if suite_specs is None:
        suite_specs = default_registry()
    if server_specs is None:
        server_specs = server_registry()
    fe = fe_config or FrontendConfig()

    entries: List[tuple] = []
    for spec in suite_specs:
        entries.append((spec.name, "suite", spec))
    for spec in server_specs:
        entries.append((spec.name, "server", spec))
    for finding in findings:
        entries.append((f"finding-{finding.id[:8]}", "finding",
                        finding_spec(finding)))

    jobs = [
        SimJob(frontend=kind, spec=spec, fe_config=fe,
               total_uops=total_uops)
        for _, _, spec in entries
        for kind in ("tc", "xbc")
    ]
    outcomes = iter(execute_jobs(jobs, policy, label="scenario"))
    rows: List[ScenarioRow] = []
    for name, group, _ in entries:
        tc = next(outcomes).value
        xbc = next(outcomes).value
        rows.append(
            ScenarioRow(
                name=name,
                group=group,
                tc_hit=tc.uop_hit_rate,
                xbc_hit=xbc.uop_hit_rate,
            )
        )
    return rows


def _group_means(rows: List[ScenarioRow]) -> List[ScenarioRow]:
    means: List[ScenarioRow] = []
    for group in ("suite", "server", "finding"):
        members = [r for r in rows if r.group == group]
        if not members:
            continue
        means.append(
            ScenarioRow(
                name=f"MEAN:{group}",
                group=group,
                tc_hit=sum(r.tc_hit for r in members) / len(members),
                xbc_hit=sum(r.xbc_hit for r in members) / len(members),
            )
        )
    return means


def format_scenario_matrix(
    rows: List[ScenarioRow], total_uops: int = 8192
) -> str:
    """Render the matrix with per-group means and inversion flags."""
    table_rows = [
        [r.name, r.group, 100 * r.tc_hit, 100 * r.xbc_hit,
         100 * r.delta, "INVERSION" if r.inverted else ""]
        for r in rows + _group_means(rows)
    ]
    return format_table(
        ["scenario", "group", "TC hit %", "XBC hit %", "XBC-TC pp", ""],
        table_rows,
        title=(
            f"Scenario matrix — uop hit rate at {total_uops}-uop budget "
            "(paper suites / server family / fuzz findings)"
        ),
    )
