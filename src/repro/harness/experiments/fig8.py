"""Figure 8 — XBC versus TC uop bandwidth per trace.

The paper plots per-trace delivery-mode bandwidth at a 32K-uop budget
(scaled default here: 8K) with the renamer capping supply at 8
uops/cycle, and observes that "the difference between the XBC and TC
bandwidth is negligible" — the XBC's two-XB fetch matches the TC's
long lines at the same prediction bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.tables import format_table
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import SimJob
from repro.frontend.config import FrontendConfig
from repro.harness.registry import TraceSpec, default_registry


@dataclass
class Fig8Row:
    """One trace's bandwidth under both structures."""

    trace: str
    suite: str
    tc_bandwidth: float
    xbc_bandwidth: float
    tc_fetch: float
    xbc_fetch: float

    @property
    def ratio(self) -> float:
        """XBC / TC delivery bandwidth."""
        if self.tc_bandwidth == 0:
            return 0.0
        return self.xbc_bandwidth / self.tc_bandwidth


def run_fig8(
    specs: Optional[List[TraceSpec]] = None,
    total_uops: int = 8192,
    fe_config: Optional[FrontendConfig] = None,
    policy: Optional[ExecPolicy] = None,
) -> List[Fig8Row]:
    """Measure per-trace bandwidth for the TC and the XBC."""
    specs = specs if specs is not None else default_registry()
    fe = fe_config or FrontendConfig()
    jobs = [
        SimJob(frontend=kind, spec=spec, fe_config=fe, total_uops=total_uops)
        for spec in specs
        for kind in ("tc", "xbc")
    ]
    outcomes = iter(execute_jobs(jobs, policy, label="fig8"))
    rows: List[Fig8Row] = []
    for spec in specs:
        tc = next(outcomes).value
        xbc = next(outcomes).value
        rows.append(
            Fig8Row(
                trace=spec.name,
                suite=spec.suite,
                tc_bandwidth=tc.delivery_bandwidth,
                xbc_bandwidth=xbc.delivery_bandwidth,
                tc_fetch=tc.fetch_bandwidth,
                xbc_fetch=xbc.fetch_bandwidth,
            )
        )
    return rows


def format_fig8(rows: List[Fig8Row], total_uops: int = 8192) -> str:
    """Render the per-trace series plus the mean ratio."""
    table_rows = [
        [r.trace, r.tc_bandwidth, r.xbc_bandwidth, r.ratio]
        for r in rows
    ]
    mean_ratio = sum(r.ratio for r in rows) / len(rows) if rows else 0.0
    table_rows.append(["MEAN",
                       sum(r.tc_bandwidth for r in rows) / max(1, len(rows)),
                       sum(r.xbc_bandwidth for r in rows) / max(1, len(rows)),
                       mean_ratio])
    return format_table(
        ["trace", "TC uops/cyc", "XBC uops/cyc", "XBC/TC"],
        table_rows,
        title=(
            f"Figure 8 — delivery-mode bandwidth at {total_uops}-uop budget "
            "(paper: difference negligible)"
        ),
    )
