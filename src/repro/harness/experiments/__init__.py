"""One module per paper artifact.

- :mod:`repro.harness.experiments.fig1` — block-length distributions;
- :mod:`repro.harness.experiments.fig8` — XBC vs TC bandwidth per trace;
- :mod:`repro.harness.experiments.fig9` — miss rate vs cache size;
- :mod:`repro.harness.experiments.fig10` — miss rate vs associativity;
- :mod:`repro.harness.experiments.claims` — the §4/§5 in-text claims;
- :mod:`repro.harness.experiments.ablations` — §3 design alternatives;
- :mod:`repro.harness.experiments.scenario` — the widened XBC-vs-TC
  matrix (paper suites + server family + fuzz findings).

Each module exposes ``run_*`` returning a result object and
``format_*`` rendering the same rows/series the paper plots.
"""

from repro.harness.experiments.fig1 import run_fig1, format_fig1, Fig1Result
from repro.harness.experiments.fig8 import run_fig8, format_fig8, Fig8Row
from repro.harness.experiments.fig9 import run_fig9, format_fig9, Fig9Result
from repro.harness.experiments.fig10 import run_fig10, format_fig10, Fig10Result
from repro.harness.experiments.claims import run_claims, format_claims, ClaimsResult
from repro.harness.experiments.ablations import run_ablations, format_ablations, AblationRow
from repro.harness.experiments.scenario import (
    run_scenario_matrix,
    format_scenario_matrix,
    ScenarioRow,
)

__all__ = [
    "run_fig1", "format_fig1", "Fig1Result",
    "run_fig8", "format_fig8", "Fig8Row",
    "run_fig9", "format_fig9", "Fig9Result",
    "run_fig10", "format_fig10", "Fig10Result",
    "run_claims", "format_claims", "ClaimsResult",
    "run_ablations", "format_ablations", "AblationRow",
    "run_scenario_matrix", "format_scenario_matrix", "ScenarioRow",
]
