"""Ablations of the §3 design choices.

The paper motivates several mechanisms qualitatively; these runs
quantify each one against the full design at the default budget:

- branch promotion off (§3.8),
- set search off (§3.9 — XBTB-hit/XBC-miss becomes a build switch),
- dynamic placement off (§3.10 — conflicting lines are never moved),
- split-prefix overlap policy (§3.3's rejected alternative),
- bank-count alternatives (2×8 / 8×2 uop lines at the same 16-uop
  fetch width),
- single XB pointer per cycle (prediction bandwidth 1 instead of 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.common.tables import format_table
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import SimJob
from repro.frontend.config import FrontendConfig
from repro.harness.registry import TraceSpec, default_registry
from repro.xbc.config import XbcConfig


@dataclass
class AblationRow:
    """Averaged metrics for one configuration."""

    name: str
    miss_rate: float
    bandwidth: float
    fetch_bandwidth: float
    extras: Dict[str, float]


def _variants(total_uops: int) -> Dict[str, XbcConfig]:
    return {
        "baseline": XbcConfig(total_uops=total_uops),
        "no-promotion": XbcConfig(total_uops=total_uops, enable_promotion=False),
        "no-set-search": XbcConfig(total_uops=total_uops, enable_set_search=False),
        "no-dyn-placement": XbcConfig(
            total_uops=total_uops, enable_dynamic_placement=False
        ),
        "split-prefix": XbcConfig(total_uops=total_uops, overlap_policy="split"),
        "2x8-banks": XbcConfig(total_uops=total_uops, banks=2, line_uops=8),
        "8x2-banks": XbcConfig(total_uops=total_uops, banks=8, line_uops=2),
        "1-xb-per-cycle": XbcConfig(total_uops=total_uops, xbs_per_cycle=1),
        # promotion's bandwidth value shows where prediction bandwidth
        # binds: compare these two against each other.
        "1-xb-no-promotion": XbcConfig(
            total_uops=total_uops, xbs_per_cycle=1, enable_promotion=False
        ),
        "3-xb-per-cycle": XbcConfig(total_uops=total_uops, xbs_per_cycle=3),
    }


def run_ablations(
    specs: Optional[List[TraceSpec]] = None,
    total_uops: int = 8192,
    fe_config: Optional[FrontendConfig] = None,
    variants: Optional[Dict[str, XbcConfig]] = None,
    policy: Optional[ExecPolicy] = None,
) -> List[AblationRow]:
    """Run every variant over the registry, averaging the key metrics."""
    specs = specs if specs is not None else default_registry()
    fe = fe_config or FrontendConfig()
    variant_map = variants or _variants(total_uops)
    jobs = [
        SimJob(frontend="xbc", spec=spec, fe_config=fe, xbc_config=config)
        for config in variant_map.values()
        for spec in specs
    ]
    outcomes = iter(execute_jobs(jobs, policy, label="ablations"))
    rows: List[AblationRow] = []
    for name, config in variant_map.items():
        miss = bw = fbw = 0.0
        extra_sums: Dict[str, float] = {}
        for _spec in specs:
            stats = next(outcomes).value
            miss += stats.uop_miss_rate
            bw += stats.delivery_bandwidth
            fbw += stats.fetch_bandwidth
            for key in ("promotions", "set_search_hits", "bank_conflict_deferrals"):
                extra_sums[key] = extra_sums.get(key, 0.0) + stats.extra.get(key, 0)
        count = len(specs)
        rows.append(
            AblationRow(
                name=name,
                miss_rate=miss / count,
                bandwidth=bw / count,
                fetch_bandwidth=fbw / count,
                extras={k: v / count for k, v in extra_sums.items()},
            )
        )
    return rows


def format_ablations(rows: List[AblationRow]) -> str:
    """Render all variants against the baseline."""
    baseline = rows[0].miss_rate if rows else 0.0
    table_rows = []
    for row in rows:
        delta = (
            (row.miss_rate - baseline) / baseline * 100.0 if baseline else 0.0
        )
        table_rows.append(
            [
                row.name,
                row.miss_rate * 100.0,
                f"{delta:+.1f}",
                row.bandwidth,
                row.fetch_bandwidth,
            ]
        )
    return format_table(
        ["variant", "miss %", "Δmiss vs base %", "uops/cyc", "uops/fetch"],
        table_rows,
        title="XBC design-choice ablations (§3.3/§3.8/§3.9/§3.10)",
    )
