"""The §4/§5 in-text claims, computed from the same sweeps as Figure 9.

- **T2**: "the reduction in the number of misses is ~29% for all cache
  sizes" — i.e. the XBC's relative miss reduction is roughly
  size-independent.
- **T3**: "In order to match the XBC hit rate, the TC should be
  enlarged by more than 50%" — found here by locating, via the size
  sweep (log-linear interpolation), the TC capacity whose miss rate
  equals the XBC's at the reference budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.exec.engine import ExecPolicy
from repro.frontend.config import FrontendConfig
from repro.harness.experiments.fig9 import Fig9Result, run_fig9
from repro.harness.registry import TraceSpec, default_registry


@dataclass
class ClaimsResult:
    """Measured counterparts of the paper's in-text claims."""

    fig9: Fig9Result = None  # type: ignore[assignment]
    reference_size: int = 8192
    #: per-size XBC miss reduction (T2)
    reductions: List[float] = field(default_factory=list)
    #: TC capacity (uops) needed to match the XBC at the reference size (T3)
    tc_equivalent_size: float = 0.0

    @property
    def tc_enlargement(self) -> float:
        """Fractional TC enlargement needed to match the XBC hit rate."""
        if self.reference_size == 0:
            return 0.0
        return self.tc_equivalent_size / self.reference_size - 1.0

    @property
    def reduction_spread(self) -> float:
        """Max-min spread of the per-size reduction (stability of T2)."""
        if not self.reductions:
            return 0.0
        return max(self.reductions) - min(self.reductions)


def _interpolate_size(
    sizes: Sequence[int], misses: Sequence[float], target: float
) -> float:
    """Size at which the miss curve crosses *target* (log-linear)."""
    for i in range(len(sizes) - 1):
        hi, lo = misses[i], misses[i + 1]
        if lo <= target <= hi:
            if hi == lo:
                return float(sizes[i])
            frac = (math.log(max(hi, 1e-12)) - math.log(max(target, 1e-12))) / (
                math.log(max(hi, 1e-12)) - math.log(max(lo, 1e-12))
            )
            return float(
                sizes[i] * (sizes[i + 1] / sizes[i]) ** frac
            )
    # Target below the last point: extrapolate one octave conservatively.
    if misses[-1] > target:
        return float(sizes[-1] * 2)
    return float(sizes[-1])


def run_claims(
    specs: Optional[List[TraceSpec]] = None,
    sizes: Sequence[int] = (2048, 4096, 8192, 16384),
    reference_size: int = 8192,
    fe_config: Optional[FrontendConfig] = None,
    fig9: Optional[Fig9Result] = None,
    policy: Optional[ExecPolicy] = None,
) -> ClaimsResult:
    """Evaluate T2 and T3 (reusing a Figure-9 sweep when provided)."""
    specs = specs if specs is not None else default_registry()
    if fig9 is None:
        fig9 = run_fig9(specs, sizes, fe_config, policy=policy)
    result = ClaimsResult(fig9=fig9, reference_size=reference_size)
    result.reductions = [fig9.reduction(size) for size in fig9.sizes]

    target = fig9.xbc_miss[reference_size]
    tc_curve = [fig9.tc_miss[size] for size in fig9.sizes]
    result.tc_equivalent_size = _interpolate_size(
        fig9.sizes, tc_curve, target
    )
    return result


def format_claims(result: ClaimsResult) -> str:
    """Render T2/T3 with the paper's statements for comparison."""
    lines = ["§4/§5 in-text claims"]
    per_size = ", ".join(
        f"{size}: {red*100:.1f}%"
        for size, red in zip(result.fig9.sizes, result.reductions)
    )
    lines.append(
        f"T2 miss reduction per size -> {per_size} "
        f"(spread {result.reduction_spread*100:.1f} points; "
        "paper: ~29% at every size)"
    )
    lines.append(
        f"T3 TC capacity matching XBC@{result.reference_size}: "
        f"{result.tc_equivalent_size:.0f} uops = "
        f"+{result.tc_enlargement*100:.0f}% "
        "(paper: more than +50%)"
    )
    return "\n".join(lines)
