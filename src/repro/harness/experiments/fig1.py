"""Figure 1 — length distribution of the four block definitions.

Paper values (all ≤ 16 uops): basic block 7.7, XB 8.0, XB with
promotion 10.0, dual XB 12.7 average uops (§3.1; §3.2 quotes 8.5 for
the average XB including prefix extension).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.tables import format_table
from repro.exec.engine import ExecPolicy, execute_jobs
from repro.exec.job import BlockStatsJob
from repro.harness.registry import TraceSpec, default_registry
from repro.trace.blockstats import BlockLengthStats

#: The averages the paper reports, for side-by-side printing.
PAPER_MEANS: Dict[str, float] = {
    "basic block": 7.7,
    "XB": 8.0,
    "XB w/ promotion": 10.0,
    "dual XB": 12.7,
}


@dataclass
class Fig1Result:
    """Per-suite and overall block-length statistics."""

    per_suite: Dict[str, BlockLengthStats] = field(default_factory=dict)
    overall: BlockLengthStats = field(default_factory=BlockLengthStats)


def run_fig1(
    specs: Optional[List[TraceSpec]] = None,
    policy: Optional[ExecPolicy] = None,
) -> Fig1Result:
    """Compute the Figure-1 distributions over the registry traces."""
    specs = specs if specs is not None else default_registry()
    jobs = [BlockStatsJob(spec=spec) for spec in specs]
    outcomes = execute_jobs(jobs, policy, label="fig1")
    result = Fig1Result()
    for spec, outcome in zip(specs, outcomes):
        stats = outcome.value
        if spec.suite in result.per_suite:
            result.per_suite[spec.suite] = result.per_suite[spec.suite].merged_with(stats)
        else:
            result.per_suite[spec.suite] = stats
        result.overall = result.overall.merged_with(stats)
    return result


def format_fig1(result: Fig1Result, histograms: bool = False) -> str:
    """Render mean lengths per suite plus the paper's values."""
    series = list(PAPER_MEANS)
    rows = []
    for suite, stats in sorted(result.per_suite.items()):
        means = stats.means()
        rows.append([suite] + [means[s] for s in series])
    overall = result.overall.means()
    rows.append(["ALL"] + [overall[s] for s in series])
    rows.append(["paper"] + [PAPER_MEANS[s] for s in series])
    out = format_table(
        ["suite"] + series,
        rows,
        title="Figure 1 — average block length (uops, quota 16)",
    )
    if histograms:
        parts = [out, ""]
        for name, hist in (
            ("basic block", result.overall.basic_block),
            ("XB", result.overall.xb),
            ("XB w/ promotion", result.overall.xb_promoted),
            ("dual XB", result.overall.dual_xb),
        ):
            parts.append(hist.render(label=f"-- {name} length distribution --"))
            parts.append("")
        out = "\n".join(parts)
    return out
