"""Job types the execution engine schedules.

A *job* is one independent unit of simulation work: small enough to
fan out over worker processes, self-describing enough to be cached.
The engine only relies on the informal protocol below, so tests (and
future experiment kinds) can add job types freely:

- ``execute()`` — do the work, return the result object;
- ``key_payload()`` — stable, JSON-able identity for caching, or
  ``None`` for uncacheable jobs;
- ``encode_result(result)`` / ``decode_result(payload)`` — convert the
  result to/from plain JSON data (must round-trip exactly, since both
  worker returns and cache hits travel through this encoding);
- ``describe()`` — compact parameter dict for the run manifest.

:class:`SimJob` covers every figure/claims/ablation/sweep point (one
frontend, one trace spec, one config); :class:`BlockStatsJob` covers
the Figure-1 trace statistics, which run no frontend at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from repro.common.histogram import Histogram
from repro.frontend.config import FrontendConfig
from repro.frontend.decoded_cache import DcConfig
from repro.frontend.metrics import FrontendStats
from repro.bbtc.config import BbtcConfig
from repro.tc.config import TcConfig
from repro.trace.blockstats import (
    BlockLengthStats,
    PROMOTION_BIAS,
    compute_block_stats,
)
from repro.xbc.config import XbcConfig

if TYPE_CHECKING:  # harness imports this module; avoid the cycle
    from repro.harness.registry import TraceSpec


@dataclass(frozen=True)
class SimJob:
    """One frontend simulation: (frontend kind, trace spec, config)."""

    frontend: str
    spec: TraceSpec
    fe_config: FrontendConfig = field(default_factory=FrontendConfig)
    total_uops: int = 8192
    assoc: int = 0
    xbc_config: Optional[XbcConfig] = None
    tc_config: Optional[TcConfig] = None
    bbtc_config: Optional[BbtcConfig] = None
    dc_config: Optional[DcConfig] = None

    def execute(self) -> FrontendStats:
        """Generate (or load) the trace and run the frontend on it."""
        from repro.harness.registry import make_trace
        from repro.harness.runner import run_frontend

        trace = make_trace(self.spec)
        return run_frontend(
            self.frontend,
            trace,
            self.fe_config,
            total_uops=self.total_uops,
            assoc=self.assoc,
            xbc_config=self.xbc_config,
            tc_config=self.tc_config,
            bbtc_config=self.bbtc_config,
            dc_config=self.dc_config,
        )

    def key_payload(self) -> Dict[str, Any]:
        """Everything the result depends on, in stable form."""
        return {
            "kind": "sim",
            "frontend": self.frontend,
            "spec": self.spec,
            "fe_config": self.fe_config,
            "total_uops": self.total_uops,
            "assoc": self.assoc,
            "xbc_config": self.xbc_config,
            "tc_config": self.tc_config,
            "bbtc_config": self.bbtc_config,
            "dc_config": self.dc_config,
        }

    @staticmethod
    def encode_result(result: FrontendStats) -> Dict[str, Any]:
        """Flatten :class:`FrontendStats` to JSON data (all-int fields)."""
        import dataclasses

        return dataclasses.asdict(result)

    @staticmethod
    def decode_result(payload: Dict[str, Any]) -> FrontendStats:
        """Rebuild :class:`FrontendStats` from :meth:`encode_result`."""
        return FrontendStats(**payload)

    def describe(self) -> Dict[str, Any]:
        """Manifest parameters; custom configs flagged by class name."""
        params: Dict[str, Any] = {
            "job": "sim",
            "frontend": self.frontend,
            "trace": self.spec.name,
            "length_uops": self.spec.length_uops,
            "total_uops": self.total_uops,
        }
        if self.assoc:
            params["assoc"] = self.assoc
        for name in ("xbc_config", "tc_config", "bbtc_config", "dc_config"):
            value = getattr(self, name)
            if value is not None:
                params[name] = type(value).__name__
        return params


def _encode_histogram(histogram: Histogram) -> List[List[int]]:
    return [[value, count] for value, count in histogram.items()]


def _decode_histogram(items: List[List[int]]) -> Histogram:
    histogram = Histogram()
    for value, count in items:
        histogram.add(int(value), int(count))
    return histogram


@dataclass(frozen=True)
class BlockStatsJob:
    """Figure-1 block-length statistics for one trace spec."""

    spec: TraceSpec
    promotion_threshold: float = PROMOTION_BIAS

    def execute(self) -> BlockLengthStats:
        """Compute the four Figure-1 distributions for the trace."""
        from repro.harness.registry import make_trace

        return compute_block_stats(
            make_trace(self.spec), promotion_threshold=self.promotion_threshold
        )

    def key_payload(self) -> Dict[str, Any]:
        """Stable identity: spec plus the promotion threshold."""
        return {
            "kind": "blockstats",
            "spec": self.spec,
            "promotion_threshold": self.promotion_threshold,
        }

    @staticmethod
    def encode_result(result: BlockLengthStats) -> Dict[str, Any]:
        """Flatten the four histograms to ``[value, count]`` pairs."""
        return {
            "basic_block": _encode_histogram(result.basic_block),
            "xb": _encode_histogram(result.xb),
            "xb_promoted": _encode_histogram(result.xb_promoted),
            "dual_xb": _encode_histogram(result.dual_xb),
        }

    @staticmethod
    def decode_result(payload: Dict[str, Any]) -> BlockLengthStats:
        """Rebuild :class:`BlockLengthStats` from :meth:`encode_result`."""
        return BlockLengthStats(
            basic_block=_decode_histogram(payload["basic_block"]),
            xb=_decode_histogram(payload["xb"]),
            xb_promoted=_decode_histogram(payload["xb_promoted"]),
            dual_xb=_decode_histogram(payload["dual_xb"]),
        )

    def describe(self) -> Dict[str, Any]:
        """Manifest parameters for a block-stats job."""
        return {
            "job": "blockstats",
            "trace": self.spec.name,
            "length_uops": self.spec.length_uops,
        }
