"""Parallel experiment execution with persistent caching.

The ``repro.exec`` subsystem turns any experiment or sweep into a list
of independent jobs and runs them through one engine:

- :mod:`repro.exec.job` — :class:`SimJob` (one frontend × one trace
  spec × one config) and :class:`BlockStatsJob` (Figure-1 statistics);
- :mod:`repro.exec.engine` — :class:`ExecutionEngine` /
  :func:`execute_jobs`: process-pool fan-out, per-job timeouts, retry
  with backoff, graceful serial fallback;
- :mod:`repro.exec.cache` — content-addressed on-disk stores for
  traces and results (``~/.cache/repro`` by default);
- :mod:`repro.exec.manifest` — structured JSON run manifests;
- :mod:`repro.exec.hashing` — the stable hashing the cache keys use.

Typical use::

    from repro.exec import ExecPolicy, SimJob, execute_jobs
    from repro.harness.registry import default_registry

    jobs = [SimJob("xbc", spec, total_uops=8192)
            for spec in default_registry()]
    policy = ExecPolicy(workers=4, use_cache=True)
    stats = [r.value for r in execute_jobs(jobs, policy, label="demo")]

See ``docs/execution.md`` for the job model, cache layout and manifest
schema.
"""

from repro.exec.cache import (
    CLAIM_TTL_SECONDS,
    Claims,
    DiskCacheStats,
    PruneReport,
    ResultCache,
    StoreStats,
    TraceStore,
    default_cache_dir,
    disk_cache_stats,
    prune_cache,
)
from repro.exec.engine import (
    ExecPolicy,
    ExecutionEngine,
    JobResult,
    JobTimeout,
    execute_jobs,
    job_key,
)
from repro.exec.hashing import CODE_VERSION, stable_hash, versioned_key
from repro.exec.job import BlockStatsJob, SimJob
from repro.exec.manifest import JobRecord, RunManifest

__all__ = [
    "BlockStatsJob",
    "CLAIM_TTL_SECONDS",
    "CODE_VERSION",
    "Claims",
    "DiskCacheStats",
    "ExecPolicy",
    "ExecutionEngine",
    "JobRecord",
    "JobResult",
    "JobTimeout",
    "PruneReport",
    "ResultCache",
    "RunManifest",
    "SimJob",
    "StoreStats",
    "TraceStore",
    "default_cache_dir",
    "disk_cache_stats",
    "execute_jobs",
    "job_key",
    "prune_cache",
    "stable_hash",
    "versioned_key",
]
