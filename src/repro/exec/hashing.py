"""Stable content hashing for cache keys.

A cache key must be identical across processes, Python versions and
machines for the same logical work item, so everything is normalized
to a canonical JSON document (sorted keys, no whitespace) before being
fed to SHA-256.  ``hash()`` and ``repr()`` are never used — both can
vary per interpreter invocation (``PYTHONHASHSEED``, object ids).

Keys incorporate :data:`CODE_VERSION` so a release that changes model
behaviour invalidates every cached result instead of silently serving
stale numbers.  Bump :data:`RESULT_SCHEMA` when the *serialization* of
results changes without a package-version bump.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

from repro import __version__

#: Schema generation of the cached result/trace payloads.  Bump on any
#: change to how results are encoded or how simulations behave when the
#: package version stays the same (e.g. during development).
#: 3: TraceSpec grew the optional embedded ``profile`` (fuzz candidates),
#: which changes every spec's canonical form.
RESULT_SCHEMA = 3

#: Version string folded into every cache key.
CODE_VERSION = f"{__version__}+schema{RESULT_SCHEMA}"


def jsonable(value: Any) -> Any:
    """Normalize *value* into plain JSON-encodable data.

    Dataclasses become ``{"__class__": name, ...fields}`` so two config
    types with coincidentally equal fields never collide; enums use
    their value; tuples become lists.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        payload = {"__class__": type(value).__name__}
        for field in dataclasses.fields(value):
            payload[field.name] = jsonable(getattr(value, field.name))
        return payload
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"cannot build a stable hash payload from {type(value)!r}")


def canonical_json(payload: Any) -> str:
    """Render *payload* as canonical JSON (sorted keys, tight separators)."""
    return json.dumps(
        jsonable(payload), sort_keys=True, separators=(",", ":")
    )


def stable_hash(payload: Any) -> str:
    """24-hex-digit SHA-256 prefix of the canonical form of *payload*."""
    digest = hashlib.sha256(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()[:24]


def versioned_key(payload: Any) -> str:
    """Like :func:`stable_hash` but folding in :data:`CODE_VERSION`."""
    return stable_hash({"version": CODE_VERSION, "payload": payload})
