"""The parallel job-execution engine.

:class:`ExecutionEngine` takes a list of jobs (see
:mod:`repro.exec.job`) and runs them under an :class:`ExecPolicy`:

1. **cache resolution** — jobs whose result key is already in the
   persistent store are answered immediately, without a worker; with
   ``policy.coordinate`` the remaining misses are claimed via
   :class:`~repro.exec.cache.Claims` first, and keys another process
   already claimed are *waited for* instead of recomputed (stale or
   abandoned claims are taken over);
2. **fan-out** — remaining jobs go to a ``ProcessPoolExecutor`` with
   ``policy.workers`` processes (``workers <= 1`` runs inline), each
   worker optionally enforcing a per-job wall-clock timeout via
   ``SIGALRM``;
3. **retry with backoff** — failed jobs are resubmitted up to
   ``policy.max_attempts`` times with exponential backoff; a broken
   pool (killed worker, sandboxed fork) degrades the run to serial
   execution instead of aborting it;
4. **manifest** — every run yields a :class:`RunManifest`; with
   caching enabled it is persisted under ``<cache>/manifests/``.

Results come back in submission order, and cached, serial and parallel
execution all route results through the same encode/decode pair — so a
sweep averaged from any mix of the three is bit-identical.
"""

from __future__ import annotations

import os
import signal
import sys
import threading
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.common.errors import ExecutionError
from repro.exec.cache import (
    CLAIM_TTL_SECONDS,
    Claims,
    ResultCache,
    TraceStore,
    default_cache_dir,
)
from repro.exec.hashing import versioned_key
from repro.exec.manifest import JobRecord, RunManifest, new_run_id

#: Observer callback signature: called with one event dict per job
#: transition.  Events: ``cached`` (served from the result cache),
#: ``running`` (submitted for an attempt), ``done`` (attempt
#: succeeded), ``failed`` (attempt failed; ``final`` tells whether a
#: retry will follow).  Every event carries ``index`` and ``key``.
Observer = Callable[[Dict[str, Any]], None]


def job_key(job) -> Optional[str]:
    """Public cache/identity key for *job* (``None`` if uncacheable).

    This is the key the engine caches under and the serve layer
    coalesces on, exposed so other layers can compute it without an
    engine instance.
    """
    payload = job.key_payload()
    if payload is None:
        return None
    return versioned_key(payload)


@dataclass(frozen=True)
class ExecPolicy:
    """How an engine run schedules, caches and retries its jobs."""

    #: worker processes; <= 1 executes inline in this process.
    workers: int = 1
    #: consult/populate the persistent trace+result cache.
    use_cache: bool = False
    #: cache root; ``None`` resolves to :func:`default_cache_dir`.
    cache_dir: Optional[str] = None
    #: per-job wall-clock timeout in seconds (``None`` = unlimited).
    timeout: Optional[float] = None
    #: total tries per job (1 = no retry).
    max_attempts: int = 3
    #: base of the exponential retry backoff, in seconds.
    backoff: float = 0.5
    #: live progress + summary on stderr.
    progress: bool = False
    #: manifest output directory; defaults to ``<cache>/manifests``
    #: when caching is enabled, else manifests stay in memory only.
    manifest_dir: Optional[str] = None
    #: cross-process claim coordination on the shared cache: claim a
    #: key before computing it and wait for (rather than recompute) a
    #: key another process has claimed.  For concurrent engines
    #: sharing one cache root (serve-mode worker shards); needs
    #: ``use_cache``.
    coordinate: bool = False

    def resolved_cache_dir(self) -> str:
        """The cache root this policy would use."""
        return self.cache_dir or default_cache_dir()


class JobTimeout(Exception):
    """Raised inside a worker when a job overruns ``policy.timeout``."""


class JobResult:
    """One job's outcome as returned to the caller.

    ``error`` is the empty string on success; under ``strict=False``
    a job that exhausted its retries comes back with ``value=None``
    and ``error`` holding the last failure text.
    """

    __slots__ = (
        "job", "value", "cached", "attempts", "wall_time", "worker", "error"
    )

    def __init__(self, job, value, cached, attempts, wall_time, worker,
                 error=""):
        self.job = job
        self.value = value
        self.cached = cached
        self.attempts = attempts
        self.wall_time = wall_time
        self.worker = worker
        self.error = error

    @property
    def ok(self) -> bool:
        """Whether the job produced a value."""
        return not self.error


def _alarm_handler(signum, frame):  # pragma: no cover - fires via signal
    raise JobTimeout("job exceeded its wall-clock timeout")


def _timeout_armable() -> bool:
    """SIGALRM-based timeouts need POSIX and the main thread."""
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _run_job(job, timeout: Optional[float]) -> Dict[str, Any]:
    """Execute one job; never raises (failures become payload fields).

    Used identically for the inline path and as the function submitted
    to pool workers, so both produce encoded payloads and both survive
    arbitrary job exceptions without poisoning the pool.
    """
    armed = bool(timeout) and _timeout_armable()
    start = time.perf_counter()
    previous = None
    try:
        if armed:
            previous = signal.signal(signal.SIGALRM, _alarm_handler)
            signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            value = job.execute()
            payload = job.encode_result(value)
        finally:
            if armed:
                signal.setitimer(signal.ITIMER_REAL, 0)
                signal.signal(signal.SIGALRM, previous)
        return {
            "ok": True,
            "payload": payload,
            "wall": time.perf_counter() - start,
            "pid": os.getpid(),
        }
    except JobTimeout as exc:
        return {
            "ok": False,
            "timeout": True,
            "error": f"JobTimeout: {exc}",
            "wall": time.perf_counter() - start,
            "pid": os.getpid(),
        }
    except Exception as exc:
        return {
            "ok": False,
            "timeout": False,
            "error": f"{type(exc).__name__}: {exc}",
            "wall": time.perf_counter() - start,
            "pid": os.getpid(),
        }


def _notify(observer: Optional[Observer], **event: Any) -> None:
    """Deliver one event to *observer*; reporting must never fail a run."""
    if observer is None:
        return
    try:
        observer(event)
    except Exception:
        pass


def _worker_init(cache_dir: Optional[str]) -> None:
    """Pool initializer: point workers at the persistent trace store."""
    # Imported here (not at module level): the harness package imports
    # this module, so a top-level registry import would be circular.
    from repro.harness import registry

    if cache_dir:
        try:
            registry.set_trace_store(TraceStore(cache_dir))
        except OSError:  # unwritable cache dir: generate without persisting
            registry.set_trace_store(None)


class _Progress:
    """A single ``\\r``-rewritten status line on stderr (TTY only)."""

    def __init__(self, total: int, enabled: bool, label: str) -> None:
        self.total = total
        self.label = label
        self.enabled = enabled and sys.stderr.isatty()
        self.done = 0
        self.cached = 0
        self.failed = 0

    def update(self, done: int = 0, cached: int = 0, failed: int = 0) -> None:
        self.done += done
        self.cached += cached
        self.failed += failed
        if not self.enabled:
            return
        tag = f"exec:{self.label}" if self.label else "exec"
        line = (
            f"\r[{tag}] {self.done}/{self.total} jobs "
            f"({self.cached} cached, {self.failed} failed)"
        )
        sys.stderr.write(line)
        sys.stderr.flush()

    def finish(self) -> None:
        if self.enabled:
            sys.stderr.write("\n")
            sys.stderr.flush()


class ExecutionEngine:
    """Schedules jobs per an :class:`ExecPolicy`; see module docs."""

    def __init__(self, policy: Optional[ExecPolicy] = None) -> None:
        self.policy = policy or ExecPolicy()
        self.last_manifest: Optional[RunManifest] = None
        self.last_manifest_path: Optional[str] = None
        self._serial_fallback = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Sequence[Any],
        label: str = "",
        observer: Optional[Observer] = None,
        strict: bool = True,
    ) -> List[JobResult]:
        """Execute *jobs*, returning results in submission order.

        With ``strict=True`` (the default) an
        :class:`~repro.common.errors.ExecutionError` is raised if any
        job still fails after ``policy.max_attempts`` tries; the
        manifest (including the failures) is finalized first.  With
        ``strict=False`` failed jobs instead come back as
        :class:`JobResult` objects with ``value=None`` and ``error``
        set, so batch callers (the serve scheduler) keep the healthy
        results.

        *observer*, when given, receives one event dict per job
        transition (see :data:`Observer`); observer exceptions are
        swallowed so progress reporting can never fail a run.
        """
        from repro.harness import registry  # circular at module level

        policy = self.policy
        manifest = RunManifest(
            run_id=new_run_id(label),
            label=label,
            workers=policy.workers,
            use_cache=policy.use_cache,
            started=time.time(),
        )
        result_cache, trace_store = self._open_cache(manifest)
        progress = _Progress(len(jobs), policy.progress, label)

        keys = [self._key_for(job, index) for index, job in enumerate(jobs)]
        records = [
            JobRecord(index=index, job_id=keys[index],
                      params=job.describe())
            for index, job in enumerate(jobs)
        ]
        manifest.jobs = records
        results: List[Optional[JobResult]] = [None] * len(jobs)

        previous_store = registry.set_trace_store(trace_store)
        claims: Optional[Claims] = None
        held: set = set()
        if policy.coordinate and result_cache is not None:
            try:
                claims = Claims(result_cache.root)
            except OSError:
                claims = None  # unusable claims dir: claim-free operation
        try:
            pending = self._resolve_cached(
                jobs, keys, records, results, result_cache, progress,
                observer,
            )
            waiting: List[int] = []
            if claims is not None:
                pending, waiting = self._partition_claims(
                    jobs, keys, pending, claims, held
                )
            pending = self._attempt_rounds(
                jobs, keys, records, results, pending, result_cache,
                claims, held, progress, observer,
            )
            if waiting:
                takeover = self._await_foreign(
                    jobs, keys, records, results, waiting, result_cache,
                    claims, held, progress, observer,
                )
                pending += self._attempt_rounds(
                    jobs, keys, records, results, takeover, result_cache,
                    claims, held, progress, observer,
                )
        finally:
            if claims is not None:
                for key in held:
                    claims.release(key)
            registry.set_trace_store(previous_store)
            progress.finish()
            manifest.finished = time.time()
            self.last_manifest = manifest
            self.last_manifest_path = self._write_manifest(manifest)
            if policy.progress:
                print(manifest.summary(), file=sys.stderr)
                if self.last_manifest_path:
                    print(
                        f"[manifest] {self.last_manifest_path}",
                        file=sys.stderr,
                    )

        if pending:
            if strict:
                details = "; ".join(
                    f"{records[i].job_id}: {records[i].error}"
                    for i in pending[:5]
                )
                raise ExecutionError(
                    f"{len(pending)} job(s) failed after "
                    f"{policy.max_attempts} attempt(s): {details}"
                )
            for index in pending:
                results[index] = JobResult(
                    job=jobs[index], value=None, cached=False,
                    attempts=records[index].attempts,
                    wall_time=records[index].wall_time,
                    worker=records[index].worker,
                    error=records[index].error or "job failed",
                )
        return [result for result in results if result is not None]

    async def run_async(
        self,
        jobs: Sequence[Any],
        label: str = "",
        observer: Optional[Observer] = None,
        strict: bool = True,
    ) -> List[JobResult]:
        """:meth:`run` on a worker thread, awaitable from asyncio code.

        The engine's blocking machinery (process pools, retries, cache
        I/O) runs off the event loop; *observer* is invoked on the
        worker thread, so asyncio callers must trampoline events back
        with ``loop.call_soon_threadsafe``.
        """
        import asyncio
        import functools

        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            None,
            functools.partial(
                self.run, jobs, label=label, observer=observer, strict=strict
            ),
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _key_for(self, job, index: int) -> str:
        key = job_key(job)
        if key is None:
            return f"uncached-{index}"
        return key

    def _open_cache(self, manifest: RunManifest):
        """Build cache handles, degrading to no-cache on unusable dirs."""
        if not self.policy.use_cache:
            return None, None
        root = self.policy.resolved_cache_dir()
        try:
            result_cache = ResultCache(root)
            trace_store = TraceStore(root)
        except OSError as exc:
            print(
                f"[exec] cache dir {root!r} unusable ({exc}); "
                "continuing without cache",
                file=sys.stderr,
            )
            return None, None
        manifest.cache_dir = root
        return result_cache, trace_store

    def _resolve_cached(
        self, jobs, keys, records, results, result_cache, progress,
        observer=None,
    ) -> List[int]:
        """Answer cache hits in-place; return the missing job indexes."""
        pending: List[int] = []
        for index, job in enumerate(jobs):
            payload = None
            if result_cache is not None and job.key_payload() is not None:
                payload = result_cache.get(keys[index])
            if payload is None:
                pending.append(index)
                continue
            try:
                value = job.decode_result(payload)
            except Exception:
                # Stale/incompatible entry: treat as a miss.
                pending.append(index)
                continue
            records[index].status = "cached"
            records[index].cached = True
            results[index] = JobResult(
                job=job, value=value, cached=True,
                attempts=0, wall_time=0.0, worker=0,
            )
            progress.update(done=1, cached=1)
            _notify(observer, event="cached", index=index, key=keys[index])
        return pending

    def _attempt_rounds(
        self, jobs, keys, records, results, pending, result_cache,
        claims, held, progress, observer,
    ) -> List[int]:
        """Run the retry/backoff attempt loop over *pending* indexes.

        Returns the indexes that still failed after ``max_attempts``.
        A held claim is released as soon as its result lands in the
        cache, so foreign waiters unblock without waiting for the
        whole batch.
        """
        policy = self.policy
        attempt = 1
        while pending and attempt <= policy.max_attempts:
            failures: List[int] = []
            for index in pending:
                _notify(observer, event="running", index=index,
                        key=keys[index], attempt=attempt)
            for index, outcome in self._run_batch(jobs, pending, progress):
                record = records[index]
                record.attempts = attempt
                record.wall_time = outcome["wall"]
                record.worker = outcome["pid"]
                if outcome["ok"]:
                    record.status = "ok"
                    record.error = ""
                    value = jobs[index].decode_result(outcome["payload"])
                    results[index] = JobResult(
                        job=jobs[index], value=value, cached=False,
                        attempts=attempt, wall_time=outcome["wall"],
                        worker=outcome["pid"],
                    )
                    if result_cache and jobs[index].key_payload() is not None:
                        result_cache.put(
                            keys[index], outcome["payload"],
                            meta=record.params,
                        )
                        if claims is not None and keys[index] in held:
                            claims.release(keys[index])
                            held.discard(keys[index])
                    _notify(observer, event="done", index=index,
                            key=keys[index], attempt=attempt,
                            wall=outcome["wall"])
                else:
                    record.status = (
                        "timeout" if outcome.get("timeout") else "failed"
                    )
                    record.error = outcome["error"]
                    failures.append(index)
                    _notify(observer, event="failed", index=index,
                            key=keys[index], attempt=attempt,
                            error=outcome["error"],
                            timeout=bool(outcome.get("timeout")),
                            final=attempt >= policy.max_attempts)
            pending = failures
            if pending and attempt < policy.max_attempts:
                time.sleep(policy.backoff * (2 ** (attempt - 1)))
            attempt += 1
        return pending

    def _partition_claims(
        self, jobs, keys, pending, claims: Claims, held,
    ):
        """Split cache misses into claim-owned and foreign-claimed.

        Owned indexes (claim acquired here, plus uncacheable jobs and
        duplicates of an owned key) are computed by this run; the rest
        are under a live foreign claim and handed to
        :meth:`_await_foreign`.  Acquired keys land in *held* so the
        caller can release them whatever happens.
        """
        owned: List[int] = []
        waiting: List[int] = []
        for index in pending:
            if jobs[index].key_payload() is None:
                owned.append(index)
                continue
            key = keys[index]
            if key in held or claims.acquire(key):
                held.add(key)
                owned.append(index)
            else:
                waiting.append(index)
        return owned, waiting

    def _await_foreign(
        self, jobs, keys, records, results, waiting, result_cache,
        claims: Claims, held, progress, observer,
    ) -> List[int]:
        """Wait for foreign-claimed keys; return indexes to compute here.

        Each waiting index resolves the moment its result entry
        appears (recorded as a cache hit — another process did the
        work).  If the foreign claim goes stale or is released without
        a result (holder failed or died), this run takes the claim
        over and the index is returned for a local compute round.  A
        deadline bounds the wait so a wedged-but-alive holder cannot
        stall the batch beyond the claim TTL.
        """
        policy = self.policy
        budget = CLAIM_TTL_SECONDS
        if policy.timeout:
            budget = min(budget, policy.timeout * policy.max_attempts + 5.0)
        deadline = time.monotonic() + budget
        takeover: List[int] = []
        remaining = list(waiting)
        interval = 0.05
        while remaining:
            still: List[int] = []
            for index in remaining:
                key = keys[index]
                if key in held:
                    # A duplicate of this key was already taken over.
                    takeover.append(index)
                    continue
                payload = result_cache.get(key)
                if payload is not None:
                    try:
                        value = jobs[index].decode_result(payload)
                    except Exception:
                        # Unreadable foreign entry: recompute locally.
                        if claims.acquire(key):
                            held.add(key)
                        takeover.append(index)
                        continue
                    records[index].status = "cached"
                    records[index].cached = True
                    results[index] = JobResult(
                        job=jobs[index], value=value, cached=True,
                        attempts=0, wall_time=0.0, worker=0,
                    )
                    progress.update(done=1, cached=1)
                    _notify(observer, event="cached", index=index, key=key)
                    continue
                if not claims.is_active(key):
                    # Holder released without a result, or went stale.
                    if claims.acquire(key):
                        held.add(key)
                        takeover.append(index)
                        continue
                    # Someone else re-claimed it first: keep waiting.
                still.append(index)
            remaining = still
            if not remaining:
                break
            if time.monotonic() > deadline:
                takeover.extend(remaining)
                break
            time.sleep(interval)
            interval = min(interval * 2, 0.5)
        return takeover

    def _run_batch(self, jobs, pending: List[int], progress):
        """Yield ``(index, outcome)`` for one attempt over *pending*."""
        policy = self.policy
        parallel = (
            policy.workers > 1
            and len(pending) > 1
            and not self._serial_fallback
        )
        if parallel:
            yield from self._run_parallel(jobs, pending, progress)
        else:
            for index in pending:
                outcome = _run_job(jobs[index], policy.timeout)
                progress.update(done=1, failed=0 if outcome["ok"] else 1)
                yield index, outcome

    def _run_parallel(self, jobs, pending: List[int], progress):
        policy = self.policy
        cache_dir = (
            policy.resolved_cache_dir() if policy.use_cache else None
        )
        try:
            pool = ProcessPoolExecutor(
                max_workers=min(policy.workers, len(pending)),
                initializer=_worker_init,
                initargs=(cache_dir,),
            )
        except (OSError, ValueError) as exc:
            # Sandboxes that forbid fork land here: degrade to serial.
            print(
                f"[exec] process pool unavailable ({exc}); "
                "falling back to serial execution",
                file=sys.stderr,
            )
            self._serial_fallback = True
            for index in pending:
                outcome = _run_job(jobs[index], policy.timeout)
                progress.update(done=1, failed=0 if outcome["ok"] else 1)
                yield index, outcome
            return

        try:
            futures = {
                pool.submit(_run_job, jobs[index], policy.timeout): index
                for index in pending
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    outcome = future.result()
                except BrokenProcessPool as exc:
                    # The pool died (OOM-killed worker, fork failure);
                    # every unfinished future raises.  Record the error
                    # and let the retry round re-run serially.
                    self._serial_fallback = True
                    outcome = {
                        "ok": False,
                        "timeout": False,
                        "error": f"BrokenProcessPool: {exc}",
                        "wall": 0.0,
                        "pid": 0,
                    }
                except Exception as exc:  # pickling errors and the like
                    outcome = {
                        "ok": False,
                        "timeout": False,
                        "error": f"{type(exc).__name__}: {exc}",
                        "wall": 0.0,
                        "pid": 0,
                    }
                progress.update(done=1, failed=0 if outcome["ok"] else 1)
                yield index, outcome
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _write_manifest(self, manifest: RunManifest) -> Optional[str]:
        directory = self.policy.manifest_dir
        if directory is None and self.policy.use_cache and manifest.cache_dir:
            directory = os.path.join(manifest.cache_dir, "manifests")
        if not directory:
            return None
        try:
            return manifest.write(directory)
        except OSError:
            return None


def execute_jobs(
    jobs: Sequence[Any],
    policy: Optional[ExecPolicy] = None,
    label: str = "",
) -> List[JobResult]:
    """One-shot convenience: run *jobs* on a fresh engine.

    With ``policy=None`` this is a plain serial, uncached loop — the
    safe default for library callers and tests.
    """
    return ExecutionEngine(policy).run(jobs, label=label)
