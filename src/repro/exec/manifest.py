"""Structured run manifests.

Every engine run produces one :class:`RunManifest`: what was asked,
what ran where, how long each job took, and which jobs were served
from cache.  Manifests are the ground truth for performance claims
("the warm rerun was N× faster") and for debugging worker failures —
each record keeps the attempt count and the final error text.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class JobRecord:
    """Outcome of one job within a run."""

    index: int
    job_id: str                 #: cache key, or ``uncached-<index>``
    params: Dict[str, Any]
    status: str = "pending"     #: ok | cached | failed | timeout
    cached: bool = False
    attempts: int = 0
    wall_time: float = 0.0      #: in-worker execution seconds (0 if cached)
    worker: int = 0             #: pid of the executing process
    error: str = ""


@dataclass
class RunManifest:
    """One engine run: policy echo, per-job records, wall-clock total."""

    run_id: str
    label: str = ""
    workers: int = 1
    use_cache: bool = False
    cache_dir: str = ""
    started: float = 0.0
    finished: float = 0.0
    jobs: List[JobRecord] = field(default_factory=list)

    @property
    def wall_time(self) -> float:
        """End-to-end run duration in seconds."""
        return max(0.0, self.finished - self.started)

    @property
    def cache_hits(self) -> int:
        """Jobs served from the persistent result cache."""
        return sum(1 for record in self.jobs if record.cached)

    @property
    def failures(self) -> int:
        """Jobs that exhausted their retries."""
        return sum(
            1 for record in self.jobs
            if record.status in ("failed", "timeout")
        )

    def summary(self) -> str:
        """The one-line report the engine prints after a run."""
        executed = len(self.jobs) - self.cache_hits
        parts = [
            f"[exec{':' + self.label if self.label else ''}]",
            f"{len(self.jobs)} jobs in {self.wall_time:.2f}s:",
            f"{executed} executed, {self.cache_hits} cached",
        ]
        if self.failures:
            parts.append(f", {self.failures} FAILED")
        parts.append(f"(workers={self.workers})")
        return " ".join(parts)

    def to_json(self) -> str:
        """Serialize the full manifest (records included) to JSON."""
        payload = asdict(self)
        payload["wall_time"] = self.wall_time
        payload["cache_hits"] = self.cache_hits
        payload["failures"] = self.failures
        return json.dumps(payload, indent=2, sort_keys=True)

    def write(self, directory: str) -> str:
        """Write ``<directory>/<run_id>.json``; returns the path."""
        os.makedirs(directory, exist_ok=True)
        path = os.path.join(directory, f"{self.run_id}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json() + "\n")
        return path


def new_run_id(label: str = "") -> str:
    """Unique-enough manifest file stem: timestamp + pid + label."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    suffix = f"-{label}" if label else ""
    return f"run-{stamp}-{os.getpid()}{suffix}"
