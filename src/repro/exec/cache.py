"""Persistent content-addressed stores for traces and job results.

Layout under one cache root (default ``~/.cache/repro``, overridable
with ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable)::

    <root>/traces/<key>.trace     serialized synthetic traces
    <root>/results/<key>.json     encoded job results
    <root>/manifests/run-*.json   run manifests (written by the engine)

Keys come from :mod:`repro.exec.hashing`: a stable SHA-256 over the
generating recipe (:class:`~repro.harness.registry.TraceSpec` fields,
config dataclasses, code version), so a cache entry can never be served
for a different experiment point and a code-version bump invalidates
everything at once.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
racing on the same key leave a valid file either way.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exec.hashing import versioned_key
from repro.trace.record import Trace
from repro.trace.tracefile import load_trace_auto, save_trace_binary


def default_cache_dir() -> str:
    """Resolve the cache root: env override, XDG convention, ``~``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _atomic_write(path: str, text: str) -> None:
    """Write *text* to *path* so readers never observe a partial file.

    The temp file is removed on *any* failure — including
    ``KeyboardInterrupt``/cancellation, which is how a serve-mode drain
    or a per-job timeout can land mid-write — so an interrupted put
    never leaves a partial entry (visible or temp) behind.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


@dataclass
class StoreStats:
    """Session hit/miss counters plus an on-disk inventory."""

    entries: int = 0
    bytes: int = 0
    hits: int = 0
    misses: int = 0

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"entries={self.entries} bytes={self.bytes} "
            f"hits={self.hits} misses={self.misses}"
        )


@dataclass
class PruneReport:
    """What one prune pass removed and what it left in place."""

    removed_entries: int = 0
    removed_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0

    def merge(self, other: "PruneReport") -> None:
        """Fold *other* into this report (for multi-store totals)."""
        self.removed_entries += other.removed_entries
        self.removed_bytes += other.removed_bytes
        self.kept_entries += other.kept_entries
        self.kept_bytes += other.kept_bytes

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"removed {self.removed_entries} entries "
            f"({self.removed_bytes} bytes), "
            f"kept {self.kept_entries} ({self.kept_bytes} bytes)"
        )


#: Temp files from an in-progress atomic write are ignored for this
#: long before a prune treats them as orphaned debris.
_TMP_GRACE_SECONDS = 15 * 60


def _is_tmp(path: str) -> bool:
    """Whether *path* is an atomic-write temp file (never a valid entry)."""
    return ".tmp." in os.path.basename(path)


def _scan_files(path: str, suffix: str):
    """``(path, mtime, size)`` for store entries *and* stale temp files.

    A ``*.tmp.<pid>`` file younger than the grace period belongs to a
    concurrent writer and is skipped; older ones are debris from a
    killed process and are returned (so prune removes them).
    """
    files = []
    now = time.time()
    try:
        with os.scandir(path) as it:
            for entry in it:
                if not entry.is_file():
                    continue
                is_entry = entry.name.endswith(suffix)
                is_tmp = ".tmp." in entry.name
                if not is_entry and not is_tmp:
                    continue
                stat = entry.stat()
                if is_tmp and not is_entry:
                    if now - stat.st_mtime < _TMP_GRACE_SECONDS:
                        continue
                files.append((entry.path, stat.st_mtime, stat.st_size))
    except OSError:
        pass
    return files


def _prune_files(
    files,
    max_age: Optional[float] = None,
    max_bytes: Optional[int] = None,
    dry_run: bool = False,
) -> PruneReport:
    """Apply age then size limits to *files*, oldest entries first."""
    report = PruneReport()
    now = time.time()
    doomed = []
    kept = []
    for item in files:
        path, mtime, _ = item
        if _is_tmp(path):
            doomed.append(item)  # orphaned atomic-write debris
        elif max_age is not None and now - mtime > max_age:
            doomed.append(item)
        else:
            kept.append(item)
    if max_bytes is not None:
        kept.sort(key=lambda item: item[1])  # oldest first
        total = sum(size for _, _, size in kept)
        while kept and total > max_bytes:
            item = kept.pop(0)
            total -= item[2]
            doomed.append(item)
    for path, _, size in doomed:
        if not dry_run:
            try:
                os.remove(path)
            except OSError:
                continue
        report.removed_entries += 1
        report.removed_bytes += size
    report.kept_entries = len(kept)
    report.kept_bytes = sum(size for _, _, size in kept)
    return report


def prune_cache(
    root: Optional[str] = None,
    max_age: Optional[float] = None,
    max_bytes: Optional[int] = None,
    dry_run: bool = False,
) -> Dict[str, PruneReport]:
    """Prune a whole cache root: traces, results and run manifests.

    *max_age* (seconds) removes entries older than the cutoff;
    *max_bytes* then evicts oldest-first until each store fits the
    budget (the budget applies to the combined root, apportioned by
    evicting globally-oldest entries).  Orphaned atomic-write temp
    files past their grace period are always removed.  Returns one
    :class:`PruneReport` per store plus a ``"total"`` roll-up.
    """
    root = root or default_cache_dir()
    stores = {
        "traces": _scan_files(os.path.join(root, "traces"), ".trace"),
        "results": _scan_files(os.path.join(root, "results"), ".json"),
        "manifests": _scan_files(os.path.join(root, "manifests"), ".json"),
    }
    reports: Dict[str, PruneReport] = {}
    if max_bytes is None:
        for name, files in stores.items():
            reports[name] = _prune_files(
                files, max_age=max_age, dry_run=dry_run
            )
    else:
        # One global oldest-first eviction over every store so the
        # byte budget bounds the root, not each directory separately:
        # age cutoff first, then evict globally-oldest entries until
        # the combined survivors fit the budget.
        by_age = [item for files in stores.values() for item in files]
        now = time.time()
        doomed = []
        kept = []
        for item in by_age:
            if _is_tmp(item[0]):
                doomed.append(item)  # orphaned atomic-write debris
            elif max_age is not None and now - item[1] > max_age:
                doomed.append(item)
            else:
                kept.append(item)
        kept.sort(key=lambda item: item[1])
        total = sum(size for _, _, size in kept)
        while kept and total > max_bytes:
            item = kept.pop(0)
            total -= item[2]
            doomed.append(item)
        doomed_paths = {item[0] for item in doomed}
        for name, files in stores.items():
            report = PruneReport()
            for item in files:
                path, _, size = item
                if path in doomed_paths:
                    if not dry_run:
                        try:
                            os.remove(path)
                        except OSError:
                            continue
                    report.removed_entries += 1
                    report.removed_bytes += size
                else:
                    report.kept_entries += 1
                    report.kept_bytes += size
            reports[name] = report
    total = PruneReport()
    for report in reports.values():
        total.merge(report)
    reports["total"] = total
    return reports


def _scan_dir(path: str, suffix: str) -> Dict[str, int]:
    entries = 0
    size = 0
    try:
        with os.scandir(path) as it:
            for entry in it:
                if entry.is_file() and entry.name.endswith(suffix):
                    entries += 1
                    size += entry.stat().st_size
    except OSError:
        pass
    return {"entries": entries, "bytes": size}


class ResultCache:
    """Content-addressed JSON store for encoded job results."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.dir = os.path.join(root, "results")
        os.makedirs(self.dir, exist_ok=True)
        self._hits = 0
        self._misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, f"{key}.json")

    def get(self, key: str) -> Optional[Any]:
        """Return the stored payload for *key*, or ``None`` on a miss.

        A corrupt entry (interrupted write from an older, non-atomic
        layout, disk trouble) counts as a miss and is removed.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, ValueError):
            self._misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self._hits += 1
        return document.get("payload")

    def put(self, key: str, payload: Any, meta: Optional[dict] = None) -> None:
        """Store *payload* under *key* (atomic, last writer wins)."""
        document = {"key": key, "meta": meta or {}, "payload": payload}
        _atomic_write(self._path(key), json.dumps(document, sort_keys=True))

    def stats(self) -> StoreStats:
        """Inventory of the results directory plus session counters."""
        scan = _scan_dir(self.dir, ".json")
        return StoreStats(
            entries=scan["entries"], bytes=scan["bytes"],
            hits=self._hits, misses=self._misses,
        )

    def prune(
        self,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> PruneReport:
        """Remove old entries / shrink to a byte budget (oldest first)."""
        return _prune_files(
            _scan_files(self.dir, ".json"),
            max_age=max_age, max_bytes=max_bytes, dry_run=dry_run,
        )


class TraceStore:
    """Content-addressed store of serialized synthetic traces.

    :func:`repro.harness.registry.make_trace` consults an installed
    store before generating, making trace generation a cross-process,
    cross-run cache instead of a per-process one.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.dir = os.path.join(root, "traces")
        os.makedirs(self.dir, exist_ok=True)
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key_for(spec) -> str:
        """Stable key for a :class:`TraceSpec` (code version folded in)."""
        return versioned_key({"kind": "trace", "spec": spec})

    def _path(self, spec) -> str:
        return os.path.join(self.dir, f"{self.key_for(spec)}.trace")

    def load(self, spec) -> Optional[Trace]:
        """Return the stored trace for *spec*, or ``None`` on a miss."""
        path = self._path(spec)
        try:
            trace = load_trace_auto(path)
        except FileNotFoundError:
            self._misses += 1
            return None
        except Exception:
            # Unreadable entry: regenerate rather than fail the run.
            self._misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self._hits += 1
        return trace

    def store(self, spec, trace: Trace) -> None:
        """Persist *trace* under the key of *spec* (atomic).

        Interrupted writes (timeout signal, killed worker, drain) are
        cleaned up instead of leaving a temp file behind; the visible
        ``.trace`` entry only ever appears complete.
        """
        path = self._path(spec)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            save_trace_binary(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> StoreStats:
        """Inventory of the traces directory plus session counters."""
        scan = _scan_dir(self.dir, ".trace")
        return StoreStats(
            entries=scan["entries"], bytes=scan["bytes"],
            hits=self._hits, misses=self._misses,
        )

    def prune(
        self,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> PruneReport:
        """Remove old entries / shrink to a byte budget (oldest first)."""
        return _prune_files(
            _scan_files(self.dir, ".trace"),
            max_age=max_age, max_bytes=max_bytes, dry_run=dry_run,
        )


@dataclass
class DiskCacheStats:
    """Combined inventory of one cache root (for ``repro info``)."""

    root: str = ""
    traces: StoreStats = field(default_factory=StoreStats)
    results: StoreStats = field(default_factory=StoreStats)


def disk_cache_stats(root: Optional[str] = None) -> DiskCacheStats:
    """Scan a cache root without touching session counters."""
    root = root or default_cache_dir()
    return DiskCacheStats(
        root=root,
        traces=StoreStats(**_scan_dir(os.path.join(root, "traces"), ".trace")),
        results=StoreStats(**_scan_dir(os.path.join(root, "results"), ".json")),
    )
