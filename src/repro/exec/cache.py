"""Persistent content-addressed stores for traces and job results.

Layout under one cache root (default ``~/.cache/repro``, overridable
with ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable)::

    <root>/traces/<key>.trace     serialized synthetic traces
    <root>/results/<key>.json     encoded job results
    <root>/claims/<key>.claim     in-progress computation claims
    <root>/manifests/run-*.json   run manifests (written by the engine)

Keys come from :mod:`repro.exec.hashing`: a stable SHA-256 over the
generating recipe (:class:`~repro.harness.registry.TraceSpec` fields,
config dataclasses, code version), so a cache entry can never be served
for a different experiment point and a code-version bump invalidates
everything at once.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
racing on the same key leave a valid file either way.  On top of that
discipline, :class:`Claims` provides cross-process work claims: a
worker that is about to *compute* a key first creates
``claims/<key>.claim`` with ``O_EXCL``, so concurrent workers (shards
of one server, or independent processes sharing the root) can see the
computation is in flight and wait for the result instead of running
the same simulation twice.  A claim whose holder died — or that
outlived :data:`CLAIM_TTL_SECONDS` — is *stale* and may be broken and
taken over; pruning treats active claims as protection for the claimed
entry and stale claims as debris.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Set

from repro.exec.hashing import versioned_key
from repro.trace.record import Trace
from repro.trace.tracefile import load_trace_auto, save_trace_binary


def default_cache_dir() -> str:
    """Resolve the cache root: env override, XDG convention, ``~``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _atomic_write(path: str, text: str) -> None:
    """Write *text* to *path* so readers never observe a partial file.

    The temp file is removed on *any* failure — including
    ``KeyboardInterrupt``/cancellation, which is how a serve-mode drain
    or a per-job timeout can land mid-write — so an interrupted put
    never leaves a partial entry (visible or temp) behind.
    """
    tmp = f"{path}.tmp.{os.getpid()}"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


@dataclass
class StoreStats:
    """Session hit/miss counters plus an on-disk inventory."""

    entries: int = 0
    bytes: int = 0
    hits: int = 0
    misses: int = 0

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"entries={self.entries} bytes={self.bytes} "
            f"hits={self.hits} misses={self.misses}"
        )


@dataclass
class PruneReport:
    """What one prune pass removed and what it left in place."""

    removed_entries: int = 0
    removed_bytes: int = 0
    kept_entries: int = 0
    kept_bytes: int = 0

    def merge(self, other: "PruneReport") -> None:
        """Fold *other* into this report (for multi-store totals)."""
        self.removed_entries += other.removed_entries
        self.removed_bytes += other.removed_bytes
        self.kept_entries += other.kept_entries
        self.kept_bytes += other.kept_bytes

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"removed {self.removed_entries} entries "
            f"({self.removed_bytes} bytes), "
            f"kept {self.kept_entries} ({self.kept_bytes} bytes)"
        )


#: Temp files from an in-progress atomic write are ignored for this
#: long before a prune treats them as orphaned debris.
_TMP_GRACE_SECONDS = 15 * 60

#: A claim older than this is stale regardless of its recorded holder:
#: simulation jobs are bounded to seconds, so an hours-old claim marks
#: a crashed or wedged writer, not real work.
CLAIM_TTL_SECONDS = 15 * 60


class Claims:
    """Cross-process work claims for content-addressed cache keys.

    :meth:`acquire` is the only write primitive: it creates
    ``claims/<key>.claim`` with ``O_CREAT | O_EXCL`` (atomic on every
    platform the repo targets), so exactly one process wins the right
    to compute a key.  Everyone else sees :meth:`is_active` and waits
    for the result entry to appear instead of recomputing.  The file
    records holder pid + host; a holder that died (checkable on the
    same host) or a claim past :data:`CLAIM_TTL_SECONDS` is stale and
    can be broken by the next :meth:`acquire`.

    Claims are advisory: losing one never corrupts anything, because
    result writes stay atomic and last-writer-wins on identical
    content.  They exist to keep N serve shards (or a serve instance
    plus CLI runs) from burning N cores on one key.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.dir = os.path.join(root, "claims")
        os.makedirs(self.dir, exist_ok=True)

    def path(self, key: str) -> str:
        """The claim-file path for *key*."""
        return os.path.join(self.dir, f"{key}.claim")

    def acquire(self, key: str) -> bool:
        """Try to claim *key*; breaks a stale claim first.

        Returns ``True`` when this process now holds the claim.
        """
        path = self.path(key)
        for _ in range(2):  # second try only after breaking a stale claim
            try:
                descriptor = os.open(
                    path, os.O_WRONLY | os.O_CREAT | os.O_EXCL, 0o644
                )
            except FileExistsError:
                if not self._stale(path):
                    return False
                try:
                    os.remove(path)
                except OSError:
                    return False
                continue
            except OSError:
                return True  # unusable claims dir: claim-free operation
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(
                    {"pid": os.getpid(), "host": platform.node(),
                     "created": time.time()},
                    handle,
                )
            return True
        return False

    def release(self, key: str) -> None:
        """Drop this process's claim on *key* (idempotent)."""
        try:
            os.remove(self.path(key))
        except OSError:
            pass

    def is_active(self, key: str) -> bool:
        """Whether *key* is claimed by a live, recent holder."""
        path = self.path(key)
        return os.path.exists(path) and not self._stale(path)

    def active_keys(self) -> Set[str]:
        """Keys under live claims (for prune protection)."""
        keys: Set[str] = set()
        try:
            with os.scandir(self.dir) as it:
                for entry in it:
                    if not entry.name.endswith(".claim"):
                        continue
                    if not self._stale(entry.path):
                        keys.add(entry.name[: -len(".claim")])
        except OSError:
            pass
        return keys

    def sweep(self, dry_run: bool = False) -> PruneReport:
        """Remove stale claim files; returns what one pass cleaned up."""
        report = PruneReport()
        try:
            with os.scandir(self.dir) as it:
                entries = [
                    (entry.path, entry.stat().st_mtime, entry.stat().st_size)
                    for entry in it
                    if entry.is_file() and entry.name.endswith(".claim")
                ]
        except OSError:
            return report
        for path, _, size in entries:
            if self._stale(path):
                if not dry_run:
                    try:
                        os.remove(path)
                    except OSError:
                        continue
                report.removed_entries += 1
                report.removed_bytes += size
            else:
                report.kept_entries += 1
                report.kept_bytes += size
        return report

    @staticmethod
    def _stale(path: str) -> bool:
        """A claim is stale when it is old or its local holder is dead."""
        try:
            age = time.time() - os.stat(path).st_mtime
        except OSError:
            return False  # vanished: the holder just released it
        if age > CLAIM_TTL_SECONDS:
            return True
        try:
            with open(path, "r", encoding="utf-8") as handle:
                holder = json.load(handle)
        except (OSError, ValueError):
            # Unreadable mid-write claim: trust the mtime check alone.
            return False
        if holder.get("host") != platform.node():
            return False  # cannot probe a remote holder; rely on the TTL
        pid = holder.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            return True
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except (OSError, PermissionError):
            return False  # exists but not ours to signal
        return False


def _is_tmp(path: str) -> bool:
    """Whether *path* is an atomic-write temp file (never a valid entry)."""
    return ".tmp." in os.path.basename(path)


def _scan_files(path: str, suffix: str):
    """``(path, mtime, size)`` for store entries *and* stale temp files.

    A ``*.tmp.<pid>`` file younger than the grace period belongs to a
    concurrent writer and is skipped; older ones are debris from a
    killed process and are returned (so prune removes them).
    """
    files = []
    now = time.time()
    try:
        with os.scandir(path) as it:
            for entry in it:
                if not entry.is_file():
                    continue
                is_entry = entry.name.endswith(suffix)
                is_tmp = ".tmp." in entry.name
                if not is_entry and not is_tmp:
                    continue
                stat = entry.stat()
                if is_tmp and not is_entry:
                    if now - stat.st_mtime < _TMP_GRACE_SECONDS:
                        continue
                files.append((entry.path, stat.st_mtime, stat.st_size))
    except OSError:
        pass
    return files


def _claim_protected(path: str, protected: Optional[Set[str]]) -> bool:
    """Whether *path* belongs to an actively-claimed key.

    Protection is by key stem: an active claim on ``<key>`` shields
    ``<key>.json`` / ``<key>.trace`` *and* that key's in-progress
    ``*.tmp.<pid>`` files, so pruning concurrently with a mid-write
    shard can never delete the entry it is producing.
    """
    if not protected:
        return False
    name = os.path.basename(path)
    stem = name.split(".", 1)[0]
    return stem in protected


def _prune_files(
    files,
    max_age: Optional[float] = None,
    max_bytes: Optional[int] = None,
    dry_run: bool = False,
    protected: Optional[Set[str]] = None,
) -> PruneReport:
    """Apply age then size limits to *files*, oldest entries first.

    Entries under an active claim (*protected* keys) are never removed
    — a concurrent worker is computing or just computed them.
    """
    report = PruneReport()
    now = time.time()
    doomed = []
    kept = []
    for item in files:
        path, mtime, _ = item
        if _claim_protected(path, protected):
            kept.append(item)
        elif _is_tmp(path):
            doomed.append(item)  # orphaned atomic-write debris
        elif max_age is not None and now - mtime > max_age:
            doomed.append(item)
        else:
            kept.append(item)
    if max_bytes is not None:
        kept.sort(key=lambda item: item[1])  # oldest first
        total = sum(size for _, _, size in kept)
        index = 0
        while index < len(kept) and total > max_bytes:
            if _claim_protected(kept[index][0], protected):
                index += 1
                continue
            item = kept.pop(index)
            total -= item[2]
            doomed.append(item)
    for path, _, size in doomed:
        if not dry_run:
            try:
                os.remove(path)
            except OSError:
                continue
        report.removed_entries += 1
        report.removed_bytes += size
    report.kept_entries = len(kept)
    report.kept_bytes = sum(size for _, _, size in kept)
    return report


def prune_cache(
    root: Optional[str] = None,
    max_age: Optional[float] = None,
    max_bytes: Optional[int] = None,
    dry_run: bool = False,
) -> Dict[str, PruneReport]:
    """Prune a whole cache root: traces, results and run manifests.

    *max_age* (seconds) removes entries older than the cutoff;
    *max_bytes* then evicts oldest-first until each store fits the
    budget (the budget applies to the combined root, apportioned by
    evicting globally-oldest entries).  Orphaned atomic-write temp
    files past their grace period are always removed, as are stale
    claim files; entries whose key is under an *active* claim are
    never removed, whatever the limits say — a concurrent worker is
    mid-computation on them.  Returns one :class:`PruneReport` per
    store (including ``"claims"``) plus a ``"total"`` roll-up.
    """
    root = root or default_cache_dir()
    stores = {
        "traces": _scan_files(os.path.join(root, "traces"), ".trace"),
        "results": _scan_files(os.path.join(root, "results"), ".json"),
        "manifests": _scan_files(os.path.join(root, "manifests"), ".json"),
    }
    # Claims are read *after* the store scan: a worker claims before it
    # writes, so every scanned entry a live worker is producing is
    # covered by a claim this later read will see — the scan/claim
    # ordering cannot race a claimed entry into the doomed list.
    try:
        claims = Claims(root)
        protected = claims.active_keys()
        claims_report = claims.sweep(dry_run=dry_run)
    except OSError:
        protected = set()
        claims_report = PruneReport()
    reports: Dict[str, PruneReport] = {}
    if max_bytes is None:
        for name, files in stores.items():
            reports[name] = _prune_files(
                files, max_age=max_age, dry_run=dry_run,
                protected=protected,
            )
    else:
        # One global oldest-first eviction over every store so the
        # byte budget bounds the root, not each directory separately:
        # age cutoff first, then evict globally-oldest entries until
        # the combined survivors fit the budget.
        by_age = [item for files in stores.values() for item in files]
        now = time.time()
        doomed = []
        kept = []
        for item in by_age:
            if _claim_protected(item[0], protected):
                kept.append(item)
            elif _is_tmp(item[0]):
                doomed.append(item)  # orphaned atomic-write debris
            elif max_age is not None and now - item[1] > max_age:
                doomed.append(item)
            else:
                kept.append(item)
        kept.sort(key=lambda item: item[1])
        total = sum(size for _, _, size in kept)
        index = 0
        while index < len(kept) and total > max_bytes:
            if _claim_protected(kept[index][0], protected):
                index += 1
                continue
            item = kept.pop(index)
            total -= item[2]
            doomed.append(item)
        doomed_paths = {item[0] for item in doomed}
        for name, files in stores.items():
            report = PruneReport()
            for item in files:
                path, _, size = item
                if path in doomed_paths:
                    if not dry_run:
                        try:
                            os.remove(path)
                        except OSError:
                            continue
                    report.removed_entries += 1
                    report.removed_bytes += size
                else:
                    report.kept_entries += 1
                    report.kept_bytes += size
            reports[name] = report
    reports["claims"] = claims_report
    total = PruneReport()
    for report in reports.values():
        total.merge(report)
    reports["total"] = total
    return reports


def _scan_dir(path: str, suffix: str) -> Dict[str, int]:
    entries = 0
    size = 0
    try:
        with os.scandir(path) as it:
            for entry in it:
                if entry.is_file() and entry.name.endswith(suffix):
                    entries += 1
                    size += entry.stat().st_size
    except OSError:
        pass
    return {"entries": entries, "bytes": size}


class ResultCache:
    """Content-addressed JSON store for encoded job results."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.dir = os.path.join(root, "results")
        os.makedirs(self.dir, exist_ok=True)
        self._hits = 0
        self._misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, f"{key}.json")

    def get(self, key: str) -> Optional[Any]:
        """Return the stored payload for *key*, or ``None`` on a miss.

        A corrupt entry (interrupted write from an older, non-atomic
        layout, disk trouble) counts as a miss and is removed.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, ValueError):
            self._misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self._hits += 1
        return document.get("payload")

    def put(self, key: str, payload: Any, meta: Optional[dict] = None) -> None:
        """Store *payload* under *key* (atomic, last writer wins)."""
        document = {"key": key, "meta": meta or {}, "payload": payload}
        _atomic_write(self._path(key), json.dumps(document, sort_keys=True))

    def stats(self) -> StoreStats:
        """Inventory of the results directory plus session counters."""
        scan = _scan_dir(self.dir, ".json")
        return StoreStats(
            entries=scan["entries"], bytes=scan["bytes"],
            hits=self._hits, misses=self._misses,
        )

    def prune(
        self,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> PruneReport:
        """Remove old entries / shrink to a byte budget (oldest first).

        Entries under an active claim (a concurrent worker is
        mid-computation) are never removed.
        """
        return _prune_files(
            _scan_files(self.dir, ".json"),
            max_age=max_age, max_bytes=max_bytes, dry_run=dry_run,
            protected=Claims(self.root).active_keys(),
        )


class TraceStore:
    """Content-addressed store of serialized synthetic traces.

    :func:`repro.harness.registry.make_trace` consults an installed
    store before generating, making trace generation a cross-process,
    cross-run cache instead of a per-process one.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.dir = os.path.join(root, "traces")
        os.makedirs(self.dir, exist_ok=True)
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key_for(spec) -> str:
        """Stable key for a :class:`TraceSpec` (code version folded in)."""
        return versioned_key({"kind": "trace", "spec": spec})

    def _path(self, spec) -> str:
        return os.path.join(self.dir, f"{self.key_for(spec)}.trace")

    def load(self, spec) -> Optional[Trace]:
        """Return the stored trace for *spec*, or ``None`` on a miss."""
        path = self._path(spec)
        try:
            trace = load_trace_auto(path)
        except FileNotFoundError:
            self._misses += 1
            return None
        except Exception:
            # Unreadable entry: regenerate rather than fail the run.
            self._misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self._hits += 1
        return trace

    def store(self, spec, trace: Trace) -> None:
        """Persist *trace* under the key of *spec* (atomic).

        Interrupted writes (timeout signal, killed worker, drain) are
        cleaned up instead of leaving a temp file behind; the visible
        ``.trace`` entry only ever appears complete.
        """
        path = self._path(spec)
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            save_trace_binary(trace, tmp)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.remove(tmp)
            except OSError:
                pass
            raise

    def stats(self) -> StoreStats:
        """Inventory of the traces directory plus session counters."""
        scan = _scan_dir(self.dir, ".trace")
        return StoreStats(
            entries=scan["entries"], bytes=scan["bytes"],
            hits=self._hits, misses=self._misses,
        )

    def prune(
        self,
        max_age: Optional[float] = None,
        max_bytes: Optional[int] = None,
        dry_run: bool = False,
    ) -> PruneReport:
        """Remove old entries / shrink to a byte budget (oldest first).

        Entries under an active claim (a concurrent worker is
        mid-computation) are never removed.
        """
        return _prune_files(
            _scan_files(self.dir, ".trace"),
            max_age=max_age, max_bytes=max_bytes, dry_run=dry_run,
            protected=Claims(self.root).active_keys(),
        )


@dataclass
class DiskCacheStats:
    """Combined inventory of one cache root (for ``repro info``)."""

    root: str = ""
    traces: StoreStats = field(default_factory=StoreStats)
    results: StoreStats = field(default_factory=StoreStats)


def disk_cache_stats(root: Optional[str] = None) -> DiskCacheStats:
    """Scan a cache root without touching session counters."""
    root = root or default_cache_dir()
    return DiskCacheStats(
        root=root,
        traces=StoreStats(**_scan_dir(os.path.join(root, "traces"), ".trace")),
        results=StoreStats(**_scan_dir(os.path.join(root, "results"), ".json")),
    )
