"""Persistent content-addressed stores for traces and job results.

Layout under one cache root (default ``~/.cache/repro``, overridable
with ``--cache-dir`` or the ``REPRO_CACHE_DIR`` environment variable)::

    <root>/traces/<key>.trace     serialized synthetic traces
    <root>/results/<key>.json     encoded job results
    <root>/manifests/run-*.json   run manifests (written by the engine)

Keys come from :mod:`repro.exec.hashing`: a stable SHA-256 over the
generating recipe (:class:`~repro.harness.registry.TraceSpec` fields,
config dataclasses, code version), so a cache entry can never be served
for a different experiment point and a code-version bump invalidates
everything at once.

Writes are atomic (temp file + ``os.replace``) so concurrent workers
racing on the same key leave a valid file either way.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.exec.hashing import versioned_key
from repro.trace.record import Trace
from repro.trace.tracefile import load_trace_auto, save_trace_binary


def default_cache_dir() -> str:
    """Resolve the cache root: env override, XDG convention, ``~``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = xdg if xdg else os.path.join(os.path.expanduser("~"), ".cache")
    return os.path.join(base, "repro")


def _atomic_write(path: str, text: str) -> None:
    """Write *text* to *path* so readers never observe a partial file."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
    os.replace(tmp, path)


@dataclass
class StoreStats:
    """Session hit/miss counters plus an on-disk inventory."""

    entries: int = 0
    bytes: int = 0
    hits: int = 0
    misses: int = 0

    def describe(self) -> str:
        """One-line human-readable rendering."""
        return (
            f"entries={self.entries} bytes={self.bytes} "
            f"hits={self.hits} misses={self.misses}"
        )


def _scan_dir(path: str, suffix: str) -> Dict[str, int]:
    entries = 0
    size = 0
    try:
        with os.scandir(path) as it:
            for entry in it:
                if entry.is_file() and entry.name.endswith(suffix):
                    entries += 1
                    size += entry.stat().st_size
    except OSError:
        pass
    return {"entries": entries, "bytes": size}


class ResultCache:
    """Content-addressed JSON store for encoded job results."""

    def __init__(self, root: str) -> None:
        self.root = root
        self.dir = os.path.join(root, "results")
        os.makedirs(self.dir, exist_ok=True)
        self._hits = 0
        self._misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.dir, f"{key}.json")

    def get(self, key: str) -> Optional[Any]:
        """Return the stored payload for *key*, or ``None`` on a miss.

        A corrupt entry (interrupted write from an older, non-atomic
        layout, disk trouble) counts as a miss and is removed.
        """
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except FileNotFoundError:
            self._misses += 1
            return None
        except (OSError, ValueError):
            self._misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self._hits += 1
        return document.get("payload")

    def put(self, key: str, payload: Any, meta: Optional[dict] = None) -> None:
        """Store *payload* under *key* (atomic, last writer wins)."""
        document = {"key": key, "meta": meta or {}, "payload": payload}
        _atomic_write(self._path(key), json.dumps(document, sort_keys=True))

    def stats(self) -> StoreStats:
        """Inventory of the results directory plus session counters."""
        scan = _scan_dir(self.dir, ".json")
        return StoreStats(
            entries=scan["entries"], bytes=scan["bytes"],
            hits=self._hits, misses=self._misses,
        )


class TraceStore:
    """Content-addressed store of serialized synthetic traces.

    :func:`repro.harness.registry.make_trace` consults an installed
    store before generating, making trace generation a cross-process,
    cross-run cache instead of a per-process one.
    """

    def __init__(self, root: str) -> None:
        self.root = root
        self.dir = os.path.join(root, "traces")
        os.makedirs(self.dir, exist_ok=True)
        self._hits = 0
        self._misses = 0

    @staticmethod
    def key_for(spec) -> str:
        """Stable key for a :class:`TraceSpec` (code version folded in)."""
        return versioned_key({"kind": "trace", "spec": spec})

    def _path(self, spec) -> str:
        return os.path.join(self.dir, f"{self.key_for(spec)}.trace")

    def load(self, spec) -> Optional[Trace]:
        """Return the stored trace for *spec*, or ``None`` on a miss."""
        path = self._path(spec)
        try:
            trace = load_trace_auto(path)
        except FileNotFoundError:
            self._misses += 1
            return None
        except Exception:
            # Unreadable entry: regenerate rather than fail the run.
            self._misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self._hits += 1
        return trace

    def store(self, spec, trace: Trace) -> None:
        """Persist *trace* under the key of *spec* (atomic)."""
        path = self._path(spec)
        tmp = f"{path}.tmp.{os.getpid()}"
        save_trace_binary(trace, tmp)
        os.replace(tmp, path)

    def stats(self) -> StoreStats:
        """Inventory of the traces directory plus session counters."""
        scan = _scan_dir(self.dir, ".trace")
        return StoreStats(
            entries=scan["entries"], bytes=scan["bytes"],
            hits=self._hits, misses=self._misses,
        )


@dataclass
class DiskCacheStats:
    """Combined inventory of one cache root (for ``repro info``)."""

    root: str = ""
    traces: StoreStats = field(default_factory=StoreStats)
    results: StoreStats = field(default_factory=StoreStats)


def disk_cache_stats(root: Optional[str] = None) -> DiskCacheStats:
    """Scan a cache root without touching session counters."""
    root = root or default_cache_dir()
    return DiskCacheStats(
        root=root,
        traces=StoreStats(**_scan_dir(os.path.join(root, "traces"), ".trace")),
        results=StoreStats(**_scan_dir(os.path.join(root, "results"), ".json")),
    )
