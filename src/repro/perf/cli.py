"""Argument wiring for the ``repro perf`` command family.

Kept out of :mod:`repro.cli` so the registry/detector plumbing stays
next to the code it drives; the main CLI calls :func:`add_perf_parser`
while building its tree and routes ``perf`` to :func:`dispatch_perf`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from repro.perf.detect import DetectorParams, check_report
from repro.perf.registry import DEFAULT_REGISTRY_DIR, PerfRegistry
from repro.perf.report import format_diff, format_gate, format_log


def _add_registry_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--registry", metavar="DIR", default=DEFAULT_REGISTRY_DIR,
        help="perf registry directory (default benchmarks/registry, "
        "or $REPRO_PERF_REGISTRY)",
    )


def _add_detector_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--window", type=int, default=DetectorParams.window, metavar="N",
        help="registry entries the trend fit looks back over "
        f"(default {DetectorParams.window})",
    )
    parser.add_argument(
        "--k-sigma", type=float, default=DetectorParams.k_sigma,
        metavar="K", help="step band half-width in residual sigmas "
        f"(default {DetectorParams.k_sigma:g})",
    )
    parser.add_argument(
        "--min-band", type=float, default=DetectorParams.min_band,
        metavar="FRAC", help="step band floor as a fraction of the "
        f"prediction (default {DetectorParams.min_band:g})",
    )
    parser.add_argument(
        "--drift-tolerance", type=float,
        default=DetectorParams.drift_tolerance, metavar="FRAC",
        help="fitted fall across the window that counts as drift "
        f"(default {DetectorParams.drift_tolerance:g})",
    )
    parser.add_argument(
        "--cold-tolerance", type=float,
        default=DetectorParams.cold_tolerance, metavar="FRAC",
        help="median-ratio band while history is too short to fit "
        f"(default {DetectorParams.cold_tolerance:g})",
    )


def add_perf_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``perf`` subcommand tree to the main parser."""
    p = sub.add_parser(
        "perf", help="continuous performance tracking: rev-keyed "
        "registry, trajectory views, statistical regression gate"
    )
    perf_sub = p.add_subparsers(dest="perf_command", required=True)

    ap = perf_sub.add_parser(
        "add", help="record a BENCH_<rev>.json report into the registry"
    )
    ap.add_argument("reports", nargs="+", metavar="REPORT",
                    help="bench report JSON file(s), any schema")
    _add_registry_arg(ap)

    ip = perf_sub.add_parser(
        "import", help="migrate legacy BENCH_*.json reports (schema 1/2) "
        "into the registry, in the order given"
    )
    ip.add_argument("reports", nargs="+", metavar="REPORT")
    _add_registry_arg(ip)

    lp = perf_sub.add_parser(
        "log", help="per-phase calibrated throughput trajectory"
    )
    lp.add_argument("--phases", metavar="LIST", default=None,
                    help="comma-separated phases to show "
                    "(short names ok, e.g. tc,xbc,trace_gen)")
    lp.add_argument("--limit", type=int, default=None, metavar="N",
                    help="show only the newest N revs")
    _add_registry_arg(lp)

    dp = perf_sub.add_parser(
        "diff", help="per-phase calibrated delta between two recorded revs"
    )
    dp.add_argument("rev1", help="older recorded rev")
    dp.add_argument("rev2", help="newer recorded rev")
    dp.add_argument("--phases", metavar="LIST", default=None)
    _add_registry_arg(dp)

    gp = perf_sub.add_parser(
        "gate", help="statistical regression gate for CI: bench (or load "
        "--report), judge each phase against its fitted trend band"
    )
    gp.add_argument("--report", metavar="FILE", default=None,
                    help="gate this bench report instead of running one")
    gp.add_argument("--full", action="store_true",
                    help="run a full bench (default: quick smoke bench)")
    gp.add_argument("--budget", type=int, default=150_000, metavar="UOPS",
                    help="trace budget when benching (default 150000; "
                    "quick mode caps it at 60000)")
    gp.add_argument("--bench-phases", metavar="LIST", default=None,
                    help="comma-separated bench phases to time and gate "
                    "(forwarded to the bench harness)")
    gp.add_argument("--add", action="store_true",
                    help="record the candidate into the registry after "
                    "checking (pass or fail), keeping the trajectory "
                    "honest")
    gp.add_argument("--out", metavar="DIR", default=None,
                    help="also write BENCH_<rev>.json into DIR")
    gp.add_argument("--include-dirty", action="store_true",
                    help="keep registry entries recorded from a dirty "
                    "working tree (rev suffixed -dirty) in the fit "
                    "window; excluded by default")
    _add_registry_arg(gp)
    _add_detector_args(gp)


def _load_report(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def dispatch_perf(args: argparse.Namespace) -> int:
    registry = PerfRegistry(args.registry)
    if args.perf_command in ("add", "import"):
        return _perf_add(registry, args.reports)
    if args.perf_command == "log":
        print(format_log(registry, phases=_split(args.phases),
                         limit=args.limit))
        return 0
    if args.perf_command == "diff":
        print(format_diff(registry, args.rev1, args.rev2,
                          phases=_split(args.phases)))
        return 0
    if args.perf_command == "gate":
        return _perf_gate(registry, args)
    raise AssertionError(f"unhandled perf command {args.perf_command!r}")


def _split(tokens) -> List[str]:
    return tokens.split(",") if tokens else None


def _perf_add(registry: PerfRegistry, paths: List[str]) -> int:
    for path in paths:
        report = _load_report(path)
        entry = registry.add(report)
        print(
            f"[perf] recorded {entry['rev']} "
            f"(source schema {entry['source_schema']}, "
            f"{len(entry['phases'])} phases) into {registry.root}"
        )
    return 0


def _perf_gate(registry: PerfRegistry, args: argparse.Namespace) -> int:
    params = DetectorParams(
        window=args.window,
        k_sigma=args.k_sigma,
        min_band=args.min_band,
        drift_tolerance=args.drift_tolerance,
        cold_tolerance=args.cold_tolerance,
    )
    if args.report:
        report = _load_report(args.report)
    else:
        from repro.bench import format_report, run_bench

        phases = _split(args.bench_phases)
        try:
            report = run_bench(budget=args.budget, quick=not args.full,
                               phases=phases)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(format_report(report))
        print()
    if args.out:
        from repro.bench import write_report

        path = write_report(report, args.out)
        print(f"[report written to {path}]")
    checks = check_report(registry, report, params,
                          include_dirty=args.include_dirty)
    print(format_gate(checks, report, registry, params))
    if args.add:
        entry = registry.add(report)
        print(f"[perf] recorded {entry['rev']} into {registry.root}")
    return 1 if any(check.failed for check in checks) else 0
