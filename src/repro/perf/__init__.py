"""Continuous performance tracking (``repro perf``).

The :mod:`repro.bench` harness measures *one* revision; this package
remembers *all* of them.  It keeps an on-disk registry of bench
reports keyed by git revision (``benchmarks/registry/<rev>.json`` plus
a small ordered index), renders the per-phase calibrated trajectory
(``repro perf log`` / ``repro perf diff``), and replaces the old
fixed-tolerance baseline gate with a statistical detector modeled on
Perun's degradation checks: a robust Theil--Sen trend is fitted over
the last N registry entries per phase and a new measurement fails the
gate only when it falls outside the fitted band — a real step or
drift, not calibration noise.

All comparisons operate on *calibrated* throughput
(``uops_per_sec / calibration_ops_per_sec``), so numbers recorded on
different machines stay comparable (see docs/performance.md).
"""

from repro.perf.detect import (
    DetectorParams,
    PhaseCheck,
    check_report,
    check_series,
    series_sigma,
)
from repro.perf.registry import (
    DEFAULT_REGISTRY_DIR,
    PerfRegistry,
    calibrated_phases,
    normalize_report,
)
from repro.perf.report import format_diff, format_gate, format_log

__all__ = [
    "DEFAULT_REGISTRY_DIR",
    "DetectorParams",
    "PerfRegistry",
    "PhaseCheck",
    "calibrated_phases",
    "check_report",
    "check_series",
    "format_diff",
    "format_gate",
    "format_log",
    "normalize_report",
    "series_sigma",
]
