"""Statistical regression detection over registry series.

The old gate compared one run against one pinned baseline with a
hand-tuned tolerance per phase.  This module replaces that with the
scheme Perun uses for degradation checks: treat the registry as a
time series per phase, fit a *robust* trend over the most recent
window, and judge a new measurement against the fitted band instead
of a fixed percentage.

Per phase the detector runs two tests on calibrated throughput
(higher is better):

- **step** — fit a Theil--Sen line over the last ``window`` recorded
  values (median of pairwise slopes: one wild measurement cannot tilt
  the fit) and extrapolate one step forward.  The noise band is the
  MAD of the fit residuals scaled to a normal-equivalent sigma, times
  ``k_sigma``, but never narrower than ``min_band`` of the prediction
  (an eerily quiet series must not turn 1% jitter into a failure).
  A candidate below ``predicted - band`` is a step regression; above
  ``predicted + band`` it is reported as an improvement.
- **drift** — refit including the candidate and flag a sustained
  decline: the fitted fall across the window must exceed
  ``drift_tolerance`` of the starting level *and* clear twice the
  residual noise.  This catches the slow leak that stays inside the
  step band every individual revision.

With fewer than ``min_history`` recorded values there is nothing to
fit; the detector falls back to a median-of-ratios check with the
``cold_tolerance`` band (the spirit of the old fixed gate), and with
no history at all it passes — the first recorded rev defines the
trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Normal-consistency factor: sigma = MAD_SCALE * MAD for Gaussian noise.
_MAD_SCALE = 1.4826


@dataclass(frozen=True)
class DetectorParams:
    """Tunables for the trend detector (see module docstring)."""

    window: int = 10          #: registry entries the fits look back over
    k_sigma: float = 3.0      #: step band half-width in residual sigmas
    min_band: float = 0.05    #: step band floor, fraction of prediction
    drift_tolerance: float = 0.12  #: fitted fall across the window
    cold_tolerance: float = 0.30   #: median-ratio band below min_history
    min_history: int = 4      #: fewer recorded values -> cold fallback


@dataclass
class PhaseCheck:
    """Verdict for one phase of one candidate report."""

    phase: str
    status: str               #: ok | improved | step | drift | cold-ok |
                              #: cold-step | no-history
    failed: bool
    candidate: float
    predicted: Optional[float] = None
    band: Optional[float] = None
    sigma: Optional[float] = None
    slope: Optional[float] = None  #: fitted change per entry (calibrated)
    history: int = 0
    notes: List[str] = field(default_factory=list)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def theil_sen(values: List[float]) -> Tuple[float, float]:
    """Robust line fit over ``(i, values[i])``; returns (slope, intercept).

    The slope is the median of all pairwise slopes, the intercept the
    median of ``y - slope * x`` — each breaks down only past ~29%
    contamination, so a couple of noisy CI measurements cannot fake or
    mask a trend.
    """
    n = len(values)
    if n == 1:
        return 0.0, values[0]
    slopes = [
        (values[j] - values[i]) / (j - i)
        for i in range(n) for j in range(i + 1, n)
    ]
    slope = _median(slopes)
    intercept = _median([values[i] - slope * i for i in range(n)])
    return slope, intercept


def _residual_sigma(values: List[float], slope: float,
                    intercept: float) -> float:
    residuals = [values[i] - (intercept + slope * i)
                 for i in range(len(values))]
    center = _median(residuals)
    return _MAD_SCALE * _median([abs(r - center) for r in residuals])


def series_sigma(values: List[float]) -> Optional[float]:
    """Detrended noise sigma of a series (None below 3 points).

    Used by ``perf diff`` to mark which deltas clear the series' own
    noise floor.
    """
    if len(values) < 3:
        return None
    slope, intercept = theil_sen(values)
    return _residual_sigma(values, slope, intercept)


def check_series(
    history: List[float],
    candidate: float,
    params: DetectorParams = DetectorParams(),
    phase: str = "",
) -> PhaseCheck:
    """Judge *candidate* against *history* (trajectory order, oldest
    first, calibrated throughput).  Never raises on short history."""
    if not history:
        return PhaseCheck(
            phase=phase, status="no-history", failed=False,
            candidate=candidate, history=0,
            notes=["first recorded value defines the trajectory"],
        )

    if len(history) < params.min_history:
        reference = _median(history)
        floor = reference * (1.0 - params.cold_tolerance)
        failed = candidate < floor
        return PhaseCheck(
            phase=phase,
            status="cold-step" if failed else "cold-ok",
            failed=failed,
            candidate=candidate,
            predicted=reference,
            band=reference * params.cold_tolerance,
            history=len(history),
            notes=[
                f"only {len(history)} recorded value(s); median-ratio "
                f"check at {params.cold_tolerance:.0%}"
            ],
        )

    window = history[-params.window:]
    m = len(window)

    # Step test: fit on history only, extrapolate to the candidate.
    slope, intercept = theil_sen(window)
    predicted = intercept + slope * m
    if predicted <= 0:
        # A collapsing extrapolation says the trend fit is meaningless
        # this far out; judge against the recent level instead.
        predicted = _median(window)
    sigma = _residual_sigma(window, slope, intercept)
    band = max(params.k_sigma * sigma, params.min_band * abs(predicted))
    if candidate < predicted - band:
        return PhaseCheck(
            phase=phase, status="step", failed=True, candidate=candidate,
            predicted=predicted, band=band, sigma=sigma, slope=slope,
            history=len(history),
        )

    # Drift test: refit with the candidate appended and measure the
    # sustained fall across the window.
    full = window + [candidate]
    slope_full, intercept_full = theil_sen(full)
    sigma_full = _residual_sigma(full, slope_full, intercept_full)
    start = intercept_full
    decline = -slope_full * (len(full) - 1)
    if (
        start > 0
        and decline > params.drift_tolerance * start
        and decline > 2.0 * sigma_full
    ):
        return PhaseCheck(
            phase=phase, status="drift", failed=True, candidate=candidate,
            predicted=predicted, band=band, sigma=sigma_full,
            slope=slope_full, history=len(history),
            notes=[
                f"fitted fall {decline / start:.1%} across the last "
                f"{len(full)} points"
            ],
        )

    improved = candidate > predicted + band
    return PhaseCheck(
        phase=phase,
        status="improved" if improved else "ok",
        failed=False,
        candidate=candidate,
        predicted=predicted, band=band, sigma=sigma, slope=slope,
        history=len(history),
    )


def check_report(
    registry: "Any",
    report: Dict[str, Any],
    params: DetectorParams = DetectorParams(),
    include_dirty: bool = False,
) -> List[PhaseCheck]:
    """Run the detector for every phase a bench *report* timed.

    History comes from *registry* (a :class:`~repro.perf.registry.
    PerfRegistry`), restricted to entries measuring the same workload
    class (quick vs full — see :meth:`PerfRegistry.series`); an entry
    for the report's own rev is excluded so gating after ``perf add``
    does not compare the run to itself.  Entries recorded from a dirty
    working tree (rev suffixed ``-dirty``) are excluded from the fit
    window by default — they measure unreviewed local edits, and one
    slow scratch run would otherwise tilt the trend every later rev is
    judged against; pass *include_dirty* to keep them.  Phases the
    report did not time are skipped — filtered ``--phases`` runs gate
    exactly what they measured.
    """
    from repro.perf.registry import calibrated_phases

    rev = report.get("rev")
    quick = bool(report.get("quick"))
    entries = [
        e for e in registry.entries()
        if e.get("rev") != rev
        and (include_dirty or not str(e.get("rev", "")).endswith("-dirty"))
    ]
    checks: List[PhaseCheck] = []
    for name, phase in calibrated_phases(report).items():
        history = registry.series(name, entries=entries, quick=quick)
        checks.append(
            check_series(history, phase["calibrated"], params, phase=name)
        )
    return checks
