"""Rendering for ``repro perf log`` / ``diff`` / ``gate``.

Registry entries store the machine-independent ``calibrated`` metric
(uops per calibration op), which is the right thing to compare and an
awkward thing to read.  Every view therefore *displays* throughput
rescaled to one reference machine — the calibration score of the
newest entry involved — so the numbers read as familiar uops/s while
cross-machine entries remain honestly comparable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError
from repro.perf.detect import DetectorParams, PhaseCheck, series_sigma
from repro.perf.registry import PerfRegistry

#: ``perf diff`` significance fallback when the series is too short to
#: estimate its noise floor (fewer than 3 entries).
_DIFF_FALLBACK_THRESHOLD = 0.05


def _si(value: float) -> str:
    """3-significant-figure engineering rendering (1.23M, 456k, 78.9)."""
    for factor, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(value) >= factor:
            return f"{value / factor:.3g}{suffix}"
    return f"{value:.3g}"


def _short(phase: str) -> str:
    return phase[len("frontend_"):] if phase.startswith("frontend_") \
        else phase


def select_phases(
    registry_phases: List[str], tokens: Optional[List[str]]
) -> List[str]:
    """Resolve ``--phases`` tokens (full or short names) to phase names."""
    if not tokens:
        return registry_phases
    cleaned = [token.strip() for token in tokens if token.strip()]
    by_short = {_short(name): name for name in registry_phases}
    selected: List[str] = []
    unknown: List[str] = []
    for token in cleaned:
        if token in registry_phases:
            selected.append(token)
        elif token in by_short:
            selected.append(by_short[token])
        else:
            unknown.append(token)
    if unknown:
        valid = ", ".join(_short(name) for name in registry_phases)
        raise ConfigError(
            f"unknown perf phase(s) {', '.join(unknown)}; "
            f"registry has: {valid}"
        )
    return selected


def format_log(
    registry: PerfRegistry,
    phases: Optional[List[str]] = None,
    limit: Optional[int] = None,
) -> str:
    """Per-phase calibrated trajectory, oldest rev first."""
    entries = registry.entries()
    if not entries:
        return (
            f"perf registry {registry.root}: empty "
            "(record a run with `repro perf add` or `repro bench "
            "--registry`)"
        )
    if limit:
        entries = entries[-limit:]
    names = select_phases(registry.phase_names(), phases)
    reference = entries[-1].get("calibration_ops_per_sec") or 1.0

    width = 17
    header = f"{'rev':<14} {'when':<11} " + "".join(
        f"{_short(name):<{width}}" for name in names
    )
    lines = [
        f"perf log @ {registry.root} ({len(entries)} revs, uops/s "
        f"calibrated to {entries[-1]['rev']}'s machine)",
        header,
    ]
    previous: Dict[str, float] = {}
    for entry in entries:
        cells = []
        for name in names:
            phase = entry.get("phases", {}).get(name)
            if phase is None:
                cells.append(f"{'-':<{width}}")
                continue
            value = phase["calibrated"] * reference
            cell = _si(value)
            if name in previous and previous[name]:
                delta = (phase["calibrated"] - previous[name]) \
                    / previous[name]
                cell += f" {delta:+.1%}"
            previous[name] = phase["calibrated"]
            cells.append(f"{cell:<{width}}")
        when = (entry.get("timestamp") or "-")[:10]
        mark = "*" if entry.get("quick") else ""
        lines.append(f"{entry['rev'] + mark:<14} {when:<11} "
                     + "".join(cells).rstrip())
    if any(entry.get("quick") for entry in entries):
        lines.append("(* = quick run: smaller budget, one suite)")
    return "\n".join(lines)


def format_diff(
    registry: PerfRegistry,
    rev1: str,
    rev2: str,
    phases: Optional[List[str]] = None,
) -> str:
    """Per-phase calibrated deltas between two recorded revs.

    A delta is flagged significant (``*``) when it clears twice the
    detrended noise sigma of that phase's full registry series; with
    too little history for a noise estimate, a fixed 5% threshold
    stands in (flagged ``?``).
    """
    entry1, entry2 = registry.load(rev1), registry.load(rev2)
    reference = entry2.get("calibration_ops_per_sec") or 1.0
    names = select_phases(registry.phase_names(), phases)

    lines = [
        f"perf diff {rev1} -> {rev2} (uops/s calibrated to "
        f"{rev2}'s machine)",
    ]
    if bool(entry1.get("quick")) != bool(entry2.get("quick")):
        lines.append(
            "WARNING: one rev is a quick run, the other a full run — "
            "the workloads differ, deltas are not apples to apples"
        )
    lines.append(
        f"{'phase':<12} {rev1:>14} {rev2:>14} {'delta':>9}  signif"
    )
    for name in names:
        p1 = entry1.get("phases", {}).get(name)
        p2 = entry2.get("phases", {}).get(name)
        if p1 is None or p2 is None:
            missing = rev1 if p1 is None else rev2
            lines.append(f"{_short(name):<12} "
                         f"{'(not timed by ' + missing + ')':>40}")
            continue
        v1, v2 = p1["calibrated"], p2["calibrated"]
        delta = (v2 - v1) / v1 if v1 else 0.0
        sigma = series_sigma(
            registry.series(name, quick=bool(entry2.get("quick")))
        )
        if sigma is not None:
            significant = abs(v2 - v1) > 2.0 * sigma
            flag = "*" if significant else "~"
            note = ">2 sigma" if significant else "within noise"
        else:
            significant = abs(delta) > _DIFF_FALLBACK_THRESHOLD
            flag = "?" if significant else "~"
            note = (f">{_DIFF_FALLBACK_THRESHOLD:.0%} (no noise estimate)"
                    if significant else "within 5%")
        lines.append(
            f"{_short(name):<12} {_si(v1 * reference):>14} "
            f"{_si(v2 * reference):>14} {delta:>+8.1%}  {flag} {note}"
        )
    return "\n".join(lines)


def format_gate(
    checks: List[PhaseCheck],
    report: Dict[str, Any],
    registry: PerfRegistry,
    params: DetectorParams,
) -> str:
    """Gate verdict table; one line per checked phase."""
    calibration = report.get("calibration_ops_per_sec") or 1.0
    lines = [
        f"perf gate @ {registry.root} (candidate {report.get('rev', '?')}, "
        f"window {params.window}, k={params.k_sigma:g})"
    ]
    for check in checks:
        verdict = "FAIL" if check.failed else "PASS"
        detail = f"{_si(check.candidate * calibration):>8} uops/s"
        if check.predicted is not None and check.band is not None:
            low = (check.predicted - check.band) * calibration
            detail += (f"  vs fit {_si(check.predicted * calibration)}"
                       f" (floor {_si(low)})")
        detail += f"  n={check.history}"
        if check.notes:
            detail += f"  [{'; '.join(check.notes)}]"
        lines.append(
            f"  {verdict} {_short(check.phase):<10} "
            f"{check.status:<10} {detail}"
        )
    failed = [check for check in checks if check.failed]
    if failed:
        names = ", ".join(_short(check.phase) for check in failed)
        lines.append(f"gate: FAIL ({len(failed)} of {len(checks)} "
                     f"phases regressed: {names})")
    else:
        lines.append(f"gate: PASS ({len(checks)} phases within "
                     "their fitted bands)")
    return "\n".join(lines)
