"""The on-disk perf registry: one JSON entry per recorded revision.

Layout (all paths relative to the registry root, default
``benchmarks/registry``)::

    index.json     {"schema": 1, "revs": ["1a5af1c", "f876e2a", ...]}
    <rev>.json     normalized registry entry (ENTRY_SCHEMA below)

The index order *is* the trajectory order: ``perf add`` appends new
revisions and replaces re-recorded ones in place, so re-benching a rev
updates its numbers without rewriting history around it.  Entries are
normalized from any bench report schema (1, 2 or 3): the fields the
detector needs are hoisted, and every phase gains a ``calibrated``
value — ``uops_per_sec / calibration_ops_per_sec`` — which is the
machine-independent metric everything downstream compares.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional

from repro.common.errors import ConfigError

#: Default registry location, overridable per call site and via the
#: environment (CI restores a cached copy into the committed path).
DEFAULT_REGISTRY_DIR = os.environ.get(
    "REPRO_PERF_REGISTRY", os.path.join("benchmarks", "registry")
)

#: Registry entry layout version (independent of the bench report
#: schema an entry was ingested from, which is kept as ``source_schema``).
ENTRY_SCHEMA = 1

_INDEX_NAME = "index.json"

#: Bench report keys copied through into registry entries verbatim.
_CARRIED_KEYS = (
    "timestamp",
    "python",
    "implementation",
    "platform",
    "cpu_count",
    "cpu_affinity",
    "budget_uops",
    "quick",
    "suites",
    "repeats",
    "peak_rss_kb",
)


def calibrated_phases(report: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    """Phase dicts from *report* with a ``calibrated`` value added.

    ``calibrated`` is uops/s divided by the report's calibration score:
    "simulated uops per calibration op", dimensionless and therefore
    comparable across machines.  Reports without a calibration score
    (never written by the harness, but be defensive) fall back to the
    raw throughput so the trajectory stays renderable.
    """
    calibration = report.get("calibration_ops_per_sec") or 0.0
    phases: Dict[str, Dict[str, Any]] = {}
    for name, phase in (report.get("phases") or {}).items():
        ups = phase.get("uops_per_sec", 0.0)
        entry = {
            "seconds": phase.get("seconds"),
            "uops": phase.get("uops"),
            "uops_per_sec": ups,
            "calibrated": (ups / calibration) if calibration else ups,
        }
        phases[name] = entry
    return phases


def normalize_report(report: Dict[str, Any]) -> Dict[str, Any]:
    """Convert a bench report (schema 1/2/3) into a registry entry."""
    rev = report.get("rev")
    if not rev or rev == "unknown":
        raise ConfigError(
            "bench report has no usable git rev; refusing to register it"
        )
    if not report.get("phases"):
        raise ConfigError(f"bench report for {rev} has no phases")
    entry: Dict[str, Any] = {
        "entry_schema": ENTRY_SCHEMA,
        "source_schema": report.get("schema", 1),
        "rev": rev,
        "calibration_ops_per_sec": report.get("calibration_ops_per_sec"),
        "phases": calibrated_phases(report),
    }
    for key in _CARRIED_KEYS:
        entry[key] = report.get(key)
    return entry


class PerfRegistry:
    """Read/write access to one registry directory."""

    def __init__(self, root: str = DEFAULT_REGISTRY_DIR):
        self.root = root

    # -- paths ---------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.root, _INDEX_NAME)

    def entry_path(self, rev: str) -> str:
        if os.sep in rev or rev in (".", ".."):
            raise ConfigError(f"bad revision name {rev!r}")
        return os.path.join(self.root, f"{rev}.json")

    # -- index ---------------------------------------------------------

    def exists(self) -> bool:
        return os.path.isfile(self.index_path)

    def revs(self) -> List[str]:
        """Recorded revisions, oldest first (the trajectory order)."""
        if not self.exists():
            return []
        with open(self.index_path, "r", encoding="utf-8") as handle:
            index = json.load(handle)
        return list(index.get("revs", []))

    def _write_index(self, revs: List[str]) -> None:
        os.makedirs(self.root, exist_ok=True)
        document = {"schema": 1, "revs": revs}
        _atomic_dump(document, self.index_path)

    # -- entries -------------------------------------------------------

    def load(self, rev: str) -> Dict[str, Any]:
        path = self.entry_path(rev)
        if not os.path.isfile(path):
            known = ", ".join(self.revs()) or "(registry empty)"
            raise ConfigError(
                f"no registry entry for rev {rev!r}; known revs: {known}"
            )
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    def entries(self) -> List[Dict[str, Any]]:
        """All entries in trajectory order."""
        return [self.load(rev) for rev in self.revs()]

    def add(self, report: Dict[str, Any]) -> Dict[str, Any]:
        """Ingest a bench report; returns the normalized entry.

        A rev already present is replaced in place (its position in
        the trajectory is kept); new revs append at the end.
        """
        entry = normalize_report(report)
        revs = self.revs()
        if entry["rev"] not in revs:
            revs.append(entry["rev"])
        os.makedirs(self.root, exist_ok=True)
        _atomic_dump(entry, self.entry_path(entry["rev"]))
        self._write_index(revs)
        return entry

    # -- series --------------------------------------------------------

    def phase_names(self) -> List[str]:
        """Union of phase names across entries, first-seen order."""
        names: List[str] = []
        for entry in self.entries():
            for name in entry.get("phases", {}):
                if name not in names:
                    names.append(name)
        return names

    def series(
        self,
        phase: str,
        entries: Optional[List[Dict[str, Any]]] = None,
        quick: Optional[bool] = None,
    ) -> List[float]:
        """Calibrated values of *phase* in trajectory order.

        Entries that did not time this phase are skipped (a filtered
        ``--phases`` run must not punch holes into the trend fit).
        When *quick* is given, only entries with that quick flag count:
        quick runs (one suite, small budget) and full runs measure
        different workloads, and calibration does not bridge that —
        e.g. trace generation pays fixed per-trace costs that dominate
        at small budgets, reading as a ~40% phantom regression.
        """
        if entries is None:
            entries = self.entries()
        values: List[float] = []
        for entry in entries:
            if quick is not None and bool(entry.get("quick")) != quick:
                continue
            phase_entry = entry.get("phases", {}).get(phase)
            if phase_entry is not None:
                values.append(phase_entry["calibrated"])
        return values


def _atomic_dump(document: Dict[str, Any], path: str) -> None:
    """Write JSON via a same-directory rename so readers never see a
    partial file (the CI cache may snapshot the directory mid-write)."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
