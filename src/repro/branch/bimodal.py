"""Bimodal (per-address 2-bit counter) direction predictor.

Serves as the simple baseline against gshare in the predictor ablation
benches, and as the cheap second component when experiments want a
hybrid-style comparison.
"""

from __future__ import annotations

from array import array

from repro.common.bitutils import log2_exact


class BimodalPredictor:
    """Classic Smith predictor: table of 2-bit counters indexed by IP."""

    def __init__(self, table_entries: int = 4096) -> None:
        log2_exact(table_entries)
        self.table_entries = table_entries
        self._index_mask = table_entries - 1
        self._counters = array("b", [2]) * table_entries
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, ip: int) -> int:
        return (ip >> 1) & self._index_mask

    def predict(self, ip: int) -> bool:
        """Predicted direction (no state change)."""
        return self._counters[self._index(ip)] >= 2

    def update(self, ip: int, taken: bool) -> bool:
        """Predict-then-train; returns whether the prediction was correct."""
        index = self._index(ip)
        prediction = self._counters[index] >= 2
        correct = prediction == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if self._counters[index] < 3:
                self._counters[index] += 1
        else:
            if self._counters[index] > 0:
                self._counters[index] -= 1
        return correct

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (1.0 before any)."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
