"""Indirect-target predictor.

Backs both the build-mode frontend's indirect prediction and the XiBTB
of §3.5 (which predicts the next *XB* for indirect-ended XBs — same
mechanism, different payload).  The design is a tagged target cache: a
table indexed by branch address XOR folded path history, storing the
last observed target per (index, tag).  History folding gives the
per-path target separation that makes switch-heavy code predictable.

The store is two dense parallel lists (tags, targets) sized to the
table, so predict/update are two list indexings plus integer math —
no dict hashing, no tuple allocation per train.  Tag ``-1`` marks an
empty slot (tags are instruction pointers, always >= 0).  The original
dict-of-tuples implementation is kept as
:class:`ReferenceIndirectPredictor` for the differential property
tests in ``tests/branch``; both behave identically.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, Tuple, TypeVar

from repro.common.bitutils import log2_exact

T = TypeVar("T")


class IndirectPredictor(Generic[T]):
    """History-hashed last-target predictor with bounded capacity."""

    def __init__(self, table_entries: int = 1024, history_bits: int = 8) -> None:
        log2_exact(table_entries)
        self.table_entries = table_entries
        self._index_mask = table_entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._tags: List[int] = [-1] * table_entries
        self._targets: List[Optional[T]] = [None] * table_entries
        self.history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index_tag(self, ip: int) -> Tuple[int, int]:
        hashed = (ip >> 1) ^ (self.history << 2)
        return hashed & self._index_mask, ip

    def predict(self, ip: int) -> Optional[T]:
        """Predicted target payload for *ip*, or ``None`` when untrained."""
        index = ((ip >> 1) ^ (self.history << 2)) & self._index_mask
        if self._tags[index] == ip:
            return self._targets[index]
        return None

    def update(self, ip: int, actual: T, taken_ip_bit: Optional[int] = None) -> bool:
        """Predict-then-train with the committed target.

        Returns ``True`` when the prediction matched.  The global path
        history is advanced with low bits of the actual target so that
        successive executions along different paths use different table
        slots.
        """
        index = ((ip >> 1) ^ (self.history << 2)) & self._index_mask
        predicted = self._targets[index] if self._tags[index] == ip else None
        correct = predicted == actual
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self._tags[index] = ip
        self._targets[index] = actual
        raw = taken_ip_bit if taken_ip_bit is not None else hash(actual)
        # Fold the target address down to a nibble; mixing the higher
        # bits in matters because code addresses share low-bit alignment.
        mixed = (raw ^ (raw >> 4) ^ (raw >> 9)) & 0xF
        self.history = ((self.history << 2) ^ mixed) & self._history_mask
        return correct

    def train(self, ip: int, actual: T, taken_ip_bit: Optional[int] = None) -> None:
        """Write a mapping and advance history without prediction stats.

        Callers that manage their own prediction bookkeeping (the XBC's
        XiBTB path, which validates predictions against fetch-unit
        content) use this instead of :meth:`update`.
        """
        index = ((ip >> 1) ^ (self.history << 2)) & self._index_mask
        self._tags[index] = ip
        self._targets[index] = actual
        raw = taken_ip_bit if taken_ip_bit is not None else hash(actual)
        mixed = (raw ^ (raw >> 4) ^ (raw >> 9)) & 0xF
        self.history = ((self.history << 2) ^ mixed) & self._history_mask

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (1.0 before any)."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions


class ReferenceIndirectPredictor(Generic[T]):
    """The original dict-of-tuples predictor, kept as the oracle."""

    def __init__(self, table_entries: int = 1024, history_bits: int = 8) -> None:
        log2_exact(table_entries)
        self.table_entries = table_entries
        self._index_mask = table_entries - 1
        self._history_mask = (1 << history_bits) - 1
        self._table: Dict[int, Tuple[int, T]] = {}  # index -> (tag, target)
        self.history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index_tag(self, ip: int) -> Tuple[int, int]:
        hashed = (ip >> 1) ^ (self.history << 2)
        return hashed & self._index_mask, ip

    def predict(self, ip: int) -> Optional[T]:
        """Predicted target payload for *ip*, or ``None`` when untrained."""
        index, tag = self._index_tag(ip)
        entry = self._table.get(index)
        if entry is not None and entry[0] == tag:
            return entry[1]
        return None

    def update(self, ip: int, actual: T, taken_ip_bit: Optional[int] = None) -> bool:
        """Predict-then-train with the committed target."""
        index, tag = self._index_tag(ip)
        entry = self._table.get(index)
        predicted = entry[1] if entry is not None and entry[0] == tag else None
        correct = predicted == actual
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        self._table[index] = (tag, actual)
        raw = taken_ip_bit if taken_ip_bit is not None else hash(actual)
        mixed = (raw ^ (raw >> 4) ^ (raw >> 9)) & 0xF
        self.history = ((self.history << 2) ^ mixed) & self._history_mask
        return correct

    def train(self, ip: int, actual: T, taken_ip_bit: Optional[int] = None) -> None:
        """Write a mapping and advance history without prediction stats."""
        index, tag = self._index_tag(ip)
        self._table[index] = (tag, actual)
        raw = taken_ip_bit if taken_ip_bit is not None else hash(actual)
        mixed = (raw ^ (raw >> 4) ^ (raw >> 9)) & 0xF
        self.history = ((self.history << 2) ^ mixed) & self._history_mask

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (1.0 before any)."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions
