"""The 7-bit bias counter that drives branch promotion (§3.8).

Each XBTB entry carries one of these.  The counter increments on taken
and decrements on not-taken (saturating at 0 and 127).  A value of
``<= 1`` means at most one taken out of the last 128 executions —
at least 99.2% biased to not-taken — and symmetrically ``>= 126`` for
taken.  The same counter keeps gathering statistics *after* promotion:
every time the promoted branch takes the non-promoted path the counter
moves back toward the middle, and crossing the de-promotion threshold
demotes the branch.
"""

from __future__ import annotations

#: Counter width in bits, fixed by the paper.
BIAS_BITS = 7
BIAS_MAX = (1 << BIAS_BITS) - 1  # 127

#: Promotion thresholds: <=1 (not-taken monotone) / >=126 (taken monotone).
PROMOTE_LOW = 1
PROMOTE_HIGH = BIAS_MAX - 1


class BiasCounter:
    """Saturating 7-bit taken/not-taken bias counter."""

    __slots__ = ("value",)

    def __init__(self, initial: int = BIAS_MAX // 2) -> None:
        if not 0 <= initial <= BIAS_MAX:
            raise ValueError(f"initial value out of range: {initial}")
        self.value = initial

    def update(self, taken: bool) -> None:
        """Record one execution of the branch."""
        if taken:
            if self.value < BIAS_MAX:
                self.value += 1
        else:
            if self.value > 0:
                self.value -= 1

    @property
    def promotable_taken(self) -> bool:
        """>= 99.2% biased toward taken."""
        return self.value >= PROMOTE_HIGH

    @property
    def promotable_not_taken(self) -> bool:
        """>= 99.2% biased toward not-taken."""
        return self.value <= PROMOTE_LOW

    @property
    def promotable(self) -> bool:
        """Monotonic in either direction."""
        return self.promotable_taken or self.promotable_not_taken

    def monotone_direction(self) -> bool:
        """The biased direction; only meaningful when :attr:`promotable`."""
        return self.value >= PROMOTE_HIGH

    def misbehaving(self, promoted_taken: bool, slack: int = 16) -> bool:
        """True when a promoted branch has drifted off its bias.

        *slack* counts how far the counter must move back from the
        saturation rail before the branch is de-promoted; 16 means
        roughly one wrong direction per eight executions sustained.
        """
        if promoted_taken:
            return self.value < BIAS_MAX - slack
        return self.value > slack
