"""Branch-prediction substrate.

The paper simulates a 16-bit-history GSHARE predictor [McF93] for both
the XBC (as the XBP of §3.5) and the TC, plus the usual companion
structures: a BTB for the build-mode IC frontend, a return stack
(the XRSB of §3.5 is the XB-granular variant), an indirect-target
predictor (backing the XiBTB), and the 7-bit bias counters that drive
branch promotion (§3.8).
"""

from repro.branch.gshare import GsharePredictor
from repro.branch.bimodal import BimodalPredictor
from repro.branch.btb import BranchTargetBuffer
from repro.branch.rsb import ReturnStackBuffer
from repro.branch.indirect import IndirectPredictor
from repro.branch.bias import BiasCounter

__all__ = [
    "GsharePredictor",
    "BimodalPredictor",
    "BranchTargetBuffer",
    "ReturnStackBuffer",
    "IndirectPredictor",
    "BiasCounter",
]
