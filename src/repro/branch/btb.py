"""Branch Target Buffer.

The build-mode frontend (the "traditional IC based frontend" at the top
of the paper's Figure 6) needs a BTB to redirect fetch on taken
branches without waiting for decode.  Set-associative with true LRU.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.bitutils import log2_exact


class _BtbSet:
    __slots__ = ("entries", "order")

    def __init__(self) -> None:
        self.entries: Dict[int, int] = {}  # ip -> target
        self.order: List[int] = []         # LRU order, oldest first


class BranchTargetBuffer:
    """IP → target map with bounded set-associative capacity."""

    def __init__(self, entries: int = 2048, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError(f"{entries} entries not divisible by assoc {assoc}")
        self.num_sets = entries // assoc
        log2_exact(self.num_sets)
        self.assoc = assoc
        self._sets = [_BtbSet() for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1
        self.lookups = 0
        self.hits = 0

    def _set_for(self, ip: int) -> _BtbSet:
        return self._sets[(ip >> 1) & self._set_mask]

    def lookup(self, ip: int) -> Optional[int]:
        """Predicted target of the branch at *ip*, or ``None`` on miss."""
        self.lookups += 1
        btb_set = self._set_for(ip)
        target = btb_set.entries.get(ip)
        if target is not None:
            self.hits += 1
            btb_set.order.remove(ip)
            btb_set.order.append(ip)
        return target

    def install(self, ip: int, target: int) -> None:
        """Record (or refresh) the taken target of the branch at *ip*."""
        btb_set = self._set_for(ip)
        if ip in btb_set.entries:
            btb_set.entries[ip] = target
            btb_set.order.remove(ip)
            btb_set.order.append(ip)
            return
        if len(btb_set.entries) >= self.assoc:
            victim = btb_set.order.pop(0)
            del btb_set.entries[victim]
        btb_set.entries[ip] = target
        btb_set.order.append(ip)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 before any lookup)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups
