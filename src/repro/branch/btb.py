"""Branch Target Buffer.

The build-mode frontend (the "traditional IC based frontend" at the top
of the paper's Figure 6) needs a BTB to redirect fetch on taken
branches without waiting for decode.  Set-associative with true LRU.

The store is three flat packed arrays (tags, targets, LRU stamps)
indexed by ``set * assoc + way``: way scans touch adjacent slots, no
per-set objects or order lists exist, and eviction is a min-stamp scan
— the packed layout the flat frontend loops inline directly.  The
original dict-plus-LRU-list implementation is kept as
:class:`ReferenceBranchTargetBuffer` for the differential property
tests in ``tests/branch``; both behave identically.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from repro.common.bitutils import log2_exact


class BranchTargetBuffer:
    """IP → target map with bounded set-associative capacity."""

    def __init__(self, entries: int = 2048, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError(f"{entries} entries not divisible by assoc {assoc}")
        self.num_sets = entries // assoc
        log2_exact(self.num_sets)
        self.assoc = assoc
        self._set_mask = self.num_sets - 1
        # Flat slot arrays: slot = set * assoc + way.  Tag -1 == empty.
        self._tags = array("q", [-1]) * entries
        self._targets = array("q", [0]) * entries
        self._stamps = array("q", [0]) * entries
        self._clock = 0
        self.lookups = 0
        self.hits = 0

    def lookup(self, ip: int) -> Optional[int]:
        """Predicted target of the branch at *ip*, or ``None`` on miss."""
        self.lookups += 1
        tags = self._tags
        base = ((ip >> 1) & self._set_mask) * self.assoc
        for slot in range(base, base + self.assoc):
            if tags[slot] == ip:
                self.hits += 1
                self._clock += 1
                self._stamps[slot] = self._clock
                return self._targets[slot]
        return None

    def install(self, ip: int, target: int) -> None:
        """Record (or refresh) the taken target of the branch at *ip*."""
        tags = self._tags
        stamps = self._stamps
        base = ((ip >> 1) & self._set_mask) * self.assoc
        end = base + self.assoc
        victim = -1
        victim_stamp = 0
        for slot in range(base, end):
            tag = tags[slot]
            if tag == ip:
                self._targets[slot] = target
                self._clock += 1
                stamps[slot] = self._clock
                return
            if tag == -1:
                # A free way wins outright (the reference fills every
                # way before evicting), and earlier frees win over
                # later ones to match its append order.
                victim = slot
                break
            stamp = stamps[slot]
            if victim < 0 or stamp < victim_stamp:
                victim = slot
                victim_stamp = stamp
        tags[victim] = ip
        self._targets[victim] = target
        self._clock += 1
        stamps[victim] = self._clock

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 before any lookup)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups


class _BtbSet:
    __slots__ = ("entries", "order")

    def __init__(self) -> None:
        self.entries: Dict[int, int] = {}  # ip -> target
        self.order: List[int] = []         # LRU order, oldest first


class ReferenceBranchTargetBuffer:
    """The original dict/LRU-list BTB, kept as the behavioural oracle."""

    def __init__(self, entries: int = 2048, assoc: int = 4) -> None:
        if entries % assoc:
            raise ValueError(f"{entries} entries not divisible by assoc {assoc}")
        self.num_sets = entries // assoc
        log2_exact(self.num_sets)
        self.assoc = assoc
        self._sets = [_BtbSet() for _ in range(self.num_sets)]
        self._set_mask = self.num_sets - 1
        self.lookups = 0
        self.hits = 0

    def _set_for(self, ip: int) -> _BtbSet:
        return self._sets[(ip >> 1) & self._set_mask]

    def lookup(self, ip: int) -> Optional[int]:
        """Predicted target of the branch at *ip*, or ``None`` on miss."""
        self.lookups += 1
        btb_set = self._set_for(ip)
        target = btb_set.entries.get(ip)
        if target is not None:
            self.hits += 1
            btb_set.order.remove(ip)
            btb_set.order.append(ip)
        return target

    def install(self, ip: int, target: int) -> None:
        """Record (or refresh) the taken target of the branch at *ip*."""
        btb_set = self._set_for(ip)
        if ip in btb_set.entries:
            btb_set.entries[ip] = target
            btb_set.order.remove(ip)
            btb_set.order.append(ip)
            return
        if len(btb_set.entries) >= self.assoc:
            victim = btb_set.order.pop(0)
            del btb_set.entries[victim]
        btb_set.entries[ip] = target
        btb_set.order.append(ip)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (1.0 before any lookup)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups
