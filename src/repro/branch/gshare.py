"""GSHARE conditional-direction predictor [McF93].

A global history register is XORed with the branch address to index a
table of 2-bit saturating counters.  The paper uses a 16-bit history
for both the XBC's XBP and the TC's multiple-branch predictor; the TC
consumes up to three predictions per cycle, which with a global-history
scheme simply means three sequential predict/shift steps.
"""

from __future__ import annotations

from array import array

from repro.common.bitutils import log2_exact


class GsharePredictor:
    """2-bit-counter gshare with configurable history and table size."""

    def __init__(self, history_bits: int = 16, table_entries: int = 65536) -> None:
        log2_exact(table_entries)  # validates power of two
        if not 0 <= history_bits <= 30:
            raise ValueError(f"history_bits out of range: {history_bits}")
        self.history_bits = history_bits
        self.table_entries = table_entries
        self._index_mask = table_entries - 1
        self._history_mask = (1 << history_bits) - 1
        # Counters start weakly taken: loop-heavy code warms up faster,
        # and the choice washes out after a few thousand branches.
        self._counters = array("b", [2]) * table_entries
        self.history = 0
        self.predictions = 0
        self.mispredictions = 0

    def _index(self, ip: int) -> int:
        # Drop the low bit (branches are >= 2 bytes apart in practice)
        # and fold the history over the address.
        return ((ip >> 1) ^ self.history) & self._index_mask

    def predict(self, ip: int) -> bool:
        """Predicted direction for the branch at *ip* (no state change)."""
        return self._counters[self._index(ip)] >= 2

    def update(self, ip: int, taken: bool) -> bool:
        """Predict, then train on the actual outcome.

        Returns ``True`` when the prediction was correct.  This is the
        single call the trace-driven frontends make per conditional
        branch: predict-then-train with the committed outcome.
        """
        counters = self._counters
        history = self.history
        index = ((ip >> 1) ^ history) & self._index_mask
        count = counters[index]
        correct = (count >= 2) == taken
        self.predictions += 1
        if not correct:
            self.mispredictions += 1
        if taken:
            if count < 3:
                counters[index] = count + 1
            self.history = ((history << 1) | 1) & self._history_mask
        else:
            if count > 0:
                counters[index] = count - 1
            self.history = (history << 1) & self._history_mask
        return correct

    @property
    def accuracy(self) -> float:
        """Fraction of correct predictions so far (1.0 before any)."""
        if self.predictions == 0:
            return 1.0
        return 1.0 - self.mispredictions / self.predictions

    def reset_stats(self) -> None:
        """Zero the accuracy counters, keeping the learned state."""
        self.predictions = 0
        self.mispredictions = 0
