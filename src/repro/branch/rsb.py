"""Return Stack Buffer.

A bounded circular stack of return addresses (or, for the XRSB of
§3.5, of XBTB-entry payloads — the class is generic over what it
stores).  Overflow overwrites the oldest entry, underflow returns
``None``; both behaviours match hardware return stacks and both are
exercised by deep call chains in the sysmark suite.

:class:`IntReturnStack` is the packed-integer variant for the flat
frontends: slots live in one ``array('q')`` so push/pop are two index
writes and no ``Optional`` boxing happens on the hot path (underflow
is signalled with ``-1``, which can never be a return address).  The
generic :class:`ReturnStackBuffer` stays for object payloads (XRSB)
and as the behavioural oracle in the differential property tests.
"""

from __future__ import annotations

from array import array
from typing import Generic, List, Optional, TypeVar

T = TypeVar("T")


class ReturnStackBuffer(Generic[T]):
    """Fixed-depth circular stack with hardware overflow semantics."""

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError(f"RSB depth must be >= 1, got {depth}")
        self.depth = depth
        self._slots: List[Optional[T]] = [None] * depth
        self._top = 0       # index of the next free slot
        self._count = 0     # valid entries (<= depth)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def push(self, value: T) -> None:
        """Push a value; silently overwrites the oldest on overflow."""
        self.pushes += 1
        if self._count == self.depth:
            self.overflows += 1
        else:
            self._count += 1
        self._slots[self._top] = value
        self._top = (self._top + 1) % self.depth

    def pop(self) -> Optional[T]:
        """Pop the most recent value; ``None`` on underflow."""
        self.pops += 1
        if self._count == 0:
            self.underflows += 1
            return None
        self._top = (self._top - 1) % self.depth
        self._count -= 1
        value = self._slots[self._top]
        self._slots[self._top] = None
        return value

    def peek(self) -> Optional[T]:
        """Most recent value without popping, ``None`` when empty."""
        if self._count == 0:
            return None
        return self._slots[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        """Drop all entries (used on re-steer in some configurations)."""
        self._slots = [None] * self.depth
        self._top = 0
        self._count = 0


class IntReturnStack:
    """Packed-integer return stack with the same hardware semantics.

    Addresses are non-negative, so underflow is reported as ``-1``
    instead of ``None`` — callers compare the popped value against the
    committed return IP either way.
    """

    __slots__ = ("depth", "_slots", "_top", "_count",
                 "pushes", "pops", "underflows", "overflows")

    def __init__(self, depth: int = 16) -> None:
        if depth < 1:
            raise ValueError(f"RSB depth must be >= 1, got {depth}")
        self.depth = depth
        self._slots = array("q", [0]) * depth
        self._top = 0       # index of the next free slot
        self._count = 0     # valid entries (<= depth)
        self.pushes = 0
        self.pops = 0
        self.underflows = 0
        self.overflows = 0

    def push(self, value: int) -> None:
        """Push a value; silently overwrites the oldest on overflow."""
        self.pushes += 1
        if self._count == self.depth:
            self.overflows += 1
        else:
            self._count += 1
        self._slots[self._top] = value
        self._top = (self._top + 1) % self.depth

    def pop(self) -> int:
        """Pop the most recent value; ``-1`` on underflow."""
        self.pops += 1
        if self._count == 0:
            self.underflows += 1
            return -1
        self._top = (self._top - 1) % self.depth
        self._count -= 1
        return self._slots[self._top]

    def peek(self) -> int:
        """Most recent value without popping, ``-1`` when empty."""
        if self._count == 0:
            return -1
        return self._slots[(self._top - 1) % self.depth]

    def __len__(self) -> int:
        return self._count

    def clear(self) -> None:
        """Drop all entries (used on re-steer in some configurations)."""
        self._top = 0
        self._count = 0
