"""Reproduction of *eXtended Block Cache* (Jourdan et al., HPCA 2000).

A trace-driven frontend-simulation library: synthetic x86-like
workloads, a conventional instruction-cache frontend, the academic
Trace Cache and Block-Based Trace Cache comparators, and a complete
model of the paper's eXtended Block Cache (banked reverse-order
storage, XBTB/XiBTB/XRSB prediction, complex XBs, branch promotion,
set search, dynamic placement).

Quickstart::

    from repro import (
        FrontendConfig, TcFrontend, XbcFrontend, TcConfig, XbcConfig,
        profile_for_suite, generate_program, execute_program,
    )

    program = generate_program(profile_for_suite("specint"), seed=7)
    trace = execute_program(program, max_uops=100_000)
    xbc = XbcFrontend(FrontendConfig(), XbcConfig(total_uops=8192))
    print(xbc.run(trace).summary())

See ``python -m repro --help`` for the figure-regeneration harness.
"""

from repro.common import ReproError, ConfigError, GenerationError, SimulationError
from repro.program import (
    WorkloadProfile,
    profile_for_suite,
    generate_program,
    ProgramGenerator,
    Program,
    SUITE_NAMES,
)
from repro.trace import (
    Trace,
    DynInstr,
    execute_program,
    TraceExecutor,
    compute_block_stats,
    save_trace,
    load_trace,
)
from repro.frontend import FrontendConfig, FrontendStats, ICFrontend
from repro.tc import TcConfig, TcFrontend
from repro.bbtc import BbtcConfig, BbtcFrontend
from repro.xbc import XbcConfig, XbcFrontend, build_xb_stream

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ConfigError",
    "GenerationError",
    "SimulationError",
    "WorkloadProfile",
    "profile_for_suite",
    "generate_program",
    "ProgramGenerator",
    "Program",
    "SUITE_NAMES",
    "Trace",
    "DynInstr",
    "execute_program",
    "TraceExecutor",
    "compute_block_stats",
    "save_trace",
    "load_trace",
    "FrontendConfig",
    "FrontendStats",
    "ICFrontend",
    "TcConfig",
    "TcFrontend",
    "BbtcConfig",
    "BbtcFrontend",
    "XbcConfig",
    "XbcFrontend",
    "build_xb_stream",
    "__version__",
]
