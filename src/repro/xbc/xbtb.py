"""The XBTB: the XBC's tightly-coupled next-XB predictor (§3.5).

The XBC can only be reached *through* the XBTB: every entry describes
one XB (keyed by its end-IP) and carries the pointers to its possible
successors — the taken-path XB and the fall-through XB for conditional
enders, the callee/return pair for calls, nothing for indirect enders
(the XiBTB predicts those) — plus the 7-bit promotion bias counter of
§3.8 and the record of where the XB's stored copies (variants) live.

The XBP (gshare), XiBTB (indirect-target predictor) and XRSB (return
stack) of Figure 4 are instantiated by the frontend from the generic
predictors in :mod:`repro.branch`; this module provides the table and
entry structures they select pointers from.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.branch.bias import BiasCounter
from repro.common.bitutils import log2_exact
from repro.isa.instruction import KIND_CODE, InstrKind
from repro.xbc.config import XbcConfig
from repro.xbc.pointer import XbPointer
from repro.xbc.storage import XbcStorage


class XbVariant:
    """One stored copy of an XB: bank mask, length, and exact slots.

    ``lines`` holds references to the variant's physical lines, in
    order — the way-select record that lets sibling prefixes share a
    bank in different ways (§3.3's placement hint) without ambiguity,
    and that survives dynamic-placement moves.  Variant records are
    *hints*: storage eviction invalidates them silently, and the fill
    unit re-validates (dropping stale records) before trusting one.
    """

    __slots__ = ("mask", "length", "lines")

    def __init__(self, mask: int, length: int, lines=None) -> None:
        self.mask = mask
        self.length = length
        self.lines = list(lines) if lines else None

    def read(self, storage: XbcStorage, xb_ip: int):
        """The variant's uops in program order, or None when stale."""
        if self.lines is not None:
            return storage.read_lines(xb_ip, self.lines)
        return storage.read_variant(xb_ip, self.mask)

    def locate(self, storage: XbcStorage, xb_ip: int):
        """Current {order: (bank, way)} mapping, or None when stale."""
        if self.lines is not None:
            return storage.locate_lines(xb_ip, self.lines)
        return storage.probe(xb_ip, self.mask, self.length)

    def alive_length(self, storage: XbcStorage, xb_ip: int) -> Optional[int]:
        """Stored length, with :meth:`read`'s staleness rules, without
        materialising the uops."""
        lines = self.lines
        if lines is not None:
            total = 0
            order = 0
            for line in lines:
                if not line.resident or line.tag != xb_ip or line.order != order:
                    return None
                total += len(line.uops)
                order += 1
            return total
        return storage.variant_length(xb_ip, self.mask)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"XbVariant(mask={self.mask:#06b}, length={self.length})"


class XbtbEntry:
    """Per-XB prediction state."""

    __slots__ = (
        "xb_ip",
        "end_kind",
        "end_code",
        "taken_ptr",
        "nt_ptr",
        "bias",
        "promoted",
        "forward_xb_ip",
        "forward_len1",
        "variants",
        "stamp",
        "_vv_version",
        "_vv_len",
        "promo_fail",
    )

    def __init__(self, xb_ip: int, end_kind: Optional[InstrKind]) -> None:
        self.xb_ip = xb_ip
        self.end_kind = end_kind
        #: integer mirror of :attr:`end_kind` (-1 for ``None``) — the
        #: flat delivery loop dispatches on this with one int compare
        #: instead of enum identity checks.
        self.end_code = -1 if end_kind is None else KIND_CODE[end_kind]
        #: successor on the taken path (callee XB for calls).
        self.taken_ptr: Optional[XbPointer] = None
        #: fall-through successor (return-successor XB for calls).
        self.nt_ptr: Optional[XbPointer] = None
        self.bias = BiasCounter()
        #: promoted direction (§3.8), or None when not promoted.
        self.promoted: Optional[bool] = None
        #: end-IP of the combined XB this promoted XB was folded into.
        self.forward_xb_ip: Optional[int] = None
        #: uops of the following XB inside the combined XB.
        self.forward_len1: int = 0
        #: stored copies of this XB.
        self.variants: List[XbVariant] = []
        #: LRU stamp (maintained by the owning table).
        self.stamp = 0
        #: memo of the last :meth:`valid_variants` pass — valid while
        #: the storage version and the variant count are unchanged.
        self._vv_version = -1
        self._vv_len = -1
        #: memo of the last failed promotion attempt: ``(key, code)``
        #: where *key* captures every input the attempt read (see
        #: :meth:`repro.xbc.promotion.Promoter._try_promote`).
        self.promo_fail = None

    # ------------------------------------------------------------------

    def pointer_for(self, taken: bool) -> Optional[XbPointer]:
        """Successor pointer for a resolved direction."""
        return self.taken_ptr if taken else self.nt_ptr

    def set_pointer(self, taken: bool, pointer: XbPointer) -> None:
        """Install/overwrite the successor pointer for a direction."""
        if taken:
            self.taken_ptr = pointer
        else:
            self.nt_ptr = pointer

    def demote(self) -> None:
        """§3.8: de-promote a misbehaving promoted branch."""
        self.promoted = None
        self.forward_xb_ip = None
        self.forward_len1 = 0

    def valid_variants(self, storage: XbcStorage) -> List[XbVariant]:
        """Variants still fully resident, dropping stale records.

        Memoized on the storage version: variants can only go stale
        through a storage mutation (which bumps the version), and any
        variant-list mutation changes the list length, so an unchanged
        (version, count) pair means the last validation still holds.
        """
        variants = self.variants
        version = storage.set_versions[
            (self.xb_ip >> 1) & storage._set_mask
        ]
        if version == self._vv_version and len(variants) == self._vv_len:
            return variants
        alive: List[XbVariant] = []
        for variant in self.variants:
            length = variant.alive_length(storage, self.xb_ip)
            if length is not None and length >= variant.length:
                alive.append(variant)
        self.variants = alive
        self._vv_version = version
        self._vv_len = len(alive)
        return alive

    def variant_covering(
        self, storage: XbcStorage, offset: int
    ) -> Optional[XbVariant]:
        """A live variant able to serve an *offset*-uop entry."""
        best: Optional[XbVariant] = None
        for variant in self.valid_variants(storage):
            if variant.length >= offset:
                if best is None or variant.length < best.length:
                    best = variant  # smallest sufficient variant
        return best


class Xbtb:
    """Set-associative table of :class:`XbtbEntry` (8K entries in §4)."""

    def __init__(self, config: XbcConfig) -> None:
        config.validate()
        self.config = config
        self.num_sets = config.xbtb_entries // config.xbtb_assoc
        log2_exact(self.num_sets)
        self.assoc = config.xbtb_assoc
        self._set_mask = self.num_sets - 1
        self._sets: List[Dict[int, XbtbEntry]] = [
            {} for _ in range(self.num_sets)
        ]
        self._clock = 0
        self.lookups = 0
        self.hits = 0
        self.allocations = 0
        self.evictions = 0

    def _set_for(self, xb_ip: int) -> int:
        return (xb_ip >> 1) & self._set_mask

    def lookup(self, xb_ip: int) -> Optional[XbtbEntry]:
        """Entry for the XB ending at *xb_ip*; refreshes LRU on hit."""
        self.lookups += 1
        entry = self._sets[(xb_ip >> 1) & self._set_mask].get(xb_ip)
        if entry is not None:
            self.hits += 1
            self._clock += 1
            entry.stamp = self._clock
        return entry

    def peek(self, xb_ip: int) -> Optional[XbtbEntry]:
        """Lookup without statistics or LRU side effects."""
        return self._sets[self._set_for(xb_ip)].get(xb_ip)

    def get_or_create(
        self, xb_ip: int, end_kind: Optional[InstrKind]
    ) -> XbtbEntry:
        """Entry for *xb_ip*, allocating (with LRU eviction) if needed."""
        index = self._set_for(xb_ip)
        entries = self._sets[index]
        self._clock += 1
        entry = entries.get(xb_ip)
        if entry is not None:
            entry.stamp = self._clock
            if entry.end_kind is None and end_kind is not None:
                entry.end_kind = end_kind
                entry.end_code = KIND_CODE[end_kind]
            return entry
        if len(entries) >= self.assoc:
            victim = min(entries, key=lambda ip: entries[ip].stamp)
            del entries[victim]
            self.evictions += 1
        entry = XbtbEntry(xb_ip, end_kind)
        entry.stamp = self._clock
        entries[xb_ip] = entry
        self.allocations += 1
        return entry

    @property
    def hit_rate(self) -> float:
        """Lookup hit fraction (1.0 before any lookup)."""
        if self.lookups == 0:
            return 1.0
        return self.hits / self.lookups

    def resident_entries(self) -> int:
        """Number of live entries (capacity audit)."""
        return sum(len(entries) for entries in self._sets)
