"""Canonical extended-block stream of a trace.

An XB ends on a conditional branch, an indirect branch/call, a return,
a direct call, or the 16-uop quota (§3.1 and §3.5).  Because the XBC
identifies an XB by the IP of its *ending* instruction, quota splits
must be entry-point independent or the structure would re-grow the
redundancy it exists to remove.  We therefore anchor quota chunking at
the ending branch and cut backward: the last chunk is the maximal
suffix of at most 16 uops, the chunk before it ends immediately
upstream, and so on.  Any dynamic entry into the run then lands inside
the same canonical chunks regardless of where the run was entered.

Precomputing this stream once per trace gives every XBC simulation the
ground truth to verify its XBTB pointers against, and pins fill-unit
and delivery-mode views of XB identity to one definition.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.isa.instruction import InstrKind
from repro.isa.uop import uops_of
from repro.trace.record import Trace


class XbStep(NamedTuple):
    """One dynamic occurrence of an extended block.

    ``uops`` holds exactly the uops executed this occurrence, from the
    entry point to the ending instruction inclusive — i.e. the last
    ``len(uops)`` uops of the (possibly longer) stored XB.  ``end_kind``
    is ``None`` for quota-split blocks (single fall-through successor).
    """

    end_ip: int
    end_kind: Optional[InstrKind]
    uops: Tuple[int, ...]
    taken: bool
    next_ip: int
    first_record: int
    last_record: int

    @property
    def entry_offset(self) -> int:
        """OFFSET of this occurrence: uops counted back from the end."""
        return len(self.uops)


#: XB-ending kinds, precomputed: the property chain is hot in the
#: one-pass-per-trace stream builder.
_XB_ENDERS = frozenset(kind for kind in InstrKind if kind.ends_xb)


def build_xb_stream(trace: Trace, quota: int = 16) -> List[XbStep]:
    """Partition a trace into its canonical XB occurrences."""
    records = trace.records
    steps: List[XbStep] = []
    run: List[int] = []
    for index, record in enumerate(records):
        run.append(index)
        if record.instr.kind in _XB_ENDERS:
            _chunk_run(records, run, quota, steps)
            run = []
    if run:
        # Trace ended mid-run (budget expiry): close it as a quota block.
        _chunk_run(records, run, quota, steps)
    return steps


def _chunk_run(records, run: List[int], quota: int, steps: List[XbStep]) -> None:
    """Backward-chunk one branch-free run and append its steps in order."""
    # Walk backward accumulating whole instructions into <=quota chunks.
    chunks: List[List[int]] = []
    current: List[int] = []
    current_uops = 0
    for index in reversed(run):
        n = records[index].instr.num_uops
        if current and current_uops + n > quota:
            current.reverse()
            chunks.append(current)
            current = []
            current_uops = 0
        current.append(index)
        current_uops += n
    current.reverse()
    chunks.append(current)
    chunks.reverse()

    last_chunk = len(chunks) - 1
    for chunk_pos, chunk in enumerate(chunks):
        end_index = chunk[-1]
        end_record = records[end_index]
        uops: List[int] = []
        for index in chunk:
            instr = records[index].instr
            uops.extend(uops_of(instr.ip, instr.num_uops))
        if chunk_pos == last_chunk and end_record.instr.kind in _XB_ENDERS:
            end_kind: Optional[InstrKind] = end_record.instr.kind
            taken = end_record.taken
        else:
            end_kind = None  # quota split: fall-through successor
            taken = False
        steps.append(
            XbStep(
                end_ip=end_record.ip,
                end_kind=end_kind,
                uops=tuple(uops),
                taken=taken,
                next_ip=end_record.next_ip,
                first_record=chunk[0],
                last_record=end_index,
            )
        )
