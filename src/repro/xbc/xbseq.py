"""Canonical extended-block stream of a trace.

An XB ends on a conditional branch, an indirect branch/call, a return,
a direct call, or the 16-uop quota (§3.1 and §3.5).  Because the XBC
identifies an XB by the IP of its *ending* instruction, quota splits
must be entry-point independent or the structure would re-grow the
redundancy it exists to remove.  We therefore anchor quota chunking at
the ending branch and cut backward: the last chunk is the maximal
suffix of at most 16 uops, the chunk before it ends immediately
upstream, and so on.  Any dynamic entry into the run then lands inside
the same canonical chunks regardless of where the run was entered.

Precomputing this stream once per trace gives every XBC simulation the
ground truth to verify its XBTB pointers against, and pins fill-unit
and delivery-mode views of XB identity to one definition.

The builder works on the trace's packed columns.  A branch-free run is
fully determined by its static instruction sequence, so its chunking
(offsets, uop tuples, reversed tuples) is computed once per distinct
run and replayed for every later dynamic occurrence; the whole stream
is additionally memoized per ``(trace, quota)``.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.isa.instruction import KIND_CODE, KIND_ENDS_XB, KINDS_BY_CODE, InstrKind
from repro.isa.uop import uops_of
from repro.trace.record import Trace


class XbStep(NamedTuple):
    """One dynamic occurrence of an extended block.

    ``uops`` holds exactly the uops executed this occurrence, from the
    entry point to the ending instruction inclusive — i.e. the last
    ``len(uops)`` uops of the (possibly longer) stored XB.  ``end_kind``
    is ``None`` for quota-split blocks (single fall-through successor).
    ``rev`` is ``uops`` reversed — the order the XBC stores lines in —
    precomputed because delivery-mode verification consumes it on every
    occurrence.
    """

    end_ip: int
    end_kind: Optional[InstrKind]
    uops: Tuple[int, ...]
    taken: bool
    next_ip: int
    first_record: int
    last_record: int
    rev: Tuple[int, ...] = ()

    @property
    def entry_offset(self) -> int:
        """OFFSET of this occurrence: uops counted back from the end."""
        return len(self.uops)


class XbFlatColumns(NamedTuple):
    """Column-oriented view of the XB stream for the flat delivery loop.

    The scalar fields of every :class:`XbStep` unpacked into parallel
    packed arrays, plus the uop/rev tuples as plain lists.  The tuple
    objects are the *same* objects the :func:`build_xb_stream` steps
    hold, so identity-keyed memos (pointer probe caches, tail memos)
    work interchangeably across both views.
    """

    end_ips: array        # "q": IP of each step's ending instruction
    kind_codes: array     # "b": KIND_CODE of end_kind, -1 for None
    takens: array         # "b": 1 when the ending branch was taken
    uops: List[Tuple[int, ...]]   # per-step uop uids, program order
    revs: List[Tuple[int, ...]]   # per-step uop uids, reversed


def xb_flat_columns(trace: Trace, quota: int = 16) -> XbFlatColumns:
    """Columnar rendering of :func:`build_xb_stream`, memoized per trace."""
    memo_key = ("xb_flat", quota)
    derived = trace._derived
    cached = derived.get(memo_key)
    if cached is not None:
        return cached
    steps = build_xb_stream(trace, quota)
    kind_code = KIND_CODE
    cols = XbFlatColumns(
        end_ips=array("q", (s.end_ip for s in steps)),
        kind_codes=array(
            "b",
            (-1 if s.end_kind is None else kind_code[s.end_kind] for s in steps),
        ),
        takens=array("b", (1 if s.taken else 0 for s in steps)),
        uops=[s.uops for s in steps],
        revs=[s.rev for s in steps],
    )
    derived[memo_key] = cols
    return cols


class _ChunkTemplate(NamedTuple):
    """Static rendering of one chunk of a branch-free run."""

    rel_first: int
    rel_end: int
    end_ip: int
    uops: Tuple[int, ...]
    rev: Tuple[int, ...]


def build_xb_stream(trace: Trace, quota: int = 16) -> List[XbStep]:
    """Partition a trace into its canonical XB occurrences."""
    memo_key = ("xb_stream", quota)
    derived = trace._derived
    cached = derived.get(memo_key)
    if cached is not None:
        return cached

    ips = trace.ips
    kinds = trace.kinds
    takens = trace.takens
    next_ips = trace.next_ips
    nuops = trace.nuops
    ends_xb = KIND_ENDS_XB
    kinds_by_code = KINDS_BY_CODE
    ips_mv = memoryview(ips)

    steps: List[XbStep] = []
    append_step = steps.append
    # One template per distinct static run, keyed by the run's raw ip
    # bytes (same ips => same instructions => same chunking).
    templates: Dict[bytes, Tuple[Tuple[_ChunkTemplate, ...], bool]] = {}

    start = 0
    n = len(ips)
    for index in range(n):
        if ends_xb[kinds[index]]:
            key = ips_mv[start : index + 1].tobytes()
            entry = templates.get(key)
            if entry is None:
                entry = (
                    _chunk_templates(ips, nuops, quota, start, index),
                    True,
                )
                templates[key] = entry
            chunks = entry[0]
            last = len(chunks) - 1
            for pos, chunk in enumerate(chunks):
                end_abs = start + chunk.rel_end
                if pos == last:
                    append_step(XbStep(
                        end_ip=chunk.end_ip,
                        end_kind=kinds_by_code[kinds[end_abs]],
                        uops=chunk.uops,
                        taken=bool(takens[end_abs]),
                        next_ip=next_ips[end_abs],
                        first_record=start + chunk.rel_first,
                        last_record=end_abs,
                        rev=chunk.rev,
                    ))
                else:
                    append_step(XbStep(
                        end_ip=chunk.end_ip,
                        end_kind=None,
                        uops=chunk.uops,
                        taken=False,
                        next_ip=next_ips[end_abs],
                        first_record=start + chunk.rel_first,
                        last_record=end_abs,
                        rev=chunk.rev,
                    ))
            start = index + 1
    if start < n:
        # Trace ended mid-run (budget expiry): close it as a quota block.
        index = n - 1
        for chunk in _chunk_templates(ips, nuops, quota, start, index):
            end_abs = start + chunk.rel_end
            append_step(XbStep(
                end_ip=chunk.end_ip,
                end_kind=None,
                uops=chunk.uops,
                taken=False,
                next_ip=next_ips[end_abs],
                first_record=start + chunk.rel_first,
                last_record=end_abs,
                rev=chunk.rev,
            ))

    derived[memo_key] = steps
    return steps


def _chunk_templates(
    ips, nuops, quota: int, start: int, end: int
) -> Tuple[_ChunkTemplate, ...]:
    """Backward-chunk the run ``[start..end]`` into static templates."""
    # Walk backward accumulating whole instructions into <=quota chunks.
    chunks: List[List[int]] = []
    current: List[int] = []
    current_uops = 0
    for index in range(end, start - 1, -1):
        n = nuops[index]
        if current and current_uops + n > quota:
            current.reverse()
            chunks.append(current)
            current = []
            current_uops = 0
        current.append(index)
        current_uops += n
    current.reverse()
    chunks.append(current)
    chunks.reverse()

    templates: List[_ChunkTemplate] = []
    for chunk in chunks:
        end_index = chunk[-1]
        uops: List[int] = []
        for index in chunk:
            uops.extend(uops_of(ips[index], nuops[index]))
        uops_t = tuple(uops)
        templates.append(_ChunkTemplate(
            rel_first=chunk[0] - start,
            rel_end=end_index - start,
            end_ip=ips[end_index],
            uops=uops_t,
            rev=uops_t[::-1],
        ))
    return tuple(templates)
