"""XB pointers — the XBTB's unit of indirection (§3.5).

A pointer carries everything needed to locate the next XB in the XBC:

- ``xb_ip`` — the IP of the target XB's *ending* instruction (its index
  and tag in the data array);
- ``mask`` — the BANK_MASK vector naming the banks holding the target
  variant (repaired by set search when stale, §3.9);
- ``offset`` — the OFFSET: how many uops, counted backward from the
  XB's end, this entry point covers.

Pointers are mutable on purpose: set search and promotion forwarding
update ``mask`` in place, which transparently repairs every XBTB entry
sharing the pointer object.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class XbPointer:
    """Locator of one entry point into one stored XB."""

    xb_ip: int
    mask: int
    offset: int
    #: memo of the last verified probe through this pointer, keyed by
    #: (storage version, mask, offset) plus the identity of the
    #: expected-content tuple (held strongly so the identity test is
    #: sound).  A loop that refetches the same XB with an unchanged
    #: storage skips the content re-verification entirely.
    cache_key: tuple = field(default=(None,), compare=False, repr=False)
    cache_rev: object = field(default=None, compare=False, repr=False)
    cache_map: dict = field(  # type: ignore[assignment]
        default=None, compare=False, repr=False
    )
    #: OR of the cached mapping's bank bits — one AND decides the
    #: no-conflict arbitration fast path without walking the mapping.
    cache_bits: int = field(default=0, compare=False, repr=False)
    #: whether the cached mapping's orders sit in pairwise-distinct
    #: banks (a bank serves one line per cycle; a same-bank pair must
    #: go through the serializing arbitration loop).
    cache_clean: bool = field(default=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if self.offset < 1:
            raise ValueError(f"pointer offset must be >= 1, got {self.offset}")
        if self.mask < 0:
            raise ValueError("mask must be non-negative")

    def matches(self, xb_ip: int, offset: int) -> bool:
        """Whether this pointer denotes the given (XB, entry) pair."""
        return self.xb_ip == xb_ip and self.offset == offset

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"XbPointer(ip={self.xb_ip:#x}, mask={self.mask:#06b}, "
            f"offset={self.offset})"
        )
