"""The XBC frontend (§3.5–§3.10): the paper's Figure 6 put together.

Delivery mode follows XBTB pointers: each cycle the XBTB supplies up to
``xbs_per_cycle`` pointers (each conditional XB costs one XBP
prediction; promoted XBs cost none), a priority encoder assigns banks —
first XB first, the second XB fetching only until its first bank
conflict, with the conflicted remainder deferred to the next cycle —
and the out-mux reorders the reverse-stored uops.  XBTB misses,
unresolvable targets, and XBC misses that survive set search switch the
frontend to build mode; there the shared IC/BTB/decode engine supplies
uops while the XFU builds XBs, and the frontend switches back once the
next XB is reachable through the XBTB with its lines resident.

Bookkeeping discipline: every *transition* between consecutive XBs
(prediction consumption, bias-counter update, XRSB push/pop, XiBTB
training) happens exactly once, whichever mode processes it; gshare is
trained per conditional branch exactly once — by the build engine when
the branch's uops came from the IC, by the transition logic when they
came from the XBC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.branch.bias import BIAS_MAX, PROMOTE_HIGH, PROMOTE_LOW
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine, reference_frontends_enabled
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import CODE_COND_BRANCH, InstrKind
from repro.isa.uop import UID_INDEX_BITS, uop_uid_ip, uop_uid_index
from repro.trace.record import Trace
from repro.xbc.config import XbcConfig
from repro.xbc.fill import XbcFillUnit
from repro.xbc.pointer import XbPointer
from repro.xbc.promotion import Promoter
from repro.xbc.storage import XbcStorage
from repro.xbc.xbseq import XbStep, build_xb_stream, xb_flat_columns
from repro.xbc.xbtb import Xbtb, XbtbEntry


@dataclass(slots=True)
class FetchUnit:
    """One XBC fetch in flight: a located XB entry point."""

    xb_ip: int
    mask: int
    offset: int                     # uops still to fetch, from the end
    rev_expected: Sequence[int]     # expected uops, distance order
    advance_steps: int              # steps completed when this unit finishes
    source_ptr: Optional[XbPointer] = None  # repaired in place by set search
    delivered: int = 0              # uops already delivered (partial fetches)
    counted: bool = False           # structure_lookups already incremented
    hit_counted: bool = False       # structure_hits already incremented
    #: last successful probe, valid while the storage version is
    #: unchanged (deferral retries re-fetch the same lines; skip the
    #: content re-verification when nothing mutated in between)
    cached_map: Optional[dict] = None
    cached_version: int = -1
    #: OR of the cached mapping's bank bits — one AND decides the
    #: no-conflict arbitration fast path
    cached_bits: int = 0
    #: fast path is only sound when the mapping's orders sit in
    #: pairwise-distinct banks (a bank serves one line per cycle, so a
    #: same-bank pair must go through the serializing slow loop)
    cached_clean: bool = False


class _Run:
    """All mutable state of one simulation (one trace, one frontend)."""

    def __init__(self) -> None:
        self.trace: Optional[Trace] = None
        self.steps: List[XbStep] = []
        self.n_steps = 0
        self.stats: FrontendStats = None  # type: ignore[assignment]
        self.flow: UopFlow = None  # type: ignore[assignment]
        self.gshare: GsharePredictor = None  # type: ignore[assignment]
        self.xibtb: IndirectPredictor = None  # type: ignore[assignment]
        self.xrsb: ReturnStackBuffer = None  # type: ignore[assignment]
        self.engine: BuildEngine = None  # type: ignore[assignment]
        self.storage: XbcStorage = None  # type: ignore[assignment]
        self.xbtb: Xbtb = None  # type: ignore[assignment]
        self.fill: XbcFillUnit = None  # type: ignore[assignment]
        self.promoter: Promoter = None  # type: ignore[assignment]

        self.si = 0            # next step to cover
        self.consumed = 0      # uops of steps[si] already covered (split chains)
        self.pos = 0           # record index (build mode)
        self.delivery = False
        self.cur_entry: Optional[XbtbEntry] = None
        self.last_taken = False
        self.last_in_build = True
        self.last_mask = 0     # previous XB's banks (smart placement)
        self.a_done = False    # transition bookkeeping for steps[si] done
        self.link_info: Tuple[Optional[XbtbEntry], bool] = (None, False)
        #: indirect-ended entry whose XiBTB payload the next build
        #: finalize should (re)train with the fill unit's real pointer
        self.xibtb_source: Optional[XbtbEntry] = None
        self.resolved: Optional[Tuple[str, Optional[FetchUnit]]] = None
        self.pending: Optional[FetchUnit] = None
        self.max_xb = 0        # hoisted XbcConfig.max_xb_uops
        #: (id(step.uops), consumed) -> (tail, tail reversed).  The memo
        #: holds the tail tuples alive, so a split-chain occurrence
        #: reuses ONE tuple object per (static chunk, consumed) pair —
        #: which is what lets the pointer-level probe memo hit on the
        #: identity compare of rev_expected.
        self.tails: dict = {}
        #: (id(seq), offset) -> reversed prefix of seq.  Keys are only
        #: ever step.uops tuples or memoized tails (both run-lifetime
        #: objects), so the ids are stable.
        self.rev_memo: dict = {}
        #: (xb_ip, offset, id(expected)) -> (storage version, mask or
        #: None): the outcome of one payload resolution, reusable while
        #: the storage is unchanged (the resolution is a pure function
        #: of the version; its heal side effects are idempotent).
        self.payload_memo: dict = {}
        #: (xb_ip, mask, offset, id(expected)) -> (set version, map):
        #: probe memo for pointer-less fetch units (combined XBs),
        #: which have no XbPointer to hang the cache on.
        self.probe_memo: dict = {}
        #: strong refs pinning every tuple whose id() is (or may become)
        #: a memo key but that no run-lifetime structure holds — the
        #: trimmed rev_expected of partial fetches.  Without the pin the
        #: tuple can be collected and its id reused by a different
        #: tuple, turning a memo hit into silent corruption.
        self.pins: list = []


class XbcFrontend(FrontendModel):
    """The eXtended Block Cache frontend."""

    name = "xbc"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        xbc_config: Optional[XbcConfig] = None,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        xbc_config = xbc_config if xbc_config is not None else XbcConfig()
        xbc_config.validate()
        self.xbc_config = xbc_config

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        """Simulate the trace through the XBC frontend."""
        if reference_frontends_enabled():
            return self._run_reference(trace, cycle_log)
        return self._run_flat(trace, cycle_log)

    def _init_run(self, trace: Trace) -> _Run:
        """Fresh per-simulation state, shared by both implementations."""
        config = self.config
        xc = self.xbc_config
        r = _Run()
        r.trace = trace
        r.steps = build_xb_stream(trace, xc.max_xb_uops)
        r.n_steps = len(r.steps)
        r.stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        r.flow = UopFlow(config, r.stats)
        r.gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        r.xibtb = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        r.xrsb = ReturnStackBuffer(xc.xrsb_depth)
        r.engine = BuildEngine(
            config=config,
            stats=r.stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=r.gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=ReturnStackBuffer(config.rsb_depth),
            indirect=IndirectPredictor(
                config.indirect_entries, config.indirect_history_bits
            ),
        )
        r.storage = XbcStorage(xc)
        r.xbtb = Xbtb(xc)
        r.fill = XbcFillUnit(xc, r.storage, r.xbtb, r.stats)
        r.promoter = Promoter(xc, r.storage, r.xbtb, r.stats)
        r.max_xb = xc.max_xb_uops
        return r

    def _finish_run(self, r: _Run) -> FrontendStats:
        """Run epilogue: queue drain, capacity audits, conservation."""
        r.flow.drain_all()
        r.stats.extra["xbc_redundancy_x1000"] = int(r.storage.redundancy() * 1000)
        r.stats.extra["xbc_resident_uops"] = r.storage.resident_uops()
        r.stats.extra["xbc_evictions"] = r.storage.evictions
        r.stats.extra["xbc_gc_evictions"] = r.storage.gc_evictions
        r.stats.extra["xbc_relocations"] = r.storage.relocations
        r.stats.extra["xbtb_entries"] = r.xbtb.resident_entries()
        r.stats.verify_conservation(r.trace.total_uops)
        return r.stats

    def _run_reference(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        """The structured implementation (``REPRO_REFERENCE_FRONTEND=1``)."""
        r = self._init_run(trace)
        stats = r.stats
        flow = r.flow
        width = flow.renamer_width
        n_steps = r.n_steps
        depth = flow.depth
        max_xb = r.max_xb
        while r.si < n_steps:
            stats.cycles += 1
            # inline flow.drain(): one renamer cycle
            occ = flow.occupancy
            taken = occ if occ < width else width
            occ -= taken
            flow.occupancy = occ
            stats.retired_uops += taken
            if r.delivery:
                deficit = max_xb - (depth - occ)
                if deficit > 0:
                    # Queue lacks room for even one XB: nothing can be
                    # fetched until the renamer drains `deficit` more
                    # uops.  Those cycles are pure full-width drains —
                    # fast-forward them in one step (cycle-exact) when
                    # no per-cycle log is requested.
                    stats.delivery_cycles += 1
                    if cycle_log is not None:
                        cycle_log.append(0)
                        continue
                    extra = (deficit + width - 1) // width - 1
                    if extra > 0 and occ >= extra * width:
                        stats.cycles += extra
                        stats.retired_uops += extra * width
                        flow.occupancy = occ - extra * width
                        stats.delivery_cycles += extra
                    continue
                if cycle_log is None:
                    self._delivery_cycle(r)
                else:
                    before = stats.uops_from_ic + stats.uops_from_structure
                    self._delivery_cycle(r)
                    cycle_log.append(
                        stats.uops_from_ic + stats.uops_from_structure - before
                    )
            else:
                if cycle_log is None:
                    self._build_cycle(r)
                else:
                    before = stats.uops_from_ic + stats.uops_from_structure
                    self._build_cycle(r)
                    cycle_log.append(
                        stats.uops_from_ic + stats.uops_from_structure - before
                    )
        return self._finish_run(r)

    # ------------------------------------------------------------------
    # flat path
    # ------------------------------------------------------------------

    def _run_flat(
        self, trace: Trace, cycle_log: Optional[List[int]] = None
    ) -> FrontendStats:
        """Packed-state rewrite of the simulation loop (default path).

        One fused loop owns cycle accounting, delivery-mode transition
        resolution, and the data-array access; all per-cycle state lives
        in locals and the step stream is consumed through the columnar
        view of :func:`xb_flat_columns`.  The dominant delivery case —
        a full-shape pointer whose probe cache is valid and whose banks
        are conflict-free — runs without allocating a :class:`FetchUnit`
        at all.  Cold work (build mode, indirect/return transitions,
        combined XBs, deferrals) goes through the same helper methods as
        the reference implementation, with the hot locals synced into
        the :class:`_Run` around each call.
        """
        xc = self.xbc_config
        r = self._init_run(trace)
        stats = r.stats
        flow = r.flow
        storage = r.storage
        xbtb = r.xbtb

        cols = xb_flat_columns(trace, xc.max_xb_uops)
        s_end = cols.end_ips
        s_taken = cols.takens
        s_uops = cols.uops
        s_rev = cols.revs
        steps = r.steps
        n_steps = r.n_steps

        logging = cycle_log is not None
        log_append = cycle_log.append if logging else None

        # hoisted structure internals (the flat loop is single-threaded
        # with the objects it mutates; private handles are safe here)
        set_versions = storage.set_versions
        set_mask = storage._set_mask
        sets = storage._sets
        probe = storage.probe
        x_sets = xbtb._sets
        x_set_mask = xbtb._set_mask
        probe_memo = r.probe_memo
        rev_memo = r.rev_memo
        pins_append = r.pins.append
        tail_of = self._tail_of
        gshare_update = r.gshare.update
        try_promote = r.promoter._try_promote

        width = flow.renamer_width
        depth = flow.depth
        max_xb = r.max_xb
        xbs_per_cycle = xc.xbs_per_cycle
        line_uops = xc.line_uops
        enable_promotion = xc.enable_promotion
        enable_set_search = xc.enable_set_search
        enable_placement = xc.enable_dynamic_placement
        move_threshold = xc.conflict_move_threshold
        deferrals = storage._deferrals
        relocate_line = storage.relocate_line
        mispredict_penalty = self.config.mispredict_penalty
        uid_shift = UID_INDEX_BITS
        code_cond = CODE_COND_BRANCH

        # hot state, hoisted out of _Run
        si = 0
        consumed = 0
        occ = 0
        delivery = False
        cur_entry: Optional[XbtbEntry] = None
        last_taken = False
        last_in_build = True
        last_mask = 0
        a_done = False
        link_entry: Optional[XbtbEntry] = None
        link_taken = False
        xibtb_src: Optional[XbtbEntry] = None
        resolved: Optional[Tuple[str, Optional[FetchUnit]]] = None
        pending: Optional[FetchUnit] = None

        # statistics deltas, merged into `stats` once at the end (helper
        # calls add to the stats object directly; everything is additive
        # so the split is exact)
        d_cycles = 0
        d_retired = 0
        d_delivery = 0
        d_lookups = 0
        d_hits = 0
        d_from_structure = 0
        d_fetch_cycles = 0
        d_cond_pred = 0
        d_cond_misp = 0
        d_comb = 0
        d_deferrals = 0

        while si < n_steps:
            d_cycles += 1
            # inline flow.drain(): one renamer cycle
            t = occ if occ < width else width
            occ -= t
            d_retired += t

            if not delivery:
                # ---- build cycle: shared engine machinery (cold) ----
                r.si = si
                r.consumed = consumed
                r.cur_entry = cur_entry
                r.last_taken = last_taken
                r.last_in_build = last_in_build
                r.last_mask = last_mask
                r.a_done = a_done
                r.link_info = (link_entry, link_taken)
                r.xibtb_source = xibtb_src
                flow.occupancy = occ
                if logging:
                    before = (
                        stats.uops_from_ic
                        + stats.uops_from_structure
                        + d_from_structure
                    )
                    self._build_cycle(r)
                    log_append(
                        stats.uops_from_ic
                        + stats.uops_from_structure
                        + d_from_structure
                        - before
                    )
                else:
                    self._build_cycle(r)
                si = r.si
                consumed = r.consumed
                cur_entry = r.cur_entry
                last_taken = r.last_taken
                last_in_build = r.last_in_build
                last_mask = r.last_mask
                a_done = r.a_done
                link_entry, link_taken = r.link_info
                xibtb_src = r.xibtb_source
                delivery = r.delivery
                occ = flow.occupancy
                continue

            deficit = max_xb - (depth - occ)
            if deficit > 0:
                # Queue lacks room for even one XB; fast-forward the
                # pure-drain cycles in one step (cycle-exact) unless a
                # per-cycle log is being collected.
                d_delivery += 1
                if logging:
                    log_append(0)
                    continue
                extra = (deficit + width - 1) // width - 1
                if extra > 0 and occ >= extra * width:
                    d_cycles += extra
                    d_retired += extra * width
                    occ -= extra * width
                    d_delivery += extra
                continue

            # ---- one delivery cycle ----
            d_delivery += 1
            if logging:
                before = (
                    stats.uops_from_ic
                    + stats.uops_from_structure
                    + d_from_structure
                )
            banks_used = 0
            delivered_any = False
            slots = xbs_per_cycle
            unit = pending
            pending = None
            while slots > 0 and si < n_steps:
                if unit is None:
                    if resolved is not None:
                        tag, unit = resolved
                        resolved = None
                        if tag == "build":
                            if delivered_any or slots < xbs_per_cycle:
                                resolved = ("build", None)
                                break
                            r.si = si
                            r.consumed = consumed
                            self._switch_to_build(r)
                            delivery = False
                            break
                        # tag == "unit": fall through to the data array
                    else:
                        # ---- transition resolution, inline ----
                        entry = cur_entry
                        ptr = None
                        shape = 0  # 0 none, 1 full, 2 prefix
                        mispredict = False
                        if entry is not None:
                            if consumed:
                                remaining, rev = tail_of(r, steps[si], consumed)
                            else:
                                remaining = s_uops[si]
                                rev = s_rev[si]
                            ecode = entry.end_code
                            if ecode < 0:  # quota split: plain fall-through
                                a_done = True
                                link_entry = entry
                                link_taken = False
                                ptr = entry.nt_ptr
                            elif ecode == code_cond and entry.promoted is None:
                                a_done = True
                                actual = last_taken
                                link_entry = entry
                                link_taken = actual
                                if not last_in_build:
                                    d_cond_pred += 1
                                    if not gshare_update(entry.xb_ip, actual):
                                        d_cond_misp += 1
                                        mispredict = True
                                # promoter.on_outcome, inline
                                bias = entry.bias
                                value = bias.value
                                if actual:
                                    if value < BIAS_MAX:
                                        value = bias.value = value + 1
                                elif value > 0:
                                    value = bias.value = value - 1
                                if enable_promotion and (
                                    value <= PROMOTE_LOW or value >= PROMOTE_HIGH
                                ):
                                    try_promote(entry)
                                ptr = entry.taken_ptr if actual else entry.nt_ptr
                            else:
                                r.si = si
                                r.consumed = consumed
                                r.last_taken = last_taken
                                r.last_in_build = last_in_build
                                r.xibtb_source = xibtb_src
                                ptr, cause = self._transition(
                                    r, entry, steps[si], remaining,
                                    in_build=False,
                                )
                                a_done = r.a_done
                                link_entry, link_taken = r.link_info
                                xibtb_src = r.xibtb_source
                                mispredict = cause is not None
                            # _validate_ptr, inline
                            if ptr is not None:
                                rem = len(remaining)
                                p_off = ptr.offset
                                if ptr.xb_ip == s_end[si] and p_off == rem:
                                    shape = 1
                                elif (
                                    0 < p_off < rem
                                    and remaining[p_off - 1] >> uid_shift
                                    == ptr.xb_ip
                                    and remaining[p_off] >> uid_shift
                                    != ptr.xb_ip
                                ):
                                    shape = 2
                        if mispredict:
                            stats.add_penalty("mispredict", mispredict_penalty)
                        if shape == 0:
                            # no usable pointer: re-steer into build mode
                            if delivered_any or slots < xbs_per_cycle:
                                resolved = ("build", None)
                                break
                            r.si = si
                            r.consumed = consumed
                            self._switch_to_build(r)
                            delivery = False
                            break
                        if mispredict:
                            # charged re-steer; corrected unit next cycle
                            r.si = si
                            r.consumed = consumed
                            resolved = ("unit", self._make_unit(
                                r, ptr, steps[si], remaining,
                                "full" if shape == 1 else "prefix", rev,
                            ))
                            break
                        if shape == 2:
                            r.si = si
                            r.consumed = consumed
                            unit = self._make_unit(
                                r, ptr, steps[si], remaining, "prefix", rev
                            )
                            # falls through to the data array
                        else:
                            p_ip = ptr.xb_ip
                            xset = x_sets[(p_ip >> 1) & x_set_mask]
                            target = xset.get(p_ip)
                            if (
                                target is not None
                                and target.promoted is not None
                                and target.promoted == (s_taken[si] == 1)
                                and si + 1 < n_steps
                            ):
                                # ---- combined-XB upgrade (§3.8), inline:
                                # same decision chain as _make_unit, with
                                # a unit-less delivery when the combined
                                # variant's mapping is cached and clean ----
                                f_ip = target.forward_xb_ip
                                nxt_uops = s_uops[si + 1]
                                variant = None
                                e1 = None
                                if (
                                    s_end[si + 1] == f_ip
                                    and len(nxt_uops) == target.forward_len1
                                ):
                                    e1 = x_sets[
                                        (f_ip >> 1) & x_set_mask
                                    ].get(f_ip)
                                    if e1 is not None:
                                        comb_offset = (
                                            rem + target.forward_len1
                                        )
                                        variant = e1.variant_covering(
                                            storage, comb_offset
                                        )
                                if variant is None:
                                    # no combined copy: plain full unit
                                    unit = FetchUnit(
                                        xb_ip=p_ip,
                                        mask=ptr.mask,
                                        offset=rem,
                                        rev_expected=rev,
                                        advance_steps=1,
                                        source_ptr=ptr,
                                    )
                                    # falls through to the data array
                                else:
                                    # on_outcome: taken == promoted here,
                                    # so only the bias update applies
                                    bias = target.bias
                                    value = bias.value
                                    if s_taken[si]:
                                        if value < BIAS_MAX:
                                            bias.value = value + 1
                                    elif value > 0:
                                        bias.value = value - 1
                                    d_comb += 1
                                    ckey = (
                                        id(remaining), id(nxt_uops), -1
                                    )
                                    crev = rev_memo.get(ckey)
                                    if crev is None:
                                        crev = (
                                            tuple(remaining) + nxt_uops
                                        )[::-1]
                                        rev_memo[ckey] = crev
                                    v_mask = variant.mask
                                    d_lookups += 1
                                    version = set_versions[
                                        (f_ip >> 1) & set_mask
                                    ]
                                    mkey = (
                                        f_ip, v_mask, comb_offset, id(crev)
                                    )
                                    hit = probe_memo.get(mkey)
                                    if (
                                        hit is not None
                                        and hit[0] == version
                                    ):
                                        mapping = hit[1]
                                        bits = hit[2]
                                        clean = hit[3]
                                    else:
                                        mapping = probe(
                                            f_ip, v_mask, comb_offset, crev
                                        )
                                        bits = 0
                                        clean = True
                                        if mapping is not None:
                                            for slot in mapping.values():
                                                b = 1 << slot[0]
                                                if bits & b:
                                                    clean = False
                                                bits |= b
                                            probe_memo[mkey] = (
                                                version, mapping,
                                                bits, clean,
                                            )
                                    if mapping is None:
                                        # miss: general path handles the
                                        # set-search/abort (re-probe is
                                        # pure, so the repeat is safe)
                                        unit = FetchUnit(
                                            xb_ip=f_ip,
                                            mask=v_mask,
                                            offset=comb_offset,
                                            rev_expected=crev,
                                            advance_steps=2,
                                            counted=True,
                                        )
                                        # falls through to the data array
                                    elif clean and not banks_used & bits:
                                        d_hits += 1
                                        banks_used |= bits
                                        # inline storage.touch()
                                        storage._clock += 1
                                        stamp = storage._clock
                                        set_lines = sets[
                                            (f_ip >> 1) & set_mask
                                        ]
                                        for bank, way in mapping.values():
                                            line = set_lines[bank][way]
                                            if line is not None:
                                                line.stamp = stamp
                                        d_from_structure += comb_offset
                                        occ += comb_offset
                                        delivered_any = True
                                        # commit: advance two steps, next
                                        # XBTB lookup (end-IP == f_ip)
                                        a_done = False
                                        link_entry = None
                                        link_taken = False
                                        xibtb_src = None
                                        last_in_build = False
                                        last_mask = v_mask
                                        last_taken = s_taken[si + 1] == 1
                                        si += 2
                                        consumed = 0
                                        xbtb.lookups += 1
                                        xbtb.hits += 1
                                        xbtb._clock += 1
                                        e1.stamp = xbtb._clock
                                        cur_entry = e1
                                        slots -= 1
                                        continue
                                    else:
                                        # dirty mapping or bank conflict
                                        d_hits += 1
                                        unit = FetchUnit(
                                            xb_ip=f_ip,
                                            mask=v_mask,
                                            offset=comb_offset,
                                            rev_expected=crev,
                                            advance_steps=2,
                                            counted=True,
                                            hit_counted=True,
                                            cached_map=mapping,
                                            cached_version=version,
                                            cached_bits=bits,
                                            cached_clean=clean,
                                        )
                            else:
                                # ---- unit-less fast path: full-shape
                                # pointer, probe cache, one-AND bank
                                # arbitration, whole-XB delivery ----
                                d_lookups += 1
                                p_mask = ptr.mask
                                version = set_versions[(p_ip >> 1) & set_mask]
                                if (
                                    ptr.cache_rev is rev
                                    and ptr.cache_key == (version, p_mask, rem)
                                ):
                                    mapping = ptr.cache_map
                                else:
                                    mapping = probe(p_ip, p_mask, rem, rev)
                                    if mapping is not None:
                                        bits = 0
                                        clean = True
                                        for slot in mapping.values():
                                            b = 1 << slot[0]
                                            if bits & b:
                                                clean = False
                                            bits |= b
                                        ptr.cache_key = (version, p_mask, rem)
                                        ptr.cache_rev = rev
                                        ptr.cache_map = mapping
                                        ptr.cache_bits = bits
                                        ptr.cache_clean = clean
                                if mapping is None:
                                    # XBC miss: set search, else build
                                    if enable_set_search:
                                        stats.bump("set_searches")
                                        repaired = storage.set_search(
                                            p_ip, rem, rev
                                        )
                                        if repaired is not None:
                                            ptr.mask = repaired[0]
                                            stats.bump("set_search_hits")
                                            stats.add_penalty("set_search", 1)
                                            pending = FetchUnit(
                                                xb_ip=p_ip,
                                                mask=repaired[0],
                                                offset=rem,
                                                rev_expected=rev,
                                                advance_steps=1,
                                                source_ptr=ptr,
                                                counted=True,
                                            )
                                            break
                                    r.si = si
                                    r.consumed = consumed
                                    self._switch_to_build(r)
                                    delivery = False
                                    break
                                d_hits += 1
                                bits = ptr.cache_bits
                                if ptr.cache_clean and not banks_used & bits:
                                    banks_used |= bits
                                    # inline storage.touch()
                                    storage._clock += 1
                                    stamp = storage._clock
                                    set_lines = sets[(p_ip >> 1) & set_mask]
                                    for bank, way in mapping.values():
                                        line = set_lines[bank][way]
                                        if line is not None:
                                            line.stamp = stamp
                                    d_from_structure += rem
                                    occ += rem
                                    delivered_any = True
                                    # commit: advance one step, next XBTB
                                    # lookup (committed end-IP == p_ip)
                                    a_done = False
                                    link_entry = None
                                    link_taken = False
                                    xibtb_src = None
                                    last_in_build = False
                                    last_mask = p_mask
                                    last_taken = s_taken[si] == 1
                                    si += 1
                                    consumed = 0
                                    xbtb.lookups += 1
                                    if target is not None:
                                        xbtb.hits += 1
                                        xbtb._clock += 1
                                        target.stamp = xbtb._clock
                                    cur_entry = target
                                    slots -= 1
                                    continue
                                # dirty mapping or bank conflict: hand off
                                # to the general arbitration path
                                unit = FetchUnit(
                                    xb_ip=p_ip,
                                    mask=p_mask,
                                    offset=rem,
                                    rev_expected=rev,
                                    advance_steps=1,
                                    source_ptr=ptr,
                                    counted=True,
                                    hit_counted=True,
                                    cached_map=mapping,
                                    cached_version=version,
                                    cached_bits=bits,
                                    cached_clean=ptr.cache_clean,
                                )

                # ---- data-array access for one unit, bank-arbitrated ----
                if not unit.counted:
                    d_lookups += 1
                    unit.counted = True
                u_ip = unit.xb_ip
                version = set_versions[(u_ip >> 1) & set_mask]
                mapping = unit.cached_map
                if mapping is None or unit.cached_version != version:
                    uptr = unit.source_ptr
                    if uptr is not None:
                        key = (version, unit.mask, unit.offset)
                        if (
                            uptr.cache_key == key
                            and uptr.cache_rev is unit.rev_expected
                        ):
                            mapping = uptr.cache_map
                            unit.cached_map = mapping
                            unit.cached_version = version
                            unit.cached_bits = uptr.cache_bits
                            unit.cached_clean = uptr.cache_clean
                        else:
                            mapping = probe(
                                u_ip, unit.mask, unit.offset,
                                unit.rev_expected,
                            )
                            if mapping is not None:
                                bits = 0
                                clean = True
                                for slot in mapping.values():
                                    b = 1 << slot[0]
                                    if bits & b:
                                        clean = False
                                    bits |= b
                                uptr.cache_key = key
                                uptr.cache_rev = unit.rev_expected
                                uptr.cache_map = mapping
                                uptr.cache_bits = bits
                                uptr.cache_clean = clean
                                unit.cached_map = mapping
                                unit.cached_version = version
                                unit.cached_bits = bits
                                unit.cached_clean = clean
                    else:
                        mkey = (
                            u_ip, unit.mask, unit.offset,
                            id(unit.rev_expected),
                        )
                        hit = probe_memo.get(mkey)
                        if hit is not None and hit[0] == version:
                            mapping = hit[1]
                            unit.cached_map = mapping
                            unit.cached_version = version
                            unit.cached_bits = hit[2]
                            unit.cached_clean = hit[3]
                        else:
                            mapping = probe(
                                u_ip, unit.mask, unit.offset,
                                unit.rev_expected,
                            )
                            if mapping is not None:
                                bits = 0
                                clean = True
                                for slot in mapping.values():
                                    b = 1 << slot[0]
                                    if bits & b:
                                        clean = False
                                    bits |= b
                                probe_memo[mkey] = (
                                    version, mapping, bits, clean
                                )
                                unit.cached_map = mapping
                                unit.cached_version = version
                                unit.cached_bits = bits
                                unit.cached_clean = clean

                if mapping is None:
                    if enable_set_search:
                        stats.bump("set_searches")
                        repaired = storage.set_search(
                            u_ip, unit.offset, unit.rev_expected
                        )
                        if repaired is not None:
                            mask = repaired[0]
                            unit.mask = mask
                            if unit.source_ptr is not None:
                                unit.source_ptr.mask = mask
                            stats.bump("set_search_hits")
                            stats.add_penalty("set_search", 1)
                            pending = unit  # retry next cycle
                            break
                    flow.occupancy = occ
                    self._abort_unit(r, unit)
                    occ = flow.occupancy
                    r.si = si
                    r.consumed = consumed
                    self._switch_to_build(r)
                    delivery = False
                    break
                if not unit.hit_counted:
                    d_hits += 1
                    unit.hit_counted = True

                bits = unit.cached_bits
                if unit.cached_clean and not banks_used & bits:
                    delivered = unit.offset
                    banks_used |= bits
                    # inline storage.touch()
                    storage._clock += 1
                    stamp = storage._clock
                    set_lines = sets[(u_ip >> 1) & set_mask]
                    for bank, way in mapping.values():
                        line = set_lines[bank][way]
                        if line is not None:
                            line.stamp = stamp
                else:
                    needed = (unit.offset + line_uops - 1) // line_uops
                    fetched: dict = {}
                    stop_order = 0
                    for order in range(needed - 1, -1, -1):
                        slot = mapping[order]
                        b = 1 << slot[0]
                        if banks_used & b:
                            stop_order = order + 1
                            break
                        fetched[order] = slot
                        banks_used |= b
                    else:
                        stop_order = 0

                    if not fetched:  # deferred: retry next cycle
                        # inline _note_conflict()
                        d_deferrals += 1
                        set_idx = (u_ip >> 1) & set_mask
                        dkey = (set_idx, u_ip)
                        count = deferrals.get(dkey, 0) + 1
                        if count >= move_threshold:
                            deferrals[dkey] = 0
                            if enable_placement:
                                top = needed - 1
                                if top in mapping:
                                    bank, way = mapping[top]
                                    relocate_line(
                                        set_idx, bank, way, banks_used
                                    )
                        else:
                            deferrals[dkey] = count
                        pending = unit
                        break

                    delivered = unit.offset - stop_order * line_uops
                    storage.touch((u_ip >> 1) & set_mask, fetched)

                    if stop_order > 0:  # partial: the rest next cycle
                        d_from_structure += delivered
                        occ += delivered
                        unit.delivered += delivered
                        unit.offset = stop_order * line_uops
                        unit.rev_expected = trimmed_rev = (
                            unit.rev_expected[: unit.offset]
                        )
                        pins_append(trimmed_rev)
                        trimmed = {o: mapping[o] for o in range(stop_order)}
                        tbits = 0
                        tclean = True
                        for slot in trimmed.values():
                            b = 1 << slot[0]
                            if tbits & b:
                                tclean = False
                            tbits |= b
                        unit.cached_map = trimmed
                        unit.cached_bits = tbits
                        unit.cached_clean = tclean
                        # inline _note_conflict() (post-trim offset)
                        d_deferrals += 1
                        set_idx = (u_ip >> 1) & set_mask
                        dkey = (set_idx, u_ip)
                        count = deferrals.get(dkey, 0) + 1
                        if count >= move_threshold:
                            deferrals[dkey] = 0
                            if enable_placement:
                                top = stop_order - 1
                                if top in mapping:
                                    bank, way = mapping[top]
                                    relocate_line(
                                        set_idx, bank, way, banks_used
                                    )
                        else:
                            deferrals[dkey] = count
                        delivered_any = True
                        pending = unit
                        break

                d_from_structure += delivered
                occ += delivered
                unit.delivered += delivered
                delivered_any = True

                # ---- done: commit the unit's step progress ----
                a_done = False
                resolved = None
                link_entry = None
                link_taken = False
                xibtb_src = None
                last_in_build = False
                last_mask = unit.mask
                adv = unit.advance_steps
                if adv == 0:
                    consumed += unit.delivered
                    ip = u_ip
                else:
                    for _ in range(adv):
                        last_taken = s_taken[si] == 1
                        si += 1
                    consumed = 0
                    ip = s_end[si - 1]
                xbtb.lookups += 1
                entry = x_sets[(ip >> 1) & x_set_mask].get(ip)
                if entry is not None:
                    xbtb.hits += 1
                    xbtb._clock += 1
                    entry.stamp = xbtb._clock
                cur_entry = entry
                unit = None
                slots -= 1
            if delivered_any:
                d_fetch_cycles += 1
            if logging:
                log_append(
                    stats.uops_from_ic
                    + stats.uops_from_structure
                    + d_from_structure
                    - before
                )

        stats.cycles += d_cycles
        stats.retired_uops += d_retired
        stats.delivery_cycles += d_delivery
        stats.structure_lookups += d_lookups
        stats.structure_hits += d_hits
        stats.uops_from_structure += d_from_structure
        stats.structure_fetch_cycles += d_fetch_cycles
        stats.cond_predictions += d_cond_pred
        stats.cond_mispredicts += d_cond_misp
        if d_comb:
            stats.bump("comb_fetches", d_comb)
        if d_deferrals:
            stats.bump("bank_conflict_deferrals", d_deferrals)
        flow.occupancy = occ
        return self._finish_run(r)

    # ------------------------------------------------------------------
    # delivery mode
    # ------------------------------------------------------------------

    def _delivery_cycle(self, r: _Run) -> None:
        """One delivery-mode cycle.

        This method IS the simulator's hot loop: transition resolution,
        the data-array access under bank arbitration (the former
        ``_execute_fetch``), and step advancement are fused inline —
        at ~1.3 fetch-unit accesses per cycle the call dispatch alone
        otherwise dominates the profile.
        """
        stats = r.stats
        xc = self.xbc_config
        stats.delivery_cycles += 1
        flow = r.flow

        storage = r.storage
        set_versions = storage.set_versions
        set_mask = storage._set_mask
        banks_used = 0
        delivered_any = False
        slots = xc.xbs_per_cycle

        unit = r.pending
        r.pending = None
        while slots > 0 and r.si < r.n_steps:
            if unit is None:
                if r.resolved is not None:
                    tag, unit = r.resolved
                    r.resolved = None
                else:
                    tag, unit = self._resolve_fresh(r)
                if tag == "build":
                    if delivered_any or slots < xc.xbs_per_cycle:
                        # Fetched something this cycle; switch next cycle.
                        r.resolved = ("build", None)
                        break
                    self._switch_to_build(r)
                    break
                if tag == "stall":
                    r.resolved = ("unit", unit)
                    break

            # ---- data-array access for one unit, bank-arbitrated ----
            if not unit.counted:
                stats.structure_lookups += 1
                unit.counted = True

            version = set_versions[(unit.xb_ip >> 1) & set_mask]
            mapping = unit.cached_map
            if mapping is None or unit.cached_version != version:
                ptr = unit.source_ptr
                if ptr is not None:
                    key = (version, unit.mask, unit.offset)
                    if (
                        ptr.cache_key == key
                        and ptr.cache_rev is unit.rev_expected
                    ):
                        mapping = ptr.cache_map
                    else:
                        mapping = storage.probe(
                            unit.xb_ip, unit.mask, unit.offset,
                            unit.rev_expected,
                        )
                        if mapping is not None:
                            ptr.cache_key = key
                            ptr.cache_rev = unit.rev_expected
                            ptr.cache_map = mapping
                else:
                    # Pointer-less units (combined XBs): run-level memo.
                    mkey = (
                        unit.xb_ip, unit.mask, unit.offset,
                        id(unit.rev_expected),
                    )
                    hit = r.probe_memo.get(mkey)
                    if hit is not None and hit[0] == version:
                        mapping = hit[1]
                    else:
                        mapping = storage.probe(
                            unit.xb_ip, unit.mask, unit.offset,
                            unit.rev_expected,
                        )
                        if mapping is not None:
                            r.probe_memo[mkey] = (version, mapping)
                if mapping is not None:
                    unit.cached_map = mapping
                    unit.cached_version = version
                    bits = 0
                    clean = True
                    for slot in mapping.values():
                        bit = 1 << slot[0]
                        if bits & bit:
                            clean = False
                        bits |= bit
                    unit.cached_bits = bits
                    unit.cached_clean = clean

            if mapping is None:
                if xc.enable_set_search:
                    stats.bump("set_searches")
                    repaired = storage.set_search(
                        unit.xb_ip, unit.offset, unit.rev_expected
                    )
                    if repaired is not None:
                        mask, _mapping = repaired
                        unit.mask = mask
                        if unit.source_ptr is not None:
                            unit.source_ptr.mask = mask
                        stats.bump("set_search_hits")
                        stats.add_penalty("set_search", 1)
                        r.pending = unit  # retry next cycle
                        break
                self._abort_unit(r, unit)
                self._switch_to_build(r)
                break
            if not unit.hit_counted:
                stats.structure_hits += 1
                unit.hit_counted = True

            # Fast path: the mapping's banks are pairwise distinct and
            # none overlaps this cycle's fetches, so the whole mapping
            # is fetched — one AND replaces the arbitration scan.  (The
            # cached mapping always covers exactly the orders the
            # unit's current offset needs.)
            bits = unit.cached_bits
            if unit.cached_clean and not banks_used & bits:
                delivered = unit.offset
                banks_used |= bits
                # inline storage.touch(): LRU-refresh the fetched lines
                storage._clock += 1
                stamp = storage._clock
                set_lines = storage._sets[(unit.xb_ip >> 1) & set_mask]
                for bank, way in mapping.values():
                    line = set_lines[bank][way]
                    if line is not None:
                        line.stamp = stamp
            else:
                line_uops = xc.line_uops
                needed = (unit.offset + line_uops - 1) // line_uops
                fetched: dict = {}
                stop_order = 0  # orders [stop_order, needed) were fetched
                for order in range(needed - 1, -1, -1):
                    slot = mapping[order]
                    bit = 1 << slot[0]
                    if banks_used & bit:
                        stop_order = order + 1
                        break
                    fetched[order] = slot
                    banks_used |= bit
                else:
                    stop_order = 0

                if not fetched:  # deferred: retry next cycle
                    self._note_conflict(r, unit, mapping, banks_used)
                    r.pending = unit
                    break

                delivered = unit.offset - stop_order * line_uops
                storage.touch(storage.index_of(unit.xb_ip), fetched)

                if stop_order > 0:  # partial: the rest next cycle
                    stats.uops_from_structure += delivered
                    flow.occupancy += delivered
                    unit.delivered += delivered
                    unit.offset = stop_order * line_uops
                    unit.rev_expected = unit.rev_expected[: unit.offset]
                    # Pin the trimmed tuple: its id() can become a probe
                    # memo key, and id-keyed memos are only sound while
                    # the keyed object stays alive (id reuse after GC
                    # would alias a different tuple onto a stale entry).
                    r.pins.append(unit.rev_expected)
                    # Keep the cached-mapping invariant: exactly the
                    # orders the reduced offset needs, matching bits.
                    trimmed = {o: mapping[o] for o in range(stop_order)}
                    tbits = 0
                    tclean = True
                    for slot in trimmed.values():
                        bit = 1 << slot[0]
                        if tbits & bit:
                            tclean = False
                        tbits |= bit
                    unit.cached_map = trimmed
                    unit.cached_bits = tbits
                    unit.cached_clean = tclean
                    self._note_conflict(r, unit, mapping, banks_used)
                    delivered_any = True
                    r.pending = unit
                    break

            stats.uops_from_structure += delivered
            flow.occupancy += delivered  # inline flow.push()
            unit.delivered += delivered
            delivered_any = True

            # ---- done: commit the unit's step progress ----
            # (_advance_after and xbtb.lookup, inlined)
            r.a_done = False
            r.resolved = None
            r.link_info = (None, False)
            r.xibtb_source = None
            r.last_in_build = False
            r.last_mask = unit.mask
            adv = unit.advance_steps
            if adv == 0:
                r.consumed += unit.delivered
                ip = unit.xb_ip
            else:
                steps = r.steps
                si = r.si
                for _ in range(adv):
                    r.last_taken = steps[si].taken
                    si += 1
                r.si = si
                r.consumed = 0
                ip = steps[si - 1].end_ip
            xbtb = r.xbtb
            xbtb.lookups += 1
            entry = xbtb._sets[(ip >> 1) & xbtb._set_mask].get(ip)
            if entry is not None:
                xbtb.hits += 1
                xbtb._clock += 1
                entry.stamp = xbtb._clock
            r.cur_entry = entry
            unit = None
            slots -= 1
        if delivered_any:
            stats.structure_fetch_cycles += 1

    def _switch_to_build(self, r: _Run) -> None:
        r.delivery = False
        r.resolved = None
        r.stats.switches_to_build += 1
        r.stats.add_penalty("mode_switch", self.config.mode_switch_penalty)
        r.pos = self._record_pos(r)

    def _record_pos(self, r: _Run) -> int:
        """Record index of the first uncovered instruction of steps[si]."""
        step = r.steps[r.si]
        if r.consumed == 0:
            return step.first_record
        skipped = sum(
            1 for uid in step.uops[: r.consumed] if uop_uid_index(uid) == 0
        )
        return step.first_record + skipped

    def _abort_unit(self, r: _Run, unit: FetchUnit) -> None:
        """Undo the uop accounting of a half-delivered unit (rare).

        A pending unit can only die if its lines vanished between
        cycles; the step is then rebuilt wholesale in build mode, so
        the already-delivered uops must not be double counted.
        """
        if unit.delivered:
            r.stats.uops_from_structure -= unit.delivered
            # Some of the aborted uops may still sit in the queue, the
            # rest were already drained; undo both sides exactly so the
            # rebuild in build mode re-supplies them once.
            undrained = min(r.flow.occupancy, unit.delivered)
            r.flow.occupancy -= undrained
            r.stats.retired_uops -= unit.delivered - undrained
            r.stats.bump("pending_aborts")

    # ------------------------------------------------------------------
    # transition resolution
    # ------------------------------------------------------------------

    def _resolve_fresh(self, r: _Run) -> Tuple[str, Optional[FetchUnit]]:
        """Consume the transition into steps[si]; build the fetch unit.

        Returns ("unit", u) to fetch now, ("stall", u) after a charged
        re-steer with the corrected unit ready for next cycle, or
        ("build", None).
        """
        step = r.steps[r.si]
        if r.consumed:
            remaining, rev = self._tail_of(r, step, r.consumed)
        else:
            remaining, rev = step.uops, step.rev
        entry = r.cur_entry
        if entry is None:
            return ("build", None)

        # The two transition kinds that dominate every trace — plain
        # fall-through and non-promoted conditionals — are handled
        # inline; everything else goes through the general resolver.
        kind = entry.end_kind
        mispredict: Optional[str] = None
        if kind is None:
            r.a_done = True
            r.link_info = (entry, False)
            ptr = entry.nt_ptr
        elif kind is InstrKind.COND_BRANCH and entry.promoted is None:
            r.a_done = True
            actual = r.last_taken
            r.link_info = (entry, actual)
            if not r.last_in_build:
                stats = r.stats
                stats.cond_predictions += 1
                if not r.gshare.update(entry.xb_ip, actual):
                    stats.cond_mispredicts += 1
                    mispredict = "cond"
            # promoter.on_outcome for a non-promoted conditional, inline
            bias = entry.bias
            value = bias.value
            if actual:
                if value < BIAS_MAX:
                    value = bias.value = value + 1
            else:
                if value > 0:
                    value = bias.value = value - 1
            if self.xbc_config.enable_promotion and (
                value <= PROMOTE_LOW or value >= PROMOTE_HIGH
            ):
                r.promoter._try_promote(entry)
            ptr = entry.taken_ptr if actual else entry.nt_ptr
        else:
            ptr, mispredict = self._transition(
                r, entry, step, remaining, in_build=False
            )

        # _validate_ptr, inline
        shape = None
        if ptr is not None:
            rem = len(remaining)
            if ptr.xb_ip == step.end_ip and ptr.offset == rem:
                shape = "full"
            elif (
                0 < ptr.offset < rem
                and uop_uid_ip(remaining[ptr.offset - 1]) == ptr.xb_ip
                and uop_uid_ip(remaining[ptr.offset]) != ptr.xb_ip
            ):
                shape = "prefix"
        if mispredict is not None:
            r.stats.add_penalty("mispredict", self.config.mispredict_penalty)
            if shape is None:
                return ("build", None)
            return ("stall", self._make_unit(r, ptr, step, remaining, shape, rev))
        if shape is None:
            return ("build", None)
        unit = self._make_unit(r, ptr, step, remaining, shape, rev)
        return ("unit", unit)

    @staticmethod
    def _tail_of(r: _Run, step: XbStep, consumed: int):
        """Memoized (tail, reversed tail) of steps split by *consumed*.

        Returning the SAME tuple objects for every occurrence of a
        (static chunk, consumed) pair keeps the pointer-level probe
        memo's identity compare effective on split-chain tails.
        """
        key = (id(step.uops), consumed)
        cached = r.tails.get(key)
        if cached is None:
            tail = step.uops[consumed:]
            cached = (tail, tail[::-1])
            r.tails[key] = cached
        return cached

    @staticmethod
    def _prefix_rev_of(r: _Run, seq, offset: int):
        """Memoized ``seq[:offset][::-1]`` (*seq* must be run-lifetime)."""
        key = (id(seq), offset)
        out = r.rev_memo.get(key)
        if out is None:
            out = seq[:offset][::-1]
            r.rev_memo[key] = out
        return out

    def _transition(
        self,
        r: _Run,
        entry: XbtbEntry,
        step: XbStep,
        remaining: Sequence[int],
        in_build: bool,
    ) -> Tuple[Optional[XbPointer], Optional[str]]:
        """Once-per-transition bookkeeping; returns (candidate, mispredict).

        *candidate* is the pointer the machine ends up following on the
        correct path (trace-driven); *mispredict* names the re-steer
        cause when the prediction disagreed with the actual outcome
        (``None`` when prediction was right or already charged by the
        build engine).
        """
        stats = r.stats
        r.a_done = True
        r.link_info = (entry, False)
        kind = entry.end_kind
        actual_payload = (step.end_ip, len(remaining))

        if kind is None:
            return entry.nt_ptr, None

        if kind is InstrKind.COND_BRANCH:
            actual = r.last_taken
            r.link_info = (entry, actual)
            if entry.promoted is not None:
                promoted_dir = entry.promoted
                r.promoter.on_outcome(entry, actual)
                ptr = entry.pointer_for(actual)
                if actual != promoted_dir:
                    stats.bump("promotion_misses")
                    return ptr, None if in_build else "promotion"
                return ptr, None
            mispredict: Optional[str] = None
            if not in_build and not r.last_in_build:
                stats.cond_predictions += 1
                if not r.gshare.update(entry.xb_ip, actual):
                    stats.cond_mispredicts += 1
                    mispredict = "cond"
            r.promoter.on_outcome(entry, actual)
            return entry.pointer_for(actual), mispredict

        if kind is InstrKind.CALL:
            r.xrsb.push(entry)
            r.link_info = (entry, True)
            return entry.taken_ptr, None

        if kind in (InstrKind.INDIRECT_JUMP, InstrKind.INDIRECT_CALL):
            if kind is InstrKind.INDIRECT_CALL:
                r.xrsb.push(entry)
            r.link_info = (None, False)  # the XiBTB owns this linkage
            r.xibtb_source = entry       # finalize trains the real payload
            predicted = r.xibtb.predict(entry.xb_ip)
            candidate = (
                self._resolve_payload_ptr(r, predicted, step, remaining)
                if predicted is not None else None
            )
            correct = candidate is not None
            mispredict = None
            if not in_build and not r.last_in_build:
                stats.indirect_predictions += 1
                if not correct:
                    stats.indirect_mispredicts += 1
                    mispredict = "indirect"
            if correct:
                # Reinforce the winning payload (it may name a split
                # prefix, which a plain end-IP payload could not).
                r.xibtb.train(entry.xb_ip, predicted, step.end_ip)
                return candidate, None
            r.xibtb.train(entry.xb_ip, actual_payload, step.end_ip)
            return (
                self._resolve_payload_ptr(r, actual_payload, step, remaining),
                mispredict,
            )

        if kind is InstrKind.RETURN:
            e_call = r.xrsb.pop()
            ptr = e_call.nt_ptr if e_call is not None else None
            good = ptr is not None and ptr.matches(*actual_payload)
            mispredict = None
            if not in_build and not r.last_in_build:
                stats.return_predictions += 1
                if not good:
                    stats.return_mispredicts += 1
                    mispredict = "return"
            if good:
                r.link_info = (e_call, False)
                return ptr, None
            r.link_info = (e_call, False) if e_call is not None else (None, False)
            return (
                self._resolve_payload_ptr(r, actual_payload, step, remaining),
                mispredict,
            )

        return None, None

    def _pointer_from_payload(
        self,
        r: _Run,
        payload: Tuple[int, int],
        rev_expected: Optional[Sequence[int]] = None,
    ) -> Optional[XbPointer]:
        """Resolve a (xb_ip, offset) payload through the target's entry.

        When *rev_expected* is given, only a variant whose stored
        content matches it qualifies — essential when one end-IP has
        several variants with different prefixes (§3.3).
        """
        xb_ip, offset = payload
        key = (xb_ip, offset, id(rev_expected))
        storage = r.storage
        version = storage.set_versions[(xb_ip >> 1) & storage._set_mask]
        hit = r.payload_memo.get(key)
        if hit is not None and hit[0] == version:
            mask = hit[1]
            return None if mask is None else XbPointer(xb_ip, mask, offset)
        result: Optional[int] = None
        target = r.xbtb.peek(xb_ip)
        if target is not None:
            for variant in target.valid_variants(r.storage):
                if variant.length < offset:
                    continue
                # Locate through the variant's line references: dynamic
                # placement may have moved lines, leaving the mask stale.
                mapping = variant.locate(r.storage, xb_ip)
                if mapping is None:
                    continue
                mask = 0
                for bank, _way in mapping.values():
                    mask |= 1 << bank
                variant.mask = mask  # heal the record while we are here
                if rev_expected is not None and r.storage.probe(
                    xb_ip, mask, offset, rev_expected
                ) is None:
                    continue
                result = mask
                break
        r.payload_memo[key] = (version, result)
        return None if result is None else XbPointer(xb_ip, result, offset)

    def _resolve_payload_ptr(
        self,
        r: _Run,
        payload: Tuple[int, int],
        step: XbStep,
        remaining: Sequence[int],
    ) -> Optional[XbPointer]:
        """Resolve a payload against the actual path, content-checked.

        Accepts both shapes a correct payload can take: the full
        remainder of the current step, or a split-prefix chain link
        covering its leading instructions.
        """
        xb_ip, offset = payload
        rem = len(remaining)
        if xb_ip == step.end_ip and offset == rem:
            expected = self._prefix_rev_of(r, remaining, rem)
        elif (
            0 < offset < rem
            and uop_uid_ip(remaining[offset - 1]) == xb_ip
            and uop_uid_ip(remaining[offset]) != xb_ip
        ):
            expected = self._prefix_rev_of(r, remaining, offset)
        else:
            return None
        return self._pointer_from_payload(r, payload, expected)

    def _validate_ptr(
        self,
        ptr: Optional[XbPointer],
        step: XbStep,
        remaining: Sequence[int],
    ) -> Optional[str]:
        """Check a candidate pointer against the actual path.

        "full" covers the whole remainder of the step; "prefix" is a
        split-policy chain link covering its leading instructions.
        """
        if ptr is None:
            return None
        rem = len(remaining)
        if ptr.xb_ip == step.end_ip and ptr.offset == rem:
            return "full"
        if (
            0 < ptr.offset < rem
            and uop_uid_ip(remaining[ptr.offset - 1]) == ptr.xb_ip
            and uop_uid_ip(remaining[ptr.offset]) != ptr.xb_ip
        ):
            return "prefix"
        return None

    def _make_unit(
        self,
        r: _Run,
        ptr: XbPointer,
        step: XbStep,
        remaining: Sequence[int],
        shape: str,
        rev: Optional[Sequence[int]] = None,
    ) -> FetchUnit:
        """Build the fetch unit, upgrading to a combined XB (§3.8)."""
        if shape == "prefix":
            return FetchUnit(
                xb_ip=ptr.xb_ip,
                mask=ptr.mask,
                offset=ptr.offset,
                rev_expected=self._prefix_rev_of(r, remaining, ptr.offset),
                advance_steps=0,
                source_ptr=ptr,
            )

        xbtb = r.xbtb
        target = xbtb._sets[(ptr.xb_ip >> 1) & xbtb._set_mask].get(ptr.xb_ip)
        if (
            target is not None
            and target.promoted is not None
            and step.taken == target.promoted
            and r.si + 1 < r.n_steps
        ):
            nxt = r.steps[r.si + 1]
            if (
                nxt.end_ip == target.forward_xb_ip
                and len(nxt.uops) == target.forward_len1
            ):
                e1 = r.xbtb.peek(target.forward_xb_ip)
                comb_offset = ptr.offset + target.forward_len1
                variant = (
                    e1.variant_covering(r.storage, comb_offset)
                    if e1 is not None
                    else None
                )
                if variant is not None:
                    r.promoter.on_outcome(target, step.taken)
                    r.stats.bump("comb_fetches")
                    key = (id(remaining), id(nxt.uops), -1)
                    crev = r.rev_memo.get(key)
                    if crev is None:
                        crev = (tuple(remaining) + nxt.uops)[::-1]
                        r.rev_memo[key] = crev
                    return FetchUnit(
                        xb_ip=target.forward_xb_ip,
                        mask=variant.mask,
                        offset=comb_offset,
                        rev_expected=crev,
                        advance_steps=2,
                    )

        return FetchUnit(
            xb_ip=ptr.xb_ip,
            mask=ptr.mask,
            offset=ptr.offset,
            rev_expected=rev if rev is not None else remaining[::-1],
            advance_steps=1,
            source_ptr=ptr,
        )

    # ------------------------------------------------------------------
    # storage access
    # ------------------------------------------------------------------

    def _note_conflict(
        self, r: _Run, unit: FetchUnit, mapping: dict, banks_used: int
    ) -> None:
        """Record a deferral; relocate the conflicting line if hot (§3.10)."""
        r.stats.bump("bank_conflict_deferrals")
        if not r.storage.note_deferral(unit.xb_ip):
            return
        if not self.xbc_config.enable_dynamic_placement:
            return
        needed = r.storage.orders_for(unit.offset)
        top = needed - 1
        if top in mapping:
            bank, way = mapping[top]
            set_idx = r.storage.index_of(unit.xb_ip)
            r.storage.relocate_line(set_idx, bank, way, banks_used)

    # ------------------------------------------------------------------
    # build mode
    # ------------------------------------------------------------------

    def _build_cycle(self, r: _Run) -> None:
        stats = r.stats
        stats.build_cycles += 1
        if not r.flow.can_accept(4 * self.config.decode_width):
            return
        r.pos, cycle = r.engine.fetch_cycle(r.trace, r.pos)
        stats.uops_from_ic += cycle.uops
        r.flow.push(cycle.uops)
        for cause, cycles in cycle.penalties.items():
            stats.add_penalty(cause, cycles)

        finalized = False
        while r.si < r.n_steps and r.pos > r.steps[r.si].last_record:
            self._finalize_step(r)
            finalized = True
        # Only switch at an exact step boundary: the build engine may have
        # overshot into the next step within this fetch cycle, and those
        # uops were already supplied from the IC.
        if (
            finalized
            and r.si < r.n_steps
            and r.pos == r.steps[r.si].first_record
            and self._can_deliver(r)
        ):
            r.delivery = True
            r.stats.switches_to_delivery += 1
            r.stats.add_penalty("mode_switch", self.config.mode_switch_penalty)

    def _finalize_step(self, r: _Run) -> None:
        step = r.steps[r.si]
        occurrence = (
            self._tail_of(r, step, r.consumed)[0] if r.consumed else step.uops
        )
        entry, new_ptr = r.fill.install(
            step.end_ip, step.end_kind, occurrence, avoid_mask=r.last_mask
        )
        r.stats.blocks_built += 1

        if r.cur_entry is not None:
            if not r.a_done:
                remaining = occurrence
                self._transition(r, r.cur_entry, step, remaining, in_build=True)
            link_entry, link_taken = r.link_info
            if new_ptr is not None and link_entry is not None:
                link_entry.set_pointer(link_taken, new_ptr)
            if new_ptr is not None and r.xibtb_source is not None:
                # Indirect transitions learn the fill unit's real pointer
                # (which may name a split prefix) rather than the plain
                # end-IP payload guessed at transition time.
                r.xibtb.train(
                    r.xibtb_source.xb_ip,
                    (new_ptr.xb_ip, new_ptr.offset),
                    new_ptr.xb_ip,
                )

        r.cur_entry = entry
        r.last_taken = step.taken
        r.last_in_build = True
        r.last_mask = new_ptr.mask if new_ptr is not None else 0
        r.si += 1
        r.consumed = 0
        r.a_done = False
        r.resolved = None
        r.link_info = (None, False)
        r.xibtb_source = None

    def _can_deliver(self, r: _Run) -> bool:
        """Peek whether delivery could resume at steps[si] (no side effects)."""
        entry = r.cur_entry
        if entry is None:
            return False
        step = r.steps[r.si]
        remaining = (
            self._tail_of(r, step, r.consumed)[0] if r.consumed else step.uops
        )
        kind = entry.end_kind
        ptr: Optional[XbPointer]
        if kind is None:
            ptr = entry.nt_ptr
        elif kind is InstrKind.COND_BRANCH:
            ptr = entry.pointer_for(r.last_taken)
        elif kind is InstrKind.CALL:
            ptr = entry.taken_ptr
        elif kind is InstrKind.RETURN:
            e_call = r.xrsb.peek()
            ptr = e_call.nt_ptr if e_call is not None else None
        else:  # indirect
            predicted = r.xibtb.predict(entry.xb_ip)
            ptr = (
                self._resolve_payload_ptr(r, predicted, step, remaining)
                if predicted is not None else None
            )
        shape = self._validate_ptr(ptr, step, remaining)
        if shape != "full":
            if shape != "prefix":
                return False
        assert ptr is not None
        if shape == "prefix":
            expected = self._prefix_rev_of(r, remaining, ptr.offset)
        elif r.consumed == 0:
            expected = step.rev
        else:
            expected = self._tail_of(r, step, r.consumed)[1]
        return (
            r.storage.probe(ptr.xb_ip, ptr.mask, ptr.offset, expected)
            is not None
        )
