"""The XBC frontend (§3.5–§3.10): the paper's Figure 6 put together.

Delivery mode follows XBTB pointers: each cycle the XBTB supplies up to
``xbs_per_cycle`` pointers (each conditional XB costs one XBP
prediction; promoted XBs cost none), a priority encoder assigns banks —
first XB first, the second XB fetching only until its first bank
conflict, with the conflicted remainder deferred to the next cycle —
and the out-mux reorders the reverse-stored uops.  XBTB misses,
unresolvable targets, and XBC misses that survive set search switch the
frontend to build mode; there the shared IC/BTB/decode engine supplies
uops while the XFU builds XBs, and the frontend switches back once the
next XB is reachable through the XBTB with its lines resident.

Bookkeeping discipline: every *transition* between consecutive XBs
(prediction consumption, bias-counter update, XRSB push/pop, XiBTB
training) happens exactly once, whichever mode processes it; gshare is
trained per conditional branch exactly once — by the build engine when
the branch's uops came from the IC, by the transition logic when they
came from the XBC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.isa.uop import uop_uid_ip, uop_uid_index
from repro.trace.record import Trace
from repro.xbc.config import XbcConfig
from repro.xbc.fill import XbcFillUnit
from repro.xbc.pointer import XbPointer
from repro.xbc.promotion import Promoter
from repro.xbc.storage import XbcStorage
from repro.xbc.xbseq import XbStep, build_xb_stream
from repro.xbc.xbtb import Xbtb, XbtbEntry


@dataclass
class FetchUnit:
    """One XBC fetch in flight: a located XB entry point."""

    xb_ip: int
    mask: int
    offset: int                     # uops still to fetch, from the end
    rev_expected: List[int]         # expected uops, distance order
    advance_steps: int              # steps completed when this unit finishes
    source_ptr: Optional[XbPointer] = None  # repaired in place by set search
    delivered: int = 0              # uops already delivered (partial fetches)
    counted: bool = False           # structure_lookups already incremented
    hit_counted: bool = False       # structure_hits already incremented


class _Run:
    """All mutable state of one simulation (one trace, one frontend)."""

    def __init__(self) -> None:
        self.records = None
        self.steps: List[XbStep] = []
        self.stats: FrontendStats = None  # type: ignore[assignment]
        self.flow: UopFlow = None  # type: ignore[assignment]
        self.gshare: GsharePredictor = None  # type: ignore[assignment]
        self.xibtb: IndirectPredictor = None  # type: ignore[assignment]
        self.xrsb: ReturnStackBuffer = None  # type: ignore[assignment]
        self.engine: BuildEngine = None  # type: ignore[assignment]
        self.storage: XbcStorage = None  # type: ignore[assignment]
        self.xbtb: Xbtb = None  # type: ignore[assignment]
        self.fill: XbcFillUnit = None  # type: ignore[assignment]
        self.promoter: Promoter = None  # type: ignore[assignment]

        self.si = 0            # next step to cover
        self.consumed = 0      # uops of steps[si] already covered (split chains)
        self.pos = 0           # record index (build mode)
        self.delivery = False
        self.cur_entry: Optional[XbtbEntry] = None
        self.last_taken = False
        self.last_in_build = True
        self.last_mask = 0     # previous XB's banks (smart placement)
        self.a_done = False    # transition bookkeeping for steps[si] done
        self.link_info: Tuple[Optional[XbtbEntry], bool] = (None, False)
        #: indirect-ended entry whose XiBTB payload the next build
        #: finalize should (re)train with the fill unit's real pointer
        self.xibtb_source: Optional[XbtbEntry] = None
        self.resolved: Optional[Tuple[str, Optional[FetchUnit]]] = None
        self.pending: Optional[FetchUnit] = None


class XbcFrontend(FrontendModel):
    """The eXtended Block Cache frontend."""

    name = "xbc"

    def __init__(
        self,
        config: FrontendConfig = FrontendConfig(),
        xbc_config: XbcConfig = XbcConfig(),
    ) -> None:
        super().__init__(config)
        xbc_config.validate()
        self.xbc_config = xbc_config

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> FrontendStats:
        """Simulate the trace through the XBC frontend."""
        config = self.config
        xc = self.xbc_config
        r = _Run()
        r.records = trace.records
        r.steps = build_xb_stream(trace, xc.max_xb_uops)
        r.stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        r.flow = UopFlow(config, r.stats)
        r.gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        r.xibtb = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        r.xrsb = ReturnStackBuffer(xc.xrsb_depth)
        r.engine = BuildEngine(
            config=config,
            stats=r.stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=r.gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=ReturnStackBuffer(config.rsb_depth),
            indirect=IndirectPredictor(
                config.indirect_entries, config.indirect_history_bits
            ),
        )
        r.storage = XbcStorage(xc)
        r.xbtb = Xbtb(xc)
        r.fill = XbcFillUnit(xc, r.storage, r.xbtb, r.stats)
        r.promoter = Promoter(xc, r.storage, r.xbtb, r.stats)

        while r.si < len(r.steps):
            r.stats.cycles += 1
            r.flow.drain()
            if r.delivery:
                self._delivery_cycle(r)
            else:
                self._build_cycle(r)
        r.flow.drain_all()

        r.stats.extra["xbc_redundancy_x1000"] = int(r.storage.redundancy() * 1000)
        r.stats.extra["xbc_resident_uops"] = r.storage.resident_uops()
        r.stats.extra["xbc_evictions"] = r.storage.evictions
        r.stats.extra["xbc_gc_evictions"] = r.storage.gc_evictions
        r.stats.extra["xbc_relocations"] = r.storage.relocations
        r.stats.extra["xbtb_entries"] = r.xbtb.resident_entries()
        r.stats.verify_conservation(trace.total_uops)
        return r.stats

    # ------------------------------------------------------------------
    # delivery mode
    # ------------------------------------------------------------------

    def _delivery_cycle(self, r: _Run) -> None:
        stats = r.stats
        xc = self.xbc_config
        stats.delivery_cycles += 1
        if not r.flow.can_accept(xc.max_xb_uops):
            return

        banks_used = 0
        delivered_any = False
        slots = xc.xbs_per_cycle

        unit = r.pending
        r.pending = None
        while slots > 0 and r.si < len(r.steps):
            if unit is None:
                if r.resolved is not None:
                    tag, unit = r.resolved
                    r.resolved = None
                else:
                    tag, unit = self._resolve_fresh(r)
                if tag == "build":
                    if delivered_any or slots < xc.xbs_per_cycle:
                        # Fetched something this cycle; switch next cycle.
                        r.resolved = ("build", None)
                        break
                    self._switch_to_build(r)
                    break
                if tag == "stall":
                    r.resolved = ("unit", unit)
                    break
            status, banks_used = self._execute_fetch(r, unit, banks_used)
            if status == "miss":
                self._abort_unit(r, unit)
                self._switch_to_build(r)
                break
            if status in ("retry", "deferred"):
                r.pending = unit
                break
            delivered_any = True
            if status == "partial":
                r.pending = unit
                break
            # status == "done"
            self._advance_after(r, unit)
            unit = None
            slots -= 1
        if delivered_any:
            stats.structure_fetch_cycles += 1

    def _switch_to_build(self, r: _Run) -> None:
        r.delivery = False
        r.resolved = None
        r.stats.switches_to_build += 1
        r.stats.add_penalty("mode_switch", self.config.mode_switch_penalty)
        r.pos = self._record_pos(r)

    def _record_pos(self, r: _Run) -> int:
        """Record index of the first uncovered instruction of steps[si]."""
        step = r.steps[r.si]
        if r.consumed == 0:
            return step.first_record
        skipped = sum(
            1 for uid in step.uops[: r.consumed] if uop_uid_index(uid) == 0
        )
        return step.first_record + skipped

    def _abort_unit(self, r: _Run, unit: FetchUnit) -> None:
        """Undo the uop accounting of a half-delivered unit (rare).

        A pending unit can only die if its lines vanished between
        cycles; the step is then rebuilt wholesale in build mode, so
        the already-delivered uops must not be double counted.
        """
        if unit.delivered:
            r.stats.uops_from_structure -= unit.delivered
            # Some of the aborted uops may still sit in the queue, the
            # rest were already drained; undo both sides exactly so the
            # rebuild in build mode re-supplies them once.
            undrained = min(r.flow.occupancy, unit.delivered)
            r.flow.occupancy -= undrained
            r.stats.retired_uops -= unit.delivered - undrained
            r.stats.bump("pending_aborts")

    # ------------------------------------------------------------------
    # transition resolution
    # ------------------------------------------------------------------

    def _resolve_fresh(self, r: _Run) -> Tuple[str, Optional[FetchUnit]]:
        """Consume the transition into steps[si]; build the fetch unit.

        Returns ("unit", u) to fetch now, ("stall", u) after a charged
        re-steer with the corrected unit ready for next cycle, or
        ("build", None).
        """
        step = r.steps[r.si]
        remaining = list(step.uops[r.consumed:])
        entry = r.cur_entry
        if entry is None:
            return ("build", None)

        ptr, mispredict = self._transition(r, entry, step, remaining, in_build=False)
        shape = self._validate_ptr(ptr, step, remaining)
        if mispredict is not None:
            r.stats.add_penalty("mispredict", self.config.mispredict_penalty)
            if shape is None:
                return ("build", None)
            return ("stall", self._make_unit(r, ptr, step, remaining, shape))
        if shape is None:
            return ("build", None)
        unit = self._make_unit(r, ptr, step, remaining, shape)
        return ("unit", unit)

    def _transition(
        self,
        r: _Run,
        entry: XbtbEntry,
        step: XbStep,
        remaining: List[int],
        in_build: bool,
    ) -> Tuple[Optional[XbPointer], Optional[str]]:
        """Once-per-transition bookkeeping; returns (candidate, mispredict).

        *candidate* is the pointer the machine ends up following on the
        correct path (trace-driven); *mispredict* names the re-steer
        cause when the prediction disagreed with the actual outcome
        (``None`` when prediction was right or already charged by the
        build engine).
        """
        stats = r.stats
        r.a_done = True
        r.link_info = (entry, False)
        kind = entry.end_kind
        actual_payload = (step.end_ip, len(remaining))

        if kind is None:
            return entry.nt_ptr, None

        if kind is InstrKind.COND_BRANCH:
            actual = r.last_taken
            r.link_info = (entry, actual)
            if entry.promoted is not None:
                promoted_dir = entry.promoted
                r.promoter.on_outcome(entry, actual)
                ptr = entry.pointer_for(actual)
                if actual != promoted_dir:
                    stats.bump("promotion_misses")
                    return ptr, None if in_build else "promotion"
                return ptr, None
            mispredict: Optional[str] = None
            if not in_build and not r.last_in_build:
                stats.cond_predictions += 1
                if not r.gshare.update(entry.xb_ip, actual):
                    stats.cond_mispredicts += 1
                    mispredict = "cond"
            r.promoter.on_outcome(entry, actual)
            return entry.pointer_for(actual), mispredict

        if kind is InstrKind.CALL:
            r.xrsb.push(entry)
            r.link_info = (entry, True)
            return entry.taken_ptr, None

        if kind in (InstrKind.INDIRECT_JUMP, InstrKind.INDIRECT_CALL):
            if kind is InstrKind.INDIRECT_CALL:
                r.xrsb.push(entry)
            r.link_info = (None, False)  # the XiBTB owns this linkage
            r.xibtb_source = entry       # finalize trains the real payload
            predicted = r.xibtb.predict(entry.xb_ip)
            candidate = (
                self._resolve_payload_ptr(r, predicted, step, remaining)
                if predicted is not None else None
            )
            correct = candidate is not None
            mispredict = None
            if not in_build and not r.last_in_build:
                stats.indirect_predictions += 1
                if not correct:
                    stats.indirect_mispredicts += 1
                    mispredict = "indirect"
            if correct:
                # Reinforce the winning payload (it may name a split
                # prefix, which a plain end-IP payload could not).
                r.xibtb.train(entry.xb_ip, predicted, step.end_ip)
                return candidate, None
            r.xibtb.train(entry.xb_ip, actual_payload, step.end_ip)
            return (
                self._resolve_payload_ptr(r, actual_payload, step, remaining),
                mispredict,
            )

        if kind is InstrKind.RETURN:
            e_call = r.xrsb.pop()
            ptr = e_call.nt_ptr if e_call is not None else None
            good = ptr is not None and ptr.matches(*actual_payload)
            mispredict = None
            if not in_build and not r.last_in_build:
                stats.return_predictions += 1
                if not good:
                    stats.return_mispredicts += 1
                    mispredict = "return"
            if good:
                r.link_info = (e_call, False)
                return ptr, None
            r.link_info = (e_call, False) if e_call is not None else (None, False)
            return (
                self._resolve_payload_ptr(r, actual_payload, step, remaining),
                mispredict,
            )

        return None, None

    def _pointer_from_payload(
        self,
        r: _Run,
        payload: Tuple[int, int],
        rev_expected: Optional[List[int]] = None,
    ) -> Optional[XbPointer]:
        """Resolve a (xb_ip, offset) payload through the target's entry.

        When *rev_expected* is given, only a variant whose stored
        content matches it qualifies — essential when one end-IP has
        several variants with different prefixes (§3.3).
        """
        xb_ip, offset = payload
        target = r.xbtb.peek(xb_ip)
        if target is None:
            return None
        for variant in target.valid_variants(r.storage):
            if variant.length < offset:
                continue
            # Locate through the variant's line references: dynamic
            # placement may have moved lines, leaving the mask stale.
            mapping = variant.locate(r.storage, xb_ip)
            if mapping is None:
                continue
            mask = 0
            for bank, _way in mapping.values():
                mask |= 1 << bank
            variant.mask = mask  # heal the record while we are here
            if rev_expected is not None and r.storage.probe(
                xb_ip, mask, offset, rev_expected
            ) is None:
                continue
            return XbPointer(xb_ip, mask, offset)
        return None

    def _resolve_payload_ptr(
        self,
        r: _Run,
        payload: Tuple[int, int],
        step: XbStep,
        remaining: List[int],
    ) -> Optional[XbPointer]:
        """Resolve a payload against the actual path, content-checked.

        Accepts both shapes a correct payload can take: the full
        remainder of the current step, or a split-prefix chain link
        covering its leading instructions.
        """
        xb_ip, offset = payload
        rem = len(remaining)
        if xb_ip == step.end_ip and offset == rem:
            expected = remaining[::-1]
        elif (
            0 < offset < rem
            and uop_uid_ip(remaining[offset - 1]) == xb_ip
            and uop_uid_ip(remaining[offset]) != xb_ip
        ):
            expected = remaining[:offset][::-1]
        else:
            return None
        return self._pointer_from_payload(r, payload, expected)

    def _validate_ptr(
        self,
        ptr: Optional[XbPointer],
        step: XbStep,
        remaining: List[int],
    ) -> Optional[str]:
        """Check a candidate pointer against the actual path.

        "full" covers the whole remainder of the step; "prefix" is a
        split-policy chain link covering its leading instructions.
        """
        if ptr is None:
            return None
        rem = len(remaining)
        if ptr.xb_ip == step.end_ip and ptr.offset == rem:
            return "full"
        if (
            0 < ptr.offset < rem
            and uop_uid_ip(remaining[ptr.offset - 1]) == ptr.xb_ip
            and uop_uid_ip(remaining[ptr.offset]) != ptr.xb_ip
        ):
            return "prefix"
        return None

    def _make_unit(
        self,
        r: _Run,
        ptr: XbPointer,
        step: XbStep,
        remaining: List[int],
        shape: str,
    ) -> FetchUnit:
        """Build the fetch unit, upgrading to a combined XB (§3.8)."""
        if shape == "prefix":
            covered = remaining[: ptr.offset]
            return FetchUnit(
                xb_ip=ptr.xb_ip,
                mask=ptr.mask,
                offset=ptr.offset,
                rev_expected=covered[::-1],
                advance_steps=0,
                source_ptr=ptr,
            )

        target = r.xbtb.peek(ptr.xb_ip)
        if (
            target is not None
            and target.promoted is not None
            and step.taken == target.promoted
            and r.si + 1 < len(r.steps)
        ):
            nxt = r.steps[r.si + 1]
            if (
                nxt.end_ip == target.forward_xb_ip
                and len(nxt.uops) == target.forward_len1
            ):
                e1 = r.xbtb.peek(target.forward_xb_ip)
                comb_offset = ptr.offset + target.forward_len1
                variant = (
                    e1.variant_covering(r.storage, comb_offset)
                    if e1 is not None
                    else None
                )
                if variant is not None:
                    r.promoter.on_outcome(target, step.taken)
                    r.stats.bump("comb_fetches")
                    combined = remaining + list(nxt.uops)
                    return FetchUnit(
                        xb_ip=target.forward_xb_ip,
                        mask=variant.mask,
                        offset=comb_offset,
                        rev_expected=combined[::-1],
                        advance_steps=2,
                    )

        return FetchUnit(
            xb_ip=ptr.xb_ip,
            mask=ptr.mask,
            offset=ptr.offset,
            rev_expected=remaining[::-1],
            advance_steps=1,
            source_ptr=ptr,
        )

    # ------------------------------------------------------------------
    # storage access
    # ------------------------------------------------------------------

    def _execute_fetch(
        self, r: _Run, unit: FetchUnit, banks_used: int
    ) -> Tuple[str, int]:
        """Access the data array for one unit under bank arbitration."""
        stats = r.stats
        storage = r.storage
        xc = self.xbc_config
        if not unit.counted:
            stats.structure_lookups += 1
            unit.counted = True

        mapping = storage.probe(
            unit.xb_ip, unit.mask, unit.offset, unit.rev_expected
        )
        if mapping is None:
            if xc.enable_set_search:
                stats.bump("set_searches")
                repaired = storage.set_search(
                    unit.xb_ip, unit.offset, unit.rev_expected
                )
                if repaired is not None:
                    mask, _mapping = repaired
                    unit.mask = mask
                    if unit.source_ptr is not None:
                        unit.source_ptr.mask = mask
                    stats.bump("set_search_hits")
                    stats.add_penalty("set_search", 1)
                    return "retry", banks_used
            return "miss", banks_used
        if not unit.hit_counted:
            stats.structure_hits += 1
            unit.hit_counted = True

        needed = storage.orders_for(unit.offset)
        set_idx = storage.index_of(unit.xb_ip)
        fetched: dict = {}
        stop_order = 0  # orders [stop_order, needed) were fetched
        for order in range(needed - 1, -1, -1):
            bank = mapping[order][0]
            if (banks_used >> bank) & 1:
                stop_order = order + 1
                break
            fetched[order] = mapping[order]
            banks_used |= 1 << bank
        else:
            stop_order = 0

        if not fetched:
            self._note_conflict(r, unit, mapping, banks_used)
            return "deferred", banks_used

        delivered = unit.offset - stop_order * xc.line_uops
        storage.touch(set_idx, fetched)
        stats.uops_from_structure += delivered
        r.flow.push(delivered)
        unit.delivered += delivered

        if stop_order > 0:
            unit.offset = stop_order * xc.line_uops
            unit.rev_expected = unit.rev_expected[: unit.offset]
            self._note_conflict(r, unit, mapping, banks_used)
            return "partial", banks_used
        return "done", banks_used

    def _note_conflict(
        self, r: _Run, unit: FetchUnit, mapping: dict, banks_used: int
    ) -> None:
        """Record a deferral; relocate the conflicting line if hot (§3.10)."""
        r.stats.bump("bank_conflict_deferrals")
        if not r.storage.note_deferral(unit.xb_ip):
            return
        if not self.xbc_config.enable_dynamic_placement:
            return
        needed = r.storage.orders_for(unit.offset)
        top = needed - 1
        if top in mapping:
            bank, way = mapping[top]
            set_idx = r.storage.index_of(unit.xb_ip)
            r.storage.relocate_line(set_idx, bank, way, banks_used)

    def _advance_after(self, r: _Run, unit: FetchUnit) -> None:
        """Commit a completed fetch unit's step progress."""
        r.a_done = False
        r.resolved = None
        r.link_info = (None, False)
        r.xibtb_source = None
        r.last_in_build = False
        r.last_mask = unit.mask
        if unit.advance_steps == 0:
            r.consumed += unit.delivered
            r.cur_entry = r.xbtb.lookup(unit.xb_ip)
            return
        for _ in range(unit.advance_steps):
            r.last_taken = r.steps[r.si].taken
            r.si += 1
        r.consumed = 0
        r.cur_entry = r.xbtb.lookup(r.steps[r.si - 1].end_ip)

    # ------------------------------------------------------------------
    # build mode
    # ------------------------------------------------------------------

    def _build_cycle(self, r: _Run) -> None:
        stats = r.stats
        stats.build_cycles += 1
        if not r.flow.can_accept(4 * self.config.decode_width):
            return
        r.pos, cycle = r.engine.fetch_cycle(r.records, r.pos)
        stats.uops_from_ic += cycle.uops
        r.flow.push(cycle.uops)
        for cause, cycles in cycle.penalties.items():
            stats.add_penalty(cause, cycles)

        finalized = False
        while r.si < len(r.steps) and r.pos > r.steps[r.si].last_record:
            self._finalize_step(r)
            finalized = True
        # Only switch at an exact step boundary: the build engine may have
        # overshot into the next step within this fetch cycle, and those
        # uops were already supplied from the IC.
        if (
            finalized
            and r.si < len(r.steps)
            and r.pos == r.steps[r.si].first_record
            and self._can_deliver(r)
        ):
            r.delivery = True
            r.stats.switches_to_delivery += 1
            r.stats.add_penalty("mode_switch", self.config.mode_switch_penalty)

    def _finalize_step(self, r: _Run) -> None:
        step = r.steps[r.si]
        occurrence = list(step.uops[r.consumed:])
        entry, new_ptr = r.fill.install(
            step.end_ip, step.end_kind, occurrence, avoid_mask=r.last_mask
        )
        r.stats.blocks_built += 1

        if r.cur_entry is not None:
            if not r.a_done:
                remaining = occurrence
                self._transition(r, r.cur_entry, step, remaining, in_build=True)
            link_entry, link_taken = r.link_info
            if new_ptr is not None and link_entry is not None:
                link_entry.set_pointer(link_taken, new_ptr)
            if new_ptr is not None and r.xibtb_source is not None:
                # Indirect transitions learn the fill unit's real pointer
                # (which may name a split prefix) rather than the plain
                # end-IP payload guessed at transition time.
                r.xibtb.train(
                    r.xibtb_source.xb_ip,
                    (new_ptr.xb_ip, new_ptr.offset),
                    new_ptr.xb_ip,
                )

        r.cur_entry = entry
        r.last_taken = step.taken
        r.last_in_build = True
        r.last_mask = new_ptr.mask if new_ptr is not None else 0
        r.si += 1
        r.consumed = 0
        r.a_done = False
        r.resolved = None
        r.link_info = (None, False)
        r.xibtb_source = None

    def _can_deliver(self, r: _Run) -> bool:
        """Peek whether delivery could resume at steps[si] (no side effects)."""
        entry = r.cur_entry
        if entry is None:
            return False
        step = r.steps[r.si]
        remaining = list(step.uops[r.consumed:])
        kind = entry.end_kind
        ptr: Optional[XbPointer]
        if kind is None:
            ptr = entry.nt_ptr
        elif kind is InstrKind.COND_BRANCH:
            ptr = entry.pointer_for(r.last_taken)
        elif kind is InstrKind.CALL:
            ptr = entry.taken_ptr
        elif kind is InstrKind.RETURN:
            e_call = r.xrsb.peek()
            ptr = e_call.nt_ptr if e_call is not None else None
        else:  # indirect
            predicted = r.xibtb.predict(entry.xb_ip)
            ptr = (
                self._resolve_payload_ptr(r, predicted, step, remaining)
                if predicted is not None else None
            )
        shape = self._validate_ptr(ptr, step, remaining)
        if shape != "full":
            if shape != "prefix":
                return False
        assert ptr is not None
        expected = (
            remaining[: ptr.offset][::-1] if shape == "prefix"
            else remaining[::-1]
        )
        return (
            r.storage.probe(ptr.xb_ip, ptr.mask, ptr.offset, expected)
            is not None
        )
