"""The XBC frontend (§3.5–§3.10): the paper's Figure 6 put together.

Delivery mode follows XBTB pointers: each cycle the XBTB supplies up to
``xbs_per_cycle`` pointers (each conditional XB costs one XBP
prediction; promoted XBs cost none), a priority encoder assigns banks —
first XB first, the second XB fetching only until its first bank
conflict, with the conflicted remainder deferred to the next cycle —
and the out-mux reorders the reverse-stored uops.  XBTB misses,
unresolvable targets, and XBC misses that survive set search switch the
frontend to build mode; there the shared IC/BTB/decode engine supplies
uops while the XFU builds XBs, and the frontend switches back once the
next XB is reachable through the XBTB with its lines resident.

Bookkeeping discipline: every *transition* between consecutive XBs
(prediction consumption, bias-counter update, XRSB push/pop, XiBTB
training) happens exactly once, whichever mode processes it; gshare is
trained per conditional branch exactly once — by the build engine when
the branch's uops came from the IC, by the transition logic when they
came from the XBC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.branch.bias import BIAS_MAX, PROMOTE_HIGH, PROMOTE_LOW
from repro.branch.btb import BranchTargetBuffer
from repro.branch.gshare import GsharePredictor
from repro.branch.indirect import IndirectPredictor
from repro.branch.rsb import ReturnStackBuffer
from repro.frontend.base import FrontendModel, UopFlow
from repro.frontend.build_engine import BuildEngine
from repro.frontend.config import FrontendConfig
from repro.frontend.icache import InstructionCache
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.isa.uop import uop_uid_ip, uop_uid_index
from repro.trace.record import Trace
from repro.xbc.config import XbcConfig
from repro.xbc.fill import XbcFillUnit
from repro.xbc.pointer import XbPointer
from repro.xbc.promotion import Promoter
from repro.xbc.storage import XbcStorage
from repro.xbc.xbseq import XbStep, build_xb_stream
from repro.xbc.xbtb import Xbtb, XbtbEntry


@dataclass(slots=True)
class FetchUnit:
    """One XBC fetch in flight: a located XB entry point."""

    xb_ip: int
    mask: int
    offset: int                     # uops still to fetch, from the end
    rev_expected: Sequence[int]     # expected uops, distance order
    advance_steps: int              # steps completed when this unit finishes
    source_ptr: Optional[XbPointer] = None  # repaired in place by set search
    delivered: int = 0              # uops already delivered (partial fetches)
    counted: bool = False           # structure_lookups already incremented
    hit_counted: bool = False       # structure_hits already incremented
    #: last successful probe, valid while the storage version is
    #: unchanged (deferral retries re-fetch the same lines; skip the
    #: content re-verification when nothing mutated in between)
    cached_map: Optional[dict] = None
    cached_version: int = -1
    #: OR of the cached mapping's bank bits — one AND decides the
    #: no-conflict arbitration fast path
    cached_bits: int = 0
    #: fast path is only sound when the mapping's orders sit in
    #: pairwise-distinct banks (a bank serves one line per cycle, so a
    #: same-bank pair must go through the serializing slow loop)
    cached_clean: bool = False


class _Run:
    """All mutable state of one simulation (one trace, one frontend)."""

    def __init__(self) -> None:
        self.trace: Optional[Trace] = None
        self.steps: List[XbStep] = []
        self.n_steps = 0
        self.stats: FrontendStats = None  # type: ignore[assignment]
        self.flow: UopFlow = None  # type: ignore[assignment]
        self.gshare: GsharePredictor = None  # type: ignore[assignment]
        self.xibtb: IndirectPredictor = None  # type: ignore[assignment]
        self.xrsb: ReturnStackBuffer = None  # type: ignore[assignment]
        self.engine: BuildEngine = None  # type: ignore[assignment]
        self.storage: XbcStorage = None  # type: ignore[assignment]
        self.xbtb: Xbtb = None  # type: ignore[assignment]
        self.fill: XbcFillUnit = None  # type: ignore[assignment]
        self.promoter: Promoter = None  # type: ignore[assignment]

        self.si = 0            # next step to cover
        self.consumed = 0      # uops of steps[si] already covered (split chains)
        self.pos = 0           # record index (build mode)
        self.delivery = False
        self.cur_entry: Optional[XbtbEntry] = None
        self.last_taken = False
        self.last_in_build = True
        self.last_mask = 0     # previous XB's banks (smart placement)
        self.a_done = False    # transition bookkeeping for steps[si] done
        self.link_info: Tuple[Optional[XbtbEntry], bool] = (None, False)
        #: indirect-ended entry whose XiBTB payload the next build
        #: finalize should (re)train with the fill unit's real pointer
        self.xibtb_source: Optional[XbtbEntry] = None
        self.resolved: Optional[Tuple[str, Optional[FetchUnit]]] = None
        self.pending: Optional[FetchUnit] = None
        self.max_xb = 0        # hoisted XbcConfig.max_xb_uops
        #: (id(step.uops), consumed) -> (tail, tail reversed).  The memo
        #: holds the tail tuples alive, so a split-chain occurrence
        #: reuses ONE tuple object per (static chunk, consumed) pair —
        #: which is what lets the pointer-level probe memo hit on the
        #: identity compare of rev_expected.
        self.tails: dict = {}
        #: (id(seq), offset) -> reversed prefix of seq.  Keys are only
        #: ever step.uops tuples or memoized tails (both run-lifetime
        #: objects), so the ids are stable.
        self.rev_memo: dict = {}
        #: (xb_ip, offset, id(expected)) -> (storage version, mask or
        #: None): the outcome of one payload resolution, reusable while
        #: the storage is unchanged (the resolution is a pure function
        #: of the version; its heal side effects are idempotent).
        self.payload_memo: dict = {}
        #: (xb_ip, mask, offset, id(expected)) -> (set version, map):
        #: probe memo for pointer-less fetch units (combined XBs),
        #: which have no XbPointer to hang the cache on.
        self.probe_memo: dict = {}


class XbcFrontend(FrontendModel):
    """The eXtended Block Cache frontend."""

    name = "xbc"

    def __init__(
        self,
        config: Optional[FrontendConfig] = None,
        xbc_config: Optional[XbcConfig] = None,
    ) -> None:
        super().__init__(config if config is not None else FrontendConfig())
        xbc_config = xbc_config if xbc_config is not None else XbcConfig()
        xbc_config.validate()
        self.xbc_config = xbc_config

    # ------------------------------------------------------------------
    # top level
    # ------------------------------------------------------------------

    def run(self, trace: Trace) -> FrontendStats:
        """Simulate the trace through the XBC frontend."""
        config = self.config
        xc = self.xbc_config
        r = _Run()
        r.trace = trace
        r.steps = build_xb_stream(trace, xc.max_xb_uops)
        r.n_steps = len(r.steps)
        r.stats = FrontendStats(frontend=self.name, trace_name=trace.name)
        r.flow = UopFlow(config, r.stats)
        r.gshare = GsharePredictor(config.gshare_history_bits, config.gshare_entries)
        r.xibtb = IndirectPredictor(
            config.indirect_entries, config.indirect_history_bits
        )
        r.xrsb = ReturnStackBuffer(xc.xrsb_depth)
        r.engine = BuildEngine(
            config=config,
            stats=r.stats,
            icache=InstructionCache(
                config.ic_size_bytes, config.ic_line_bytes, config.ic_assoc
            ),
            cond_predictor=r.gshare,
            btb=BranchTargetBuffer(config.btb_entries, config.btb_assoc),
            rsb=ReturnStackBuffer(config.rsb_depth),
            indirect=IndirectPredictor(
                config.indirect_entries, config.indirect_history_bits
            ),
        )
        r.storage = XbcStorage(xc)
        r.xbtb = Xbtb(xc)
        r.fill = XbcFillUnit(xc, r.storage, r.xbtb, r.stats)
        r.promoter = Promoter(xc, r.storage, r.xbtb, r.stats)
        r.max_xb = xc.max_xb_uops

        stats = r.stats
        flow = r.flow
        width = flow.renamer_width
        n_steps = r.n_steps
        depth = flow.depth
        max_xb = r.max_xb
        while r.si < n_steps:
            stats.cycles += 1
            # inline flow.drain(): one renamer cycle
            occ = flow.occupancy
            taken = occ if occ < width else width
            occ -= taken
            flow.occupancy = occ
            stats.retired_uops += taken
            if r.delivery:
                deficit = max_xb - (depth - occ)
                if deficit > 0:
                    # Queue lacks room for even one XB: nothing can be
                    # fetched until the renamer drains `deficit` more
                    # uops.  Those cycles are pure full-width drains —
                    # fast-forward them in one step (cycle-exact).
                    stats.delivery_cycles += 1
                    extra = (deficit + width - 1) // width - 1
                    if extra > 0 and occ >= extra * width:
                        stats.cycles += extra
                        stats.retired_uops += extra * width
                        flow.occupancy = occ - extra * width
                        stats.delivery_cycles += extra
                    continue
                self._delivery_cycle(r)
            else:
                self._build_cycle(r)
        r.flow.drain_all()

        r.stats.extra["xbc_redundancy_x1000"] = int(r.storage.redundancy() * 1000)
        r.stats.extra["xbc_resident_uops"] = r.storage.resident_uops()
        r.stats.extra["xbc_evictions"] = r.storage.evictions
        r.stats.extra["xbc_gc_evictions"] = r.storage.gc_evictions
        r.stats.extra["xbc_relocations"] = r.storage.relocations
        r.stats.extra["xbtb_entries"] = r.xbtb.resident_entries()
        r.stats.verify_conservation(trace.total_uops)
        return r.stats

    # ------------------------------------------------------------------
    # delivery mode
    # ------------------------------------------------------------------

    def _delivery_cycle(self, r: _Run) -> None:
        """One delivery-mode cycle.

        This method IS the simulator's hot loop: transition resolution,
        the data-array access under bank arbitration (the former
        ``_execute_fetch``), and step advancement are fused inline —
        at ~1.3 fetch-unit accesses per cycle the call dispatch alone
        otherwise dominates the profile.
        """
        stats = r.stats
        xc = self.xbc_config
        stats.delivery_cycles += 1
        flow = r.flow

        storage = r.storage
        set_versions = storage.set_versions
        set_mask = storage._set_mask
        banks_used = 0
        delivered_any = False
        slots = xc.xbs_per_cycle

        unit = r.pending
        r.pending = None
        while slots > 0 and r.si < r.n_steps:
            if unit is None:
                if r.resolved is not None:
                    tag, unit = r.resolved
                    r.resolved = None
                else:
                    tag, unit = self._resolve_fresh(r)
                if tag == "build":
                    if delivered_any or slots < xc.xbs_per_cycle:
                        # Fetched something this cycle; switch next cycle.
                        r.resolved = ("build", None)
                        break
                    self._switch_to_build(r)
                    break
                if tag == "stall":
                    r.resolved = ("unit", unit)
                    break

            # ---- data-array access for one unit, bank-arbitrated ----
            if not unit.counted:
                stats.structure_lookups += 1
                unit.counted = True

            version = set_versions[(unit.xb_ip >> 1) & set_mask]
            mapping = unit.cached_map
            if mapping is None or unit.cached_version != version:
                ptr = unit.source_ptr
                if ptr is not None:
                    key = (version, unit.mask, unit.offset)
                    if (
                        ptr.cache_key == key
                        and ptr.cache_rev is unit.rev_expected
                    ):
                        mapping = ptr.cache_map
                    else:
                        mapping = storage.probe(
                            unit.xb_ip, unit.mask, unit.offset,
                            unit.rev_expected,
                        )
                        if mapping is not None:
                            ptr.cache_key = key
                            ptr.cache_rev = unit.rev_expected
                            ptr.cache_map = mapping
                else:
                    # Pointer-less units (combined XBs): run-level memo.
                    mkey = (
                        unit.xb_ip, unit.mask, unit.offset,
                        id(unit.rev_expected),
                    )
                    hit = r.probe_memo.get(mkey)
                    if hit is not None and hit[0] == version:
                        mapping = hit[1]
                    else:
                        mapping = storage.probe(
                            unit.xb_ip, unit.mask, unit.offset,
                            unit.rev_expected,
                        )
                        if mapping is not None:
                            r.probe_memo[mkey] = (version, mapping)
                if mapping is not None:
                    unit.cached_map = mapping
                    unit.cached_version = version
                    bits = 0
                    clean = True
                    for slot in mapping.values():
                        bit = 1 << slot[0]
                        if bits & bit:
                            clean = False
                        bits |= bit
                    unit.cached_bits = bits
                    unit.cached_clean = clean

            if mapping is None:
                if xc.enable_set_search:
                    stats.bump("set_searches")
                    repaired = storage.set_search(
                        unit.xb_ip, unit.offset, unit.rev_expected
                    )
                    if repaired is not None:
                        mask, _mapping = repaired
                        unit.mask = mask
                        if unit.source_ptr is not None:
                            unit.source_ptr.mask = mask
                        stats.bump("set_search_hits")
                        stats.add_penalty("set_search", 1)
                        r.pending = unit  # retry next cycle
                        break
                self._abort_unit(r, unit)
                self._switch_to_build(r)
                break
            if not unit.hit_counted:
                stats.structure_hits += 1
                unit.hit_counted = True

            # Fast path: the mapping's banks are pairwise distinct and
            # none overlaps this cycle's fetches, so the whole mapping
            # is fetched — one AND replaces the arbitration scan.  (The
            # cached mapping always covers exactly the orders the
            # unit's current offset needs.)
            bits = unit.cached_bits
            if unit.cached_clean and not banks_used & bits:
                delivered = unit.offset
                banks_used |= bits
                # inline storage.touch(): LRU-refresh the fetched lines
                storage._clock += 1
                stamp = storage._clock
                set_lines = storage._sets[(unit.xb_ip >> 1) & set_mask]
                for bank, way in mapping.values():
                    line = set_lines[bank][way]
                    if line is not None:
                        line.stamp = stamp
            else:
                line_uops = xc.line_uops
                needed = (unit.offset + line_uops - 1) // line_uops
                fetched: dict = {}
                stop_order = 0  # orders [stop_order, needed) were fetched
                for order in range(needed - 1, -1, -1):
                    slot = mapping[order]
                    bit = 1 << slot[0]
                    if banks_used & bit:
                        stop_order = order + 1
                        break
                    fetched[order] = slot
                    banks_used |= bit
                else:
                    stop_order = 0

                if not fetched:  # deferred: retry next cycle
                    self._note_conflict(r, unit, mapping, banks_used)
                    r.pending = unit
                    break

                delivered = unit.offset - stop_order * line_uops
                storage.touch(storage.index_of(unit.xb_ip), fetched)

                if stop_order > 0:  # partial: the rest next cycle
                    stats.uops_from_structure += delivered
                    flow.occupancy += delivered
                    unit.delivered += delivered
                    unit.offset = stop_order * line_uops
                    unit.rev_expected = unit.rev_expected[: unit.offset]
                    # Keep the cached-mapping invariant: exactly the
                    # orders the reduced offset needs, matching bits.
                    trimmed = {o: mapping[o] for o in range(stop_order)}
                    tbits = 0
                    tclean = True
                    for slot in trimmed.values():
                        bit = 1 << slot[0]
                        if tbits & bit:
                            tclean = False
                        tbits |= bit
                    unit.cached_map = trimmed
                    unit.cached_bits = tbits
                    unit.cached_clean = tclean
                    self._note_conflict(r, unit, mapping, banks_used)
                    delivered_any = True
                    r.pending = unit
                    break

            stats.uops_from_structure += delivered
            flow.occupancy += delivered  # inline flow.push()
            unit.delivered += delivered
            delivered_any = True

            # ---- done: commit the unit's step progress ----
            # (_advance_after and xbtb.lookup, inlined)
            r.a_done = False
            r.resolved = None
            r.link_info = (None, False)
            r.xibtb_source = None
            r.last_in_build = False
            r.last_mask = unit.mask
            adv = unit.advance_steps
            if adv == 0:
                r.consumed += unit.delivered
                ip = unit.xb_ip
            else:
                steps = r.steps
                si = r.si
                for _ in range(adv):
                    r.last_taken = steps[si].taken
                    si += 1
                r.si = si
                r.consumed = 0
                ip = steps[si - 1].end_ip
            xbtb = r.xbtb
            xbtb.lookups += 1
            entry = xbtb._sets[(ip >> 1) & xbtb._set_mask].get(ip)
            if entry is not None:
                xbtb.hits += 1
                xbtb._clock += 1
                entry.stamp = xbtb._clock
            r.cur_entry = entry
            unit = None
            slots -= 1
        if delivered_any:
            stats.structure_fetch_cycles += 1

    def _switch_to_build(self, r: _Run) -> None:
        r.delivery = False
        r.resolved = None
        r.stats.switches_to_build += 1
        r.stats.add_penalty("mode_switch", self.config.mode_switch_penalty)
        r.pos = self._record_pos(r)

    def _record_pos(self, r: _Run) -> int:
        """Record index of the first uncovered instruction of steps[si]."""
        step = r.steps[r.si]
        if r.consumed == 0:
            return step.first_record
        skipped = sum(
            1 for uid in step.uops[: r.consumed] if uop_uid_index(uid) == 0
        )
        return step.first_record + skipped

    def _abort_unit(self, r: _Run, unit: FetchUnit) -> None:
        """Undo the uop accounting of a half-delivered unit (rare).

        A pending unit can only die if its lines vanished between
        cycles; the step is then rebuilt wholesale in build mode, so
        the already-delivered uops must not be double counted.
        """
        if unit.delivered:
            r.stats.uops_from_structure -= unit.delivered
            # Some of the aborted uops may still sit in the queue, the
            # rest were already drained; undo both sides exactly so the
            # rebuild in build mode re-supplies them once.
            undrained = min(r.flow.occupancy, unit.delivered)
            r.flow.occupancy -= undrained
            r.stats.retired_uops -= unit.delivered - undrained
            r.stats.bump("pending_aborts")

    # ------------------------------------------------------------------
    # transition resolution
    # ------------------------------------------------------------------

    def _resolve_fresh(self, r: _Run) -> Tuple[str, Optional[FetchUnit]]:
        """Consume the transition into steps[si]; build the fetch unit.

        Returns ("unit", u) to fetch now, ("stall", u) after a charged
        re-steer with the corrected unit ready for next cycle, or
        ("build", None).
        """
        step = r.steps[r.si]
        if r.consumed:
            remaining, rev = self._tail_of(r, step, r.consumed)
        else:
            remaining, rev = step.uops, step.rev
        entry = r.cur_entry
        if entry is None:
            return ("build", None)

        # The two transition kinds that dominate every trace — plain
        # fall-through and non-promoted conditionals — are handled
        # inline; everything else goes through the general resolver.
        kind = entry.end_kind
        mispredict: Optional[str] = None
        if kind is None:
            r.a_done = True
            r.link_info = (entry, False)
            ptr = entry.nt_ptr
        elif kind is InstrKind.COND_BRANCH and entry.promoted is None:
            r.a_done = True
            actual = r.last_taken
            r.link_info = (entry, actual)
            if not r.last_in_build:
                stats = r.stats
                stats.cond_predictions += 1
                if not r.gshare.update(entry.xb_ip, actual):
                    stats.cond_mispredicts += 1
                    mispredict = "cond"
            # promoter.on_outcome for a non-promoted conditional, inline
            bias = entry.bias
            value = bias.value
            if actual:
                if value < BIAS_MAX:
                    value = bias.value = value + 1
            else:
                if value > 0:
                    value = bias.value = value - 1
            if self.xbc_config.enable_promotion and (
                value <= PROMOTE_LOW or value >= PROMOTE_HIGH
            ):
                r.promoter._try_promote(entry)
            ptr = entry.taken_ptr if actual else entry.nt_ptr
        else:
            ptr, mispredict = self._transition(
                r, entry, step, remaining, in_build=False
            )

        # _validate_ptr, inline
        shape = None
        if ptr is not None:
            rem = len(remaining)
            if ptr.xb_ip == step.end_ip and ptr.offset == rem:
                shape = "full"
            elif (
                0 < ptr.offset < rem
                and uop_uid_ip(remaining[ptr.offset - 1]) == ptr.xb_ip
                and uop_uid_ip(remaining[ptr.offset]) != ptr.xb_ip
            ):
                shape = "prefix"
        if mispredict is not None:
            r.stats.add_penalty("mispredict", self.config.mispredict_penalty)
            if shape is None:
                return ("build", None)
            return ("stall", self._make_unit(r, ptr, step, remaining, shape, rev))
        if shape is None:
            return ("build", None)
        unit = self._make_unit(r, ptr, step, remaining, shape, rev)
        return ("unit", unit)

    @staticmethod
    def _tail_of(r: _Run, step: XbStep, consumed: int):
        """Memoized (tail, reversed tail) of steps split by *consumed*.

        Returning the SAME tuple objects for every occurrence of a
        (static chunk, consumed) pair keeps the pointer-level probe
        memo's identity compare effective on split-chain tails.
        """
        key = (id(step.uops), consumed)
        cached = r.tails.get(key)
        if cached is None:
            tail = step.uops[consumed:]
            cached = (tail, tail[::-1])
            r.tails[key] = cached
        return cached

    @staticmethod
    def _prefix_rev_of(r: _Run, seq, offset: int):
        """Memoized ``seq[:offset][::-1]`` (*seq* must be run-lifetime)."""
        key = (id(seq), offset)
        out = r.rev_memo.get(key)
        if out is None:
            out = seq[:offset][::-1]
            r.rev_memo[key] = out
        return out

    def _transition(
        self,
        r: _Run,
        entry: XbtbEntry,
        step: XbStep,
        remaining: Sequence[int],
        in_build: bool,
    ) -> Tuple[Optional[XbPointer], Optional[str]]:
        """Once-per-transition bookkeeping; returns (candidate, mispredict).

        *candidate* is the pointer the machine ends up following on the
        correct path (trace-driven); *mispredict* names the re-steer
        cause when the prediction disagreed with the actual outcome
        (``None`` when prediction was right or already charged by the
        build engine).
        """
        stats = r.stats
        r.a_done = True
        r.link_info = (entry, False)
        kind = entry.end_kind
        actual_payload = (step.end_ip, len(remaining))

        if kind is None:
            return entry.nt_ptr, None

        if kind is InstrKind.COND_BRANCH:
            actual = r.last_taken
            r.link_info = (entry, actual)
            if entry.promoted is not None:
                promoted_dir = entry.promoted
                r.promoter.on_outcome(entry, actual)
                ptr = entry.pointer_for(actual)
                if actual != promoted_dir:
                    stats.bump("promotion_misses")
                    return ptr, None if in_build else "promotion"
                return ptr, None
            mispredict: Optional[str] = None
            if not in_build and not r.last_in_build:
                stats.cond_predictions += 1
                if not r.gshare.update(entry.xb_ip, actual):
                    stats.cond_mispredicts += 1
                    mispredict = "cond"
            r.promoter.on_outcome(entry, actual)
            return entry.pointer_for(actual), mispredict

        if kind is InstrKind.CALL:
            r.xrsb.push(entry)
            r.link_info = (entry, True)
            return entry.taken_ptr, None

        if kind in (InstrKind.INDIRECT_JUMP, InstrKind.INDIRECT_CALL):
            if kind is InstrKind.INDIRECT_CALL:
                r.xrsb.push(entry)
            r.link_info = (None, False)  # the XiBTB owns this linkage
            r.xibtb_source = entry       # finalize trains the real payload
            predicted = r.xibtb.predict(entry.xb_ip)
            candidate = (
                self._resolve_payload_ptr(r, predicted, step, remaining)
                if predicted is not None else None
            )
            correct = candidate is not None
            mispredict = None
            if not in_build and not r.last_in_build:
                stats.indirect_predictions += 1
                if not correct:
                    stats.indirect_mispredicts += 1
                    mispredict = "indirect"
            if correct:
                # Reinforce the winning payload (it may name a split
                # prefix, which a plain end-IP payload could not).
                r.xibtb.train(entry.xb_ip, predicted, step.end_ip)
                return candidate, None
            r.xibtb.train(entry.xb_ip, actual_payload, step.end_ip)
            return (
                self._resolve_payload_ptr(r, actual_payload, step, remaining),
                mispredict,
            )

        if kind is InstrKind.RETURN:
            e_call = r.xrsb.pop()
            ptr = e_call.nt_ptr if e_call is not None else None
            good = ptr is not None and ptr.matches(*actual_payload)
            mispredict = None
            if not in_build and not r.last_in_build:
                stats.return_predictions += 1
                if not good:
                    stats.return_mispredicts += 1
                    mispredict = "return"
            if good:
                r.link_info = (e_call, False)
                return ptr, None
            r.link_info = (e_call, False) if e_call is not None else (None, False)
            return (
                self._resolve_payload_ptr(r, actual_payload, step, remaining),
                mispredict,
            )

        return None, None

    def _pointer_from_payload(
        self,
        r: _Run,
        payload: Tuple[int, int],
        rev_expected: Optional[Sequence[int]] = None,
    ) -> Optional[XbPointer]:
        """Resolve a (xb_ip, offset) payload through the target's entry.

        When *rev_expected* is given, only a variant whose stored
        content matches it qualifies — essential when one end-IP has
        several variants with different prefixes (§3.3).
        """
        xb_ip, offset = payload
        key = (xb_ip, offset, id(rev_expected))
        storage = r.storage
        version = storage.set_versions[(xb_ip >> 1) & storage._set_mask]
        hit = r.payload_memo.get(key)
        if hit is not None and hit[0] == version:
            mask = hit[1]
            return None if mask is None else XbPointer(xb_ip, mask, offset)
        result: Optional[int] = None
        target = r.xbtb.peek(xb_ip)
        if target is not None:
            for variant in target.valid_variants(r.storage):
                if variant.length < offset:
                    continue
                # Locate through the variant's line references: dynamic
                # placement may have moved lines, leaving the mask stale.
                mapping = variant.locate(r.storage, xb_ip)
                if mapping is None:
                    continue
                mask = 0
                for bank, _way in mapping.values():
                    mask |= 1 << bank
                variant.mask = mask  # heal the record while we are here
                if rev_expected is not None and r.storage.probe(
                    xb_ip, mask, offset, rev_expected
                ) is None:
                    continue
                result = mask
                break
        r.payload_memo[key] = (version, result)
        return None if result is None else XbPointer(xb_ip, result, offset)

    def _resolve_payload_ptr(
        self,
        r: _Run,
        payload: Tuple[int, int],
        step: XbStep,
        remaining: Sequence[int],
    ) -> Optional[XbPointer]:
        """Resolve a payload against the actual path, content-checked.

        Accepts both shapes a correct payload can take: the full
        remainder of the current step, or a split-prefix chain link
        covering its leading instructions.
        """
        xb_ip, offset = payload
        rem = len(remaining)
        if xb_ip == step.end_ip and offset == rem:
            expected = self._prefix_rev_of(r, remaining, rem)
        elif (
            0 < offset < rem
            and uop_uid_ip(remaining[offset - 1]) == xb_ip
            and uop_uid_ip(remaining[offset]) != xb_ip
        ):
            expected = self._prefix_rev_of(r, remaining, offset)
        else:
            return None
        return self._pointer_from_payload(r, payload, expected)

    def _validate_ptr(
        self,
        ptr: Optional[XbPointer],
        step: XbStep,
        remaining: Sequence[int],
    ) -> Optional[str]:
        """Check a candidate pointer against the actual path.

        "full" covers the whole remainder of the step; "prefix" is a
        split-policy chain link covering its leading instructions.
        """
        if ptr is None:
            return None
        rem = len(remaining)
        if ptr.xb_ip == step.end_ip and ptr.offset == rem:
            return "full"
        if (
            0 < ptr.offset < rem
            and uop_uid_ip(remaining[ptr.offset - 1]) == ptr.xb_ip
            and uop_uid_ip(remaining[ptr.offset]) != ptr.xb_ip
        ):
            return "prefix"
        return None

    def _make_unit(
        self,
        r: _Run,
        ptr: XbPointer,
        step: XbStep,
        remaining: Sequence[int],
        shape: str,
        rev: Optional[Sequence[int]] = None,
    ) -> FetchUnit:
        """Build the fetch unit, upgrading to a combined XB (§3.8)."""
        if shape == "prefix":
            return FetchUnit(
                xb_ip=ptr.xb_ip,
                mask=ptr.mask,
                offset=ptr.offset,
                rev_expected=self._prefix_rev_of(r, remaining, ptr.offset),
                advance_steps=0,
                source_ptr=ptr,
            )

        xbtb = r.xbtb
        target = xbtb._sets[(ptr.xb_ip >> 1) & xbtb._set_mask].get(ptr.xb_ip)
        if (
            target is not None
            and target.promoted is not None
            and step.taken == target.promoted
            and r.si + 1 < r.n_steps
        ):
            nxt = r.steps[r.si + 1]
            if (
                nxt.end_ip == target.forward_xb_ip
                and len(nxt.uops) == target.forward_len1
            ):
                e1 = r.xbtb.peek(target.forward_xb_ip)
                comb_offset = ptr.offset + target.forward_len1
                variant = (
                    e1.variant_covering(r.storage, comb_offset)
                    if e1 is not None
                    else None
                )
                if variant is not None:
                    r.promoter.on_outcome(target, step.taken)
                    r.stats.bump("comb_fetches")
                    key = (id(remaining), id(nxt.uops), -1)
                    crev = r.rev_memo.get(key)
                    if crev is None:
                        crev = (tuple(remaining) + nxt.uops)[::-1]
                        r.rev_memo[key] = crev
                    return FetchUnit(
                        xb_ip=target.forward_xb_ip,
                        mask=variant.mask,
                        offset=comb_offset,
                        rev_expected=crev,
                        advance_steps=2,
                    )

        return FetchUnit(
            xb_ip=ptr.xb_ip,
            mask=ptr.mask,
            offset=ptr.offset,
            rev_expected=rev if rev is not None else remaining[::-1],
            advance_steps=1,
            source_ptr=ptr,
        )

    # ------------------------------------------------------------------
    # storage access
    # ------------------------------------------------------------------

    def _note_conflict(
        self, r: _Run, unit: FetchUnit, mapping: dict, banks_used: int
    ) -> None:
        """Record a deferral; relocate the conflicting line if hot (§3.10)."""
        r.stats.bump("bank_conflict_deferrals")
        if not r.storage.note_deferral(unit.xb_ip):
            return
        if not self.xbc_config.enable_dynamic_placement:
            return
        needed = r.storage.orders_for(unit.offset)
        top = needed - 1
        if top in mapping:
            bank, way = mapping[top]
            set_idx = r.storage.index_of(unit.xb_ip)
            r.storage.relocate_line(set_idx, bank, way, banks_used)

    # ------------------------------------------------------------------
    # build mode
    # ------------------------------------------------------------------

    def _build_cycle(self, r: _Run) -> None:
        stats = r.stats
        stats.build_cycles += 1
        if not r.flow.can_accept(4 * self.config.decode_width):
            return
        r.pos, cycle = r.engine.fetch_cycle(r.trace, r.pos)
        stats.uops_from_ic += cycle.uops
        r.flow.push(cycle.uops)
        for cause, cycles in cycle.penalties.items():
            stats.add_penalty(cause, cycles)

        finalized = False
        while r.si < r.n_steps and r.pos > r.steps[r.si].last_record:
            self._finalize_step(r)
            finalized = True
        # Only switch at an exact step boundary: the build engine may have
        # overshot into the next step within this fetch cycle, and those
        # uops were already supplied from the IC.
        if (
            finalized
            and r.si < r.n_steps
            and r.pos == r.steps[r.si].first_record
            and self._can_deliver(r)
        ):
            r.delivery = True
            r.stats.switches_to_delivery += 1
            r.stats.add_penalty("mode_switch", self.config.mode_switch_penalty)

    def _finalize_step(self, r: _Run) -> None:
        step = r.steps[r.si]
        occurrence = (
            self._tail_of(r, step, r.consumed)[0] if r.consumed else step.uops
        )
        entry, new_ptr = r.fill.install(
            step.end_ip, step.end_kind, occurrence, avoid_mask=r.last_mask
        )
        r.stats.blocks_built += 1

        if r.cur_entry is not None:
            if not r.a_done:
                remaining = occurrence
                self._transition(r, r.cur_entry, step, remaining, in_build=True)
            link_entry, link_taken = r.link_info
            if new_ptr is not None and link_entry is not None:
                link_entry.set_pointer(link_taken, new_ptr)
            if new_ptr is not None and r.xibtb_source is not None:
                # Indirect transitions learn the fill unit's real pointer
                # (which may name a split prefix) rather than the plain
                # end-IP payload guessed at transition time.
                r.xibtb.train(
                    r.xibtb_source.xb_ip,
                    (new_ptr.xb_ip, new_ptr.offset),
                    new_ptr.xb_ip,
                )

        r.cur_entry = entry
        r.last_taken = step.taken
        r.last_in_build = True
        r.last_mask = new_ptr.mask if new_ptr is not None else 0
        r.si += 1
        r.consumed = 0
        r.a_done = False
        r.resolved = None
        r.link_info = (None, False)
        r.xibtb_source = None

    def _can_deliver(self, r: _Run) -> bool:
        """Peek whether delivery could resume at steps[si] (no side effects)."""
        entry = r.cur_entry
        if entry is None:
            return False
        step = r.steps[r.si]
        remaining = (
            self._tail_of(r, step, r.consumed)[0] if r.consumed else step.uops
        )
        kind = entry.end_kind
        ptr: Optional[XbPointer]
        if kind is None:
            ptr = entry.nt_ptr
        elif kind is InstrKind.COND_BRANCH:
            ptr = entry.pointer_for(r.last_taken)
        elif kind is InstrKind.CALL:
            ptr = entry.taken_ptr
        elif kind is InstrKind.RETURN:
            e_call = r.xrsb.peek()
            ptr = e_call.nt_ptr if e_call is not None else None
        else:  # indirect
            predicted = r.xibtb.predict(entry.xb_ip)
            ptr = (
                self._resolve_payload_ptr(r, predicted, step, remaining)
                if predicted is not None else None
            )
        shape = self._validate_ptr(ptr, step, remaining)
        if shape != "full":
            if shape != "prefix":
                return False
        assert ptr is not None
        if shape == "prefix":
            expected = self._prefix_rev_of(r, remaining, ptr.offset)
        elif r.consumed == 0:
            expected = step.rev
        else:
            expected = self._tail_of(r, step, r.consumed)[1]
        return (
            r.storage.probe(ptr.xb_ip, ptr.mask, ptr.offset, expected)
            is not None
        )
