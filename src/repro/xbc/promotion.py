"""Branch promotion (§3.8, after [Pate98]).

A conditional-ended XB whose 7-bit bias counter saturates (≥ 99.2%
monotonic) is *promoted*: its branch is treated as unconditional and
the XB is merged with the usually-following XB into a combined XB,
``XBcomb``.  Physically, the following XB (XB1) stays where it is and
XB0's uops are copied in front of it as a (possibly complex) variant
of XB1 — so XBcomb's identity is XB1's end-IP, and fetching it costs
no branch prediction, which is where the extra fetch bandwidth comes
from (Figure 1's "XB w/ promotion" series).

The promoted entry keeps both roles the paper assigns it: its pointers
still name the non-frequent path (saving a build-mode switch on a
promotion miss), and its counter keeps gathering statistics so a
misbehaving promoted branch is de-promoted.
"""

from __future__ import annotations

from typing import Optional

from repro.branch.bias import BIAS_MAX, PROMOTE_HIGH, PROMOTE_LOW
from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.xbc.config import XbcConfig
from repro.xbc.storage import XbcStorage
from repro.xbc.xbtb import Xbtb, XbtbEntry, XbVariant


class Promoter:
    """Owns the promotion/de-promotion policy for one simulation."""

    def __init__(
        self,
        config: XbcConfig,
        storage: XbcStorage,
        xbtb: Xbtb,
        stats: FrontendStats,
    ) -> None:
        self.config = config
        self.storage = storage
        self.xbtb = xbtb
        self.stats = stats

    def on_outcome(self, entry: XbtbEntry, taken: bool) -> None:
        """Record one execution of the branch ending *entry*'s XB.

        Updates the bias counter, de-promotes a misbehaving promoted
        branch, and attempts promotion when the counter saturates.
        Called exactly once per dynamic execution of the branch,
        regardless of which mode supplied its uops.
        """
        bias = entry.bias
        value = bias.value
        if taken:
            if value < BIAS_MAX:
                value = bias.value = value + 1
        else:
            if value > 0:
                value = bias.value = value - 1
        promoted = entry.promoted
        if promoted is not None:
            if taken != promoted and bias.misbehaving(
                promoted, self.config.depromotion_slack
            ):
                entry.demote()
                self.stats.bump("depromotions")
            return
        if not self.config.enable_promotion:
            return
        if entry.end_kind is not InstrKind.COND_BRANCH:
            return
        if value <= PROMOTE_LOW or value >= PROMOTE_HIGH:
            self._try_promote(entry)

    # ------------------------------------------------------------------

    def _try_promote(self, e0: XbtbEntry) -> None:
        """Attempt promotion, memoizing failures.

        A saturated bias counter retries promotion on every occurrence
        of the branch, and in a steady hot loop every retry fails the
        same way.  The attempt is a pure function of the storage
        content (covered by ``storage.version``), the XBTB population
        (covered by its allocation/eviction counters), the promotion
        direction and the followed pointer — so an attempt whose key is
        unchanged can be skipped outright, replaying only the counter
        bumps the original failure made.  Successes are never memoized
        (they change the storage version anyway).
        """
        direction = e0.bias.monotone_direction()
        ptr1 = e0.pointer_for(direction)
        if ptr1 is None:
            return
        storage = self.storage
        xbtb = self.xbtb
        key = (
            storage.version,
            xbtb.allocations,
            xbtb.evictions,
            direction,
            id(ptr1),
            ptr1.offset,
        )
        memo = e0.promo_fail
        if memo is not None and memo[0] == key:
            replay = memo[1]
            if replay == 1:
                self.stats.bump("promotions_skipped_length")
            elif replay == 2:
                storage.placement_failures += 1
                self.stats.bump("promotions_unplaced")
            return
        outcome = self._attempt_promote(e0, direction, ptr1)
        e0.promo_fail = (key, outcome) if outcome >= 0 else None

    def _attempt_promote(
        self, e0: XbtbEntry, direction: bool, ptr1
    ) -> int:
        """One real promotion attempt.

        Returns -1 on success and a failure code otherwise: 0 for the
        silent bail-outs, 1 for the skipped-length path, 2 for the
        unplaceable path (the codes tell :meth:`_try_promote` which
        counters a memoized replay must reproduce).
        """
        e1 = self.xbtb.peek(ptr1.xb_ip)
        if e1 is None:
            return 0

        # Full content of XB0 (its longest live copy).  Lengths are
        # checked first so the usual bail-outs never materialise uops.
        v0 = self._longest_variant(e0)
        if v0 is None:
            return 0
        len0 = v0.alive_length(self.storage, e0.xb_ip)
        if len0 is None:
            return 0

        comb_len = len0 + ptr1.offset
        if comb_len > self.config.max_xb_uops:
            self.stats.bump("promotions_skipped_length")
            return 1

        v1 = e1.variant_covering(self.storage, ptr1.offset)
        if v1 is None:
            return 0
        len1 = v1.alive_length(self.storage, e1.xb_ip)
        if len1 is None or len1 < ptr1.offset:
            return 0
        uops0 = v0.read(self.storage, e0.xb_ip)
        uops1 = v1.read(self.storage, e1.xb_ip)
        if uops0 is None or uops1 is None:
            return 0
        comb = uops0 + uops1[len(uops1) - ptr1.offset :]

        mapping = v1.locate(self.storage, e1.xb_ip)
        if mapping is None:
            return 0
        mask = self.storage.add_variant(
            e1.xb_ip, comb, mapping, reuse_len=ptr1.offset, reuse_mask=v1.mask
        )
        if mask is None:
            self.stats.bump("promotions_unplaced")
            return 2
        e1.variants.append(XbVariant(
            mask, comb_len, self.storage.last_lines
        ))

        e0.promoted = direction
        e0.forward_xb_ip = e1.xb_ip
        e0.forward_len1 = ptr1.offset
        # The paper drops XB0's original copy to the bottom of the LRU:
        # it is now reachable through XBcomb.
        self.storage.age_variant(e0.xb_ip, v0.mask)
        self.stats.bump("promotions")
        return -1

    def _longest_variant(self, entry: XbtbEntry) -> Optional[XbVariant]:
        best: Optional[XbVariant] = None
        for variant in entry.valid_variants(self.storage):
            if best is None or variant.length > best.length:
                best = variant
        return best
