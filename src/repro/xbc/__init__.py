"""The eXtended Block Cache — the paper's contribution (§3).

Public surface:

- :class:`~repro.xbc.config.XbcConfig` — geometry and the §3 policy
  switches (promotion, set search, dynamic placement, overlap policy);
- :class:`~repro.xbc.frontend.XbcFrontend` — the complete frontend;
- :func:`~repro.xbc.xbseq.build_xb_stream` — the canonical XB
  partitioning of a trace (useful for analysis on its own);
- the building blocks (:class:`~repro.xbc.storage.XbcStorage`,
  :class:`~repro.xbc.xbtb.Xbtb`, :class:`~repro.xbc.fill.XbcFillUnit`,
  :class:`~repro.xbc.promotion.Promoter`) for users assembling custom
  variants.
"""

from repro.xbc.config import XbcConfig
from repro.xbc.pointer import XbPointer
from repro.xbc.xbseq import XbStep, build_xb_stream
from repro.xbc.storage import XbcStorage, XbcLine
from repro.xbc.xbtb import Xbtb, XbtbEntry, XbVariant
from repro.xbc.fill import XbcFillUnit, common_suffix_len
from repro.xbc.promotion import Promoter
from repro.xbc.frontend import XbcFrontend, FetchUnit

__all__ = [
    "XbcConfig",
    "XbPointer",
    "XbStep",
    "build_xb_stream",
    "XbcStorage",
    "XbcLine",
    "Xbtb",
    "XbtbEntry",
    "XbVariant",
    "XbcFillUnit",
    "common_suffix_len",
    "Promoter",
    "XbcFrontend",
    "FetchUnit",
]
