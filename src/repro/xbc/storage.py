"""The XBC data/tag array (§3.2, §3.4, §3.10).

Geometry: ``num_sets`` sets × ``banks`` banks × ``ways_per_bank`` ways,
each way holding one ``line_uops``-uop line.  A stored XB occupies one
line in each of 1..banks *distinct* banks of a single set; the line
holding the XB's end is *order* 0, the preceding line order 1, etc.
(the paper's number field).

Uops are stored in **reverse order** (§3.4): the line at order ``k``
holds the uops at distances ``[k*line_uops, k*line_uops + line_uops)``
counted backward from the XB's ending instruction, so extending an XB
at its head never moves existing uops — the reverse-order trick that
motivates end-IP indexing.

Complex XBs (§3.3) are *variants*: multiple prefixes sharing the same
tag and the same full suffix lines.  A variant is denoted by a bank
mask.  Divergence from the paper: the paper suggests placing sibling
prefixes in different ways of the *same* bank; we place them in
*different* banks because a (tag, order) match in one bank cannot
otherwise be attributed to the right prefix.  The capacity effect is
identical; only the conflict pattern differs marginally.

Replacement is per-line LRU with the paper's head-line rule
approximated structurally: evicting a line of order *k* garbage-
collects all same-tag lines of order > *k* in the set (they hold
earlier uops that are unreachable without the evicted line), so
lower-order (end-side) lines — which serve mid-XB entries — are never
orphaned by the eviction of an upstream line.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.common.bitutils import log2_exact
from repro.common.errors import SimulationError
from repro.xbc.config import XbcConfig

#: (bank, way) location of one line inside a set.
Slot = Tuple[int, int]


class XbcLine:
    """One data-array line: a tag, an order, and reversed uop slots.

    Lines carry their own (bank, way) coordinates plus a residency
    flag, maintained by the storage on every placement, move and
    eviction.  Identity-based lookups (variant line references) become
    O(1) attribute reads instead of set scans.
    """

    __slots__ = ("tag", "order", "uops", "tup", "stamp", "bank", "way",
                 "resident")

    def __init__(self, tag: int, order: int, uops: List[int], stamp: int) -> None:
        self.tag = tag
        self.order = order
        self.uops = uops  # uops[j] = uid at distance order*line_uops + j
        self.tup = tuple(uops)  # immutable mirror for fast content compares
        self.stamp = stamp
        self.bank = -1
        self.way = -1
        self.resident = False


class XbcStorage:
    """Banked, set-associative storage for extended blocks."""

    def __init__(self, config: XbcConfig) -> None:
        config.validate()
        self.config = config
        self.num_sets = config.num_sets
        log2_exact(self.num_sets)
        self._set_mask = self.num_sets - 1
        self.banks = config.banks
        self.ways = config.ways_per_bank
        self.line_uops = config.line_uops
        self._sets: List[List[List[Optional[XbcLine]]]] = [
            [[None] * self.ways for _ in range(self.banks)]
            for _ in range(self.num_sets)
        ]
        #: per-set directory: tag -> resident lines of that tag.  This
        #: is the moral equivalent of a real tag array — lookups touch
        #: only the (few) lines of the probed tag instead of scanning
        #: every bank and way of the set.
        self._tags: List[Dict[int, List[XbcLine]]] = [
            {} for _ in range(self.num_sets)
        ]
        self._clock = 0
        #: bumped on every content/placement mutation (place, remove,
        #: in-place extension, relocation).  Probe results are pure
        #: functions of (version, arguments); callers may cache them
        #: across cycles while the version is unchanged.
        self.version = 0
        #: per-set mutation counters.  An XB's lines all live in the set
        #: named by its end-IP, so a probe/variant-validity memo keyed
        #: by the *set* version survives mutations in other sets — which
        #: is most of them (build interludes touch a handful of sets).
        self.set_versions: List[int] = [0] * self.num_sets
        self._deferrals: Dict[Tuple[int, int], int] = {}
        #: exact ``{order: (bank, way)}`` placement of the last
        #: successful insert/extend/add_variant — the fill unit records
        #: it into the variant (the "way select" the paper's same-bank
        #: prefix sharing implies).
        self.last_placement: Dict[int, Slot] = {}
        #: the line objects of the last placement, order-indexed.  A
        #: variant holds these references: dynamic placement may move a
        #: line between banks, but identity survives — only eviction
        #: (the line leaving the set) invalidates the variant.
        self.last_lines: List[XbcLine] = []

        # counters
        self.inserts = 0
        self.extensions = 0
        self.variants_added = 0
        self.evictions = 0
        self.gc_evictions = 0
        self.relocations = 0
        self.placement_failures = 0

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------

    def index_of(self, xb_ip: int) -> int:
        """Set index of the XB ending at *xb_ip*."""
        return (xb_ip >> 1) & self._set_mask

    def orders_for(self, offset: int) -> int:
        """Number of lines (orders 0..n-1) an *offset*-uop entry needs."""
        return (offset + self.line_uops - 1) // self.line_uops

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # ------------------------------------------------------------------
    # lookup paths
    # ------------------------------------------------------------------

    def probe(
        self,
        xb_ip: int,
        mask: int,
        offset: int,
        expected_rev: Optional[Sequence[int]] = None,
    ) -> Optional[Dict[int, Slot]]:
        """Directory lookup via a pointer's bank mask.

        Returns ``{order: (bank, way)}`` covering orders
        ``0..orders_for(offset)-1`` on a hit, else ``None``.  When
        *expected_rev* (uops in reverse order) is given, line contents
        are verified against it — a mismatch is a miss, which sends the
        frontend down the set-search path.
        """
        if expected_rev is not None and type(expected_rev) is not tuple:
            expected_rev = tuple(expected_rev)
        if mask >> self.banks:
            return None  # corrupt/stale mask
        line_uops = self.line_uops
        needed = (offset + line_uops - 1) // line_uops
        bucket = self._tags[(xb_ip >> 1) & self._set_mask].get(xb_ip)
        if bucket is None:
            return None
        found: Dict[int, Slot] = {}
        for line in bucket:
            order = line.order
            if order >= needed:
                continue
            bank = line.bank
            if not (mask >> bank) & 1:
                continue
            if expected_rev is not None:
                # content check, inlined from _content_ok
                base = order * line_uops
                tup = line.tup
                avail = len(expected_rev) - base
                if avail <= 0:
                    continue
                if avail >= len(tup):
                    if expected_rev[base : base + len(tup)] != tup:
                        continue
                elif tup[:avail] != expected_rev[base : base + avail]:
                    continue
            slot = (bank, line.way)
            cur = found.get(order)
            # Duplicate orders (sibling variants sharing a bank) resolve
            # to the lowest (bank, way), matching the bank/way scan order.
            if cur is None or slot < cur:
                found[order] = slot
        if len(found) < needed:
            return None
        return found

    def _content_ok(self, line: XbcLine, expected_rev: Tuple[int, ...]) -> bool:
        base = line.order * self.line_uops
        tup = line.tup
        avail = len(expected_rev) - base
        if avail <= 0:
            return False
        if avail >= len(tup):
            return expected_rev[base : base + len(tup)] == tup
        return tup[:avail] == expected_rev[base : base + avail]

    def set_search(
        self,
        xb_ip: int,
        offset: int,
        expected_rev: Optional[Sequence[int]] = None,
    ) -> Optional[Tuple[int, Dict[int, Slot]]]:
        """§3.9: search the whole set for a relocated XB.

        Returns ``(repaired_mask, mapping)`` on success.  The repaired
        mask covers exactly the orders the entry needs.
        """
        if expected_rev is not None and type(expected_rev) is not tuple:
            expected_rev = tuple(expected_rev)
        needed = self.orders_for(offset)
        bucket = self._tags[self.index_of(xb_ip)].get(xb_ip)
        if bucket is None:
            return None
        found: Dict[int, Slot] = {}
        for line in bucket:
            order = line.order
            if order >= needed:
                continue
            if expected_rev is not None and not self._content_ok(
                line, expected_rev
            ):
                continue
            slot = (line.bank, line.way)
            cur = found.get(order)
            if cur is None or slot < cur:
                found[order] = slot
        if len(found) < needed:
            return None
        mask = 0
        for bank, _way in found.values():
            mask |= 1 << bank
        return mask, found

    def touch(self, set_idx: int, mapping: Dict[int, Slot]) -> None:
        """LRU-refresh the accessed lines."""
        self._clock += 1
        stamp = self._clock
        set_lines = self._sets[set_idx]
        for bank, way in mapping.values():
            line = set_lines[bank][way]
            if line is not None:
                line.stamp = stamp

    def read_variant(self, xb_ip: int, mask: int) -> Optional[List[int]]:
        """Reconstruct a stored variant's full uops in program order.

        ``None`` when any line of the variant has been evicted (the
        caller drops the stale variant record).
        """
        if mask >> self.banks:
            return None
        by_order: Dict[int, XbcLine] = {}
        for line in self._tags[self.index_of(xb_ip)].get(xb_ip, ()):
            if (mask >> line.bank) & 1:
                if line.order in by_order:
                    return None  # ambiguous mask: treat as stale
                by_order[line.order] = line
        if not by_order or sorted(by_order) != list(range(len(by_order))):
            return None
        reversed_uops: List[int] = []
        for order in range(len(by_order)):
            reversed_uops.extend(by_order[order].uops)
        return reversed_uops[::-1]

    def variant_length(self, xb_ip: int, mask: int) -> Optional[int]:
        """Stored length of a variant, with :meth:`read_variant`'s
        acceptance rules, without materialising the uops."""
        if mask >> self.banks:
            return None
        by_order: Dict[int, int] = {}
        for line in self._tags[self.index_of(xb_ip)].get(xb_ip, ()):
            if (mask >> line.bank) & 1:
                if line.order in by_order:
                    return None  # ambiguous mask: treat as stale
                by_order[line.order] = len(line.uops)
        if not by_order or sorted(by_order) != list(range(len(by_order))):
            return None
        return sum(by_order.values())

    def read_slots(
        self, xb_ip: int, slots: Dict[int, Slot]
    ) -> Optional[List[int]]:
        """Reconstruct a variant from its recorded slots, program order.

        The slot map is the way-select information that makes same-bank
        sibling prefixes unambiguous.  ``None`` when any slot no longer
        holds the expected (tag, order) line.
        """
        if not slots or sorted(slots) != list(range(len(slots))):
            return None
        set_lines = self._sets[self.index_of(xb_ip)]
        reversed_uops: List[int] = []
        for order in range(len(slots)):
            bank, way = slots[order]
            if bank >= self.banks or way >= self.ways:
                return None
            line = set_lines[bank][way]
            if line is None or line.tag != xb_ip or line.order != order:
                return None
            reversed_uops.extend(line.uops)
        return reversed_uops[::-1]

    def locate_lines(
        self, xb_ip: int, lines: List[XbcLine]
    ) -> Optional[Dict[int, Slot]]:
        """Current (bank, way) of each referenced line, by identity.

        Dynamic placement may move lines between banks; identity search
        keeps variant records valid across moves.  ``None`` when any
        referenced line has been evicted from the set.
        """
        found: Dict[int, Slot] = {}
        for line in lines:
            if not line.resident:
                return None
            found[line.order] = (line.bank, line.way)
        if len(found) != len(lines):
            return None
        return found

    def read_lines(self, xb_ip: int, lines: List[XbcLine]) -> Optional[List[int]]:
        """Reconstruct a variant from its line references, program order."""
        if self.locate_lines(xb_ip, lines) is None:
            return None
        reversed_uops: List[int] = []
        for order, line in enumerate(lines):
            if line.tag != xb_ip or line.order != order:
                return None
            reversed_uops.extend(line.uops)
        return reversed_uops[::-1]

    # ------------------------------------------------------------------
    # build paths
    # ------------------------------------------------------------------

    def insert_xb(self, xb_ip: int, uops: Sequence[int], avoid_mask: int = 0) -> Optional[int]:
        """Store a fresh XB; returns its bank mask, or None if unplaceable.

        Smart build placement (§3.10): banks not in *avoid_mask* (the
        previous XB's banks) are preferred so consecutive XBs can be
        fetched in one cycle.
        """
        if not uops:
            raise SimulationError("cannot store an empty XB")
        if len(uops) > self.config.max_xb_uops:
            raise SimulationError(
                f"XB of {len(uops)} uops exceeds {self.config.max_xb_uops}"
            )
        set_idx = self.index_of(xb_ip)
        count = self.orders_for(len(uops))
        # A fresh insert means no live variant references this tag, so any
        # same-tag lines are dead (their XBTB entry or variant records are
        # gone).  Purge them first: they would otherwise make (tag, order)
        # lookups ambiguous within a bank.
        self._purge_tag(set_idx, xb_ip)
        banks = self._choose_banks(set_idx, count, avoid_mask, xb_ip)
        if banks is None:
            self.placement_failures += 1
            return None
        rev = list(uops)[::-1]
        stamp = self._tick()
        mask = 0
        placement: Dict[int, Slot] = {}
        lines: List[XbcLine] = []
        for order, bank in enumerate(banks):
            way = self._make_room(set_idx, bank, xb_ip)
            chunk = rev[order * self.line_uops : (order + 1) * self.line_uops]
            line = XbcLine(xb_ip, order, chunk, stamp)
            self._place(set_idx, bank, way, line)
            mask |= 1 << bank
            placement[order] = (bank, way)
            lines.append(line)
        self.inserts += 1
        self.last_placement = placement
        self.last_lines = lines
        return mask

    def extend_xb(
        self,
        xb_ip: int,
        mask: int,
        old_len: int,
        added: Sequence[int],
        mapping: Optional[Dict[int, Slot]] = None,
    ) -> Optional[int]:
        """§3.3 case 2: extend a stored XB at its head, in place.

        *added* is the new prefix in program order.  Thanks to
        reverse-order storage the existing uops stay put: the partial
        top line is filled and further lines are allocated in banks not
        already used by the XB.  Returns the new mask or ``None`` when
        no distinct bank could be allocated.

        Callers holding the variant's own line mapping MUST pass it:
        a bare mask probe cannot distinguish sibling variants sharing
        banks, and extending the wrong sibling corrupts it.
        """
        new_len = old_len + len(added)
        if new_len > self.config.max_xb_uops:
            raise SimulationError(
                f"extension to {new_len} uops exceeds {self.config.max_xb_uops}"
            )
        set_idx = self.index_of(xb_ip)
        if mapping is None:
            mapping = self.probe(xb_ip, mask, old_len)
        if mapping is None:
            return None
        rev_added = list(added)[::-1]  # distances old_len .. new_len-1
        stamp = self._tick()

        top_order = (old_len - 1) // self.line_uops
        top_bank, top_way = mapping[top_order]
        top_line = self._sets[set_idx][top_bank][top_way]
        free = self.line_uops - len(top_line.uops)
        take = min(free, len(rev_added))
        top_line.uops.extend(rev_added[:take])
        top_line.tup = tuple(top_line.uops)
        top_line.stamp = stamp
        self.version += 1
        self.set_versions[set_idx] += 1
        rest = rev_added[take:]

        placement = dict(mapping)
        lines: List[XbcLine] = [
            self._sets[set_idx][mapping[o][0]][mapping[o][1]]
            for o in range(top_order + 1)
        ]
        new_mask = mask
        order = top_order + 1
        while rest:
            bank = self._choose_banks(set_idx, 1, avoid_mask=new_mask, tag=xb_ip,
                                      hard_exclude=new_mask)
            if bank is None:
                # Roll back is not needed: the filled slots are a valid
                # (shorter) extension; report the achieved length via mask.
                self.placement_failures += 1
                return None
            way = self._make_room(set_idx, bank[0], xb_ip)
            chunk = rest[: self.line_uops]
            rest = rest[self.line_uops :]
            line = XbcLine(xb_ip, order, chunk, stamp)
            self._place(set_idx, bank[0], way, line)
            new_mask |= 1 << bank[0]
            placement[order] = (bank[0], way)
            lines.append(line)
            order += 1
        self.extensions += 1
        self.last_placement = placement
        self.last_lines = lines
        return new_mask

    def add_variant(
        self,
        xb_ip: int,
        full_uops: Sequence[int],
        reuse_mapping: Dict[int, Slot],
        reuse_len: int,
        reuse_mask: int,
    ) -> Optional[int]:
        """§3.3 case 3: store a new prefix sharing full suffix lines.

        *reuse_len* is the shared-suffix length in uops; only its whole
        lines (``reuse_len // line_uops``) are shared — the boundary
        partial, if any, is re-stored inside the new variant's own lines
        (a few uops of controlled redundancy, unavoidable at line
        granularity).  Returns the new variant's mask.
        """
        if len(full_uops) > self.config.max_xb_uops:
            raise SimulationError(
                f"variant of {len(full_uops)} uops exceeds "
                f"{self.config.max_xb_uops}"
            )
        set_idx = self.index_of(xb_ip)
        shared_lines = reuse_len // self.line_uops
        shared_mask = 0
        for order in range(shared_lines):
            if order not in reuse_mapping:
                return None
            bank, _way = reuse_mapping[order]
            shared_mask |= 1 << bank
        rev = list(full_uops)[::-1]
        own_rev = rev[shared_lines * self.line_uops :]
        own_orders = self.orders_for(len(rev)) - shared_lines
        placement = {
            order: reuse_mapping[order] for order in range(shared_lines)
        }
        lines: List[XbcLine] = [
            self._sets[set_idx][reuse_mapping[o][0]][reuse_mapping[o][1]]
            for o in range(shared_lines)
        ]
        if own_orders == 0:
            self.last_placement = placement
            self.last_lines = lines
            return shared_mask

        # Own lines must avoid the shared banks (one line per bank per
        # access) but MAY share a bank with a sibling prefix in the
        # other way — the paper's §3.3 placement hint; the variant's
        # recorded slots disambiguate the ways.
        banks = self._choose_banks(
            set_idx, own_orders, avoid_mask=shared_mask, tag=xb_ip,
            hard_exclude=shared_mask,
        )
        if banks is None:
            self.placement_failures += 1
            return None
        stamp = self._tick()
        mask = shared_mask
        for i, bank in enumerate(banks):
            order = shared_lines + i
            way = self._make_room(set_idx, bank, xb_ip)
            chunk = own_rev[i * self.line_uops : (i + 1) * self.line_uops]
            line = XbcLine(xb_ip, order, chunk, stamp)
            self._place(set_idx, bank, way, line)
            mask |= 1 << bank
            placement[order] = (bank, way)
            lines.append(line)
        self.variants_added += 1
        self.last_placement = placement
        self.last_lines = lines
        return mask

    # ------------------------------------------------------------------
    # placement internals
    # ------------------------------------------------------------------

    def _place(self, set_idx: int, bank: int, way: int, line: XbcLine) -> None:
        """Install *line* at (bank, way) and index it under its tag."""
        self.version += 1
        self.set_versions[set_idx] += 1
        self._sets[set_idx][bank][way] = line
        line.bank = bank
        line.way = way
        line.resident = True
        tags = self._tags[set_idx]
        bucket = tags.get(line.tag)
        if bucket is None:
            tags[line.tag] = [line]
        else:
            bucket.append(line)

    def _remove(self, set_idx: int, line: XbcLine) -> None:
        """Clear *line*'s slot and drop it from the tag directory."""
        self.version += 1
        self.set_versions[set_idx] += 1
        self._sets[set_idx][line.bank][line.way] = None
        line.resident = False
        tags = self._tags[set_idx]
        bucket = tags[line.tag]
        bucket.remove(line)
        if not bucket:
            del tags[line.tag]

    def _purge_tag(self, set_idx: int, tag: int) -> None:
        """Drop every line of *tag* in the set (dead-variant cleanup)."""
        bucket = self._tags[set_idx].get(tag)
        if not bucket:
            return
        for line in list(bucket):
            self._remove(set_idx, line)
            self.evictions += 1

    def _banks_holding_tag(self, set_idx: int, tag: int) -> int:
        mask = 0
        for line in self._tags[set_idx].get(tag, ()):
            mask |= 1 << line.bank
        return mask

    def _choose_banks(
        self,
        set_idx: int,
        count: int,
        avoid_mask: int,
        tag: int,
        hard_exclude: int = 0,
    ) -> Optional[List[int]]:
        """Pick *count* distinct banks for new lines of *tag*.

        Soft preference against *avoid_mask* (bank-conflict avoidance);
        banks in *hard_exclude* (already used by the same XB/variant)
        are never chosen.  Within a bank the eventual victim way must
        not hold a same-tag line, or eviction GC would eat the very XB
        being written.
        """
        candidates: List[Tuple[Tuple[int, int], int]] = []
        set_lines = self._sets[set_idx]
        for bank in range(self.banks):
            if (hard_exclude >> bank) & 1:
                continue
            victim_way = self._victim_way(set_idx, bank, tag)
            if victim_way is None:
                continue
            line = set_lines[bank][victim_way]
            age = -1 if line is None else line.stamp
            penalty = 1 if (avoid_mask >> bank) & 1 else 0
            candidates.append(((penalty, age), bank))
        if len(candidates) < count:
            return None
        candidates.sort()
        return [bank for _score, bank in candidates[:count]]

    def _victim_way(self, set_idx: int, bank: int, tag: int) -> Optional[int]:
        """Way to (re)use in *bank*: an empty way, else the LRU way not
        holding a same-tag line."""
        set_lines = self._sets[set_idx]
        best: Optional[int] = None
        best_stamp = None
        for way in range(self.ways):
            line = set_lines[bank][way]
            if line is None:
                return way
            if line.tag == tag:
                continue
            if best is None or line.stamp < best_stamp:
                best = way
                best_stamp = line.stamp
        return best

    def _make_room(self, set_idx: int, bank: int, tag: int) -> int:
        """Clear (evicting if needed) and return a way in *bank*."""
        way = self._victim_way(set_idx, bank, tag)
        if way is None:
            raise SimulationError(
                f"no victim way in set {set_idx} bank {bank} for tag {tag:#x}"
            )
        line = self._sets[set_idx][bank][way]
        if line is not None:
            self._evict(set_idx, bank, way)
        return way

    def _evict(self, set_idx: int, bank: int, way: int) -> None:
        """Evict a line plus the same-tag higher-order lines it strands."""
        line = self._sets[set_idx][bank][way]
        self._remove(set_idx, line)
        self.evictions += 1
        bucket = self._tags[set_idx].get(line.tag)
        if bucket:
            for other in [o for o in bucket if o.order > line.order]:
                self._remove(set_idx, other)
                self.gc_evictions += 1

    def truncate_tag(self, xb_ip: int, keep_mask: int) -> int:
        """Drop every line of *xb_ip* outside the banks in *keep_mask*.

        Used when a set has no room for a new prefix variant (§3.3
        case 3 under pressure): the shared suffix lines in *keep_mask*
        survive — they serve every variant — while deeper prefix lines
        (of this and sibling variants) are freed so the new prefix can
        be placed.  Returns lines removed.
        """
        set_idx = self.index_of(xb_ip)
        removed = 0
        bucket = self._tags[set_idx].get(xb_ip)
        if bucket:
            for line in list(bucket):
                if (keep_mask >> line.bank) & 1:
                    continue
                self._remove(set_idx, line)
                self.evictions += 1
                removed += 1
        return removed

    def age_variant(self, xb_ip: int, mask: int) -> None:
        """Drop a variant's lines to the bottom of the LRU order.

        Used when promotion copies an XB into a combined XB (§3.8): the
        original location becomes the least valuable copy.
        """
        for line in self._tags[self.index_of(xb_ip)].get(xb_ip, ()):
            if (mask >> line.bank) & 1:
                line.stamp = 0

    # ------------------------------------------------------------------
    # dynamic placement (§3.10)
    # ------------------------------------------------------------------

    def note_deferral(self, xb_ip: int) -> bool:
        """Record one bank-conflict deferral for an XB.

        Returns True when the configured threshold is crossed (the
        counter resets), signalling the frontend to relocate.
        """
        key = (self.index_of(xb_ip), xb_ip)
        count = self._deferrals.get(key, 0) + 1
        if count >= self.config.conflict_move_threshold:
            self._deferrals[key] = 0
            return True
        self._deferrals[key] = count
        return False

    def relocate_line(
        self,
        set_idx: int,
        bank: int,
        way: int,
        forbidden_mask: int,
    ) -> Optional[int]:
        """Move a line to a less-contended bank (swap or move-to-empty).

        The target bank must not be in *forbidden_mask* and its victim
        way must be older than the moving line (the paper's "only if
        its LRU is higher" rule).  Pointer masks referencing the old
        location heal through set search.  Returns the new bank.
        """
        set_lines = self._sets[set_idx]
        line = set_lines[bank][way]
        if line is None:
            return None
        for target_bank in range(self.banks):
            if target_bank == bank or (forbidden_mask >> target_bank) & 1:
                continue
            for target_way in range(self.ways):
                other = set_lines[target_bank][target_way]
                if other is not None and other.tag == line.tag:
                    break  # would create same-tag ambiguity in that bank
                if other is None or other.stamp < line.stamp:
                    self.version += 1
                    self.set_versions[set_idx] += 1
                    set_lines[target_bank][target_way] = line
                    set_lines[bank][way] = other
                    line.bank, line.way = target_bank, target_way
                    if other is not None:
                        other.bank, other.way = bank, way
                    self.relocations += 1
                    return target_bank
        return None

    # ------------------------------------------------------------------
    # audits
    # ------------------------------------------------------------------

    def resident_lines(self) -> List[XbcLine]:
        """Every valid line (tests and audits)."""
        out = []
        for set_lines in self._sets:
            for bank in set_lines:
                for line in bank:
                    if line is not None:
                        out.append(line)
        return out

    def resident_uops(self) -> int:
        """Total uops stored right now."""
        return sum(len(line.uops) for line in self.resident_lines())

    def redundancy(self) -> float:
        """Average copies per distinct resident uop.

        The XBC's design target is 1.0; the only excess comes from
        line-boundary duplicates of complex variants.
        """
        copies: Dict[int, int] = {}
        for line in self.resident_lines():
            for uid in line.uops:
                copies[uid] = copies.get(uid, 0) + 1
        if not copies:
            return 1.0
        return sum(copies.values()) / len(copies)
