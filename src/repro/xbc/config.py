"""XBC configuration.

The §4 baseline geometry: 4 banks of 4-uop lines (16 uops per set, the
maximum fetch width), 2 ways per bank, an 8K-entry XBTB, and two XB
pointers (two branch predictions) per cycle.  Every §3 design feature
the paper discusses is individually switchable for the ablation
benches: branch promotion (§3.8), set search (§3.9), dynamic
conflict-driven placement (§3.10), and the complex-XB versus
split-prefix handling of shared suffixes (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.bitutils import log2_exact
from repro.common.errors import ConfigError


@dataclass(frozen=True)
class XbcConfig:
    """Geometry and policy of the eXtended Block Cache."""

    #: capacity budget in uops (sets × banks × line_uops × ways).
    total_uops: int = 8192
    banks: int = 4
    line_uops: int = 4
    ways_per_bank: int = 2

    #: XBTB geometry (the paper fixes 8K entries).
    xbtb_entries: int = 8192
    xbtb_assoc: int = 8

    #: XB pointers supplied per cycle (= branch predictions per cycle).
    xbs_per_cycle: int = 2

    #: §3.8 branch promotion.
    enable_promotion: bool = True
    #: counter slack before a misbehaving promoted branch is demoted.
    depromotion_slack: int = 16

    #: §3.9 set search on XBTB-hit/XBC-miss (1-cycle repair).
    enable_set_search: bool = True

    #: §3.10 dynamic conflict-driven placement.
    enable_dynamic_placement: bool = True
    #: deferred-fetch count that triggers a relocation.
    conflict_move_threshold: int = 8

    #: §3.3 shared-suffix policy: "complex" (mask-vector complex XBs)
    #: or "split" (store the new prefix as an independent XB).
    overlap_policy: str = "complex"

    #: XRSB depth (return linkage, §3.5).
    xrsb_depth: int = 16

    @property
    def max_xb_uops(self) -> int:
        """Largest storable XB: all banks of one set (16 in the paper)."""
        return self.banks * self.line_uops

    @property
    def set_uops(self) -> int:
        """Uop capacity of one set across all banks and ways."""
        return self.banks * self.line_uops * self.ways_per_bank

    @property
    def num_sets(self) -> int:
        """Number of sets implied by the uop budget."""
        return self.total_uops // self.set_uops

    def validate(self) -> None:
        """Raise :class:`ConfigError` for inconsistent geometry/policy."""
        if self.banks < 1 or self.line_uops < 1 or self.ways_per_bank < 1:
            raise ConfigError("banks, line_uops and ways_per_bank must be >= 1")
        if self.total_uops % self.set_uops:
            raise ConfigError(
                "total_uops must be divisible by banks*line_uops*ways"
            )
        try:
            log2_exact(self.num_sets)
        except ValueError as exc:
            raise ConfigError(f"num_sets must be a power of two: {exc}") from exc
        if self.xbtb_entries % self.xbtb_assoc:
            raise ConfigError("xbtb_entries must be divisible by xbtb_assoc")
        try:
            log2_exact(self.xbtb_entries // self.xbtb_assoc)
        except ValueError as exc:
            raise ConfigError(f"XBTB sets must be a power of two: {exc}") from exc
        if self.xbs_per_cycle < 1:
            raise ConfigError("xbs_per_cycle must be >= 1")
        if self.overlap_policy not in ("complex", "split"):
            raise ConfigError(
                f"unknown overlap_policy {self.overlap_policy!r}; "
                "expected 'complex' or 'split'"
            )
        if self.conflict_move_threshold < 1:
            raise ConfigError("conflict_move_threshold must be >= 1")
        if self.xrsb_depth < 1:
            raise ConfigError("xrsb_depth must be >= 1")
