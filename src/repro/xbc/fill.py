"""The XFU — the XBC's fill unit (§3.3).

When a new XB finishes building, its end-IP tag may match an existing
XB, and the paper's build algorithm distinguishes three cases (plus the
trivial no-match insert):

1. the existing XB *contains* the new one → nothing to store;
2. the new XB contains the existing one → the existing XB is extended
   at its head, in place (the reverse-order payoff);
3. same suffix, different prefix → either a *complex XB* (new prefix
   lines sharing the suffix lines, selected by mask vector) or — the
   alternative the paper describes and rejects for bandwidth — the
   prefix is stored as an independent XB chained to the suffix
   (``overlap_policy="split"``).

The returned pointer is what the previous XB's XBTB entry records: it
locates this occurrence's entry point (mask + OFFSET).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.frontend.metrics import FrontendStats
from repro.isa.instruction import InstrKind
from repro.isa.uop import uop_uid_ip
from repro.xbc.config import XbcConfig
from repro.xbc.pointer import XbPointer
from repro.xbc.storage import XbcStorage
from repro.xbc.xbtb import Xbtb, XbtbEntry, XbVariant


def common_suffix_len(a: Sequence[int], b: Sequence[int]) -> int:
    """Length of the longest common suffix of two uop sequences."""
    n = 0
    limit = min(len(a), len(b))
    while n < limit and a[len(a) - 1 - n] == b[len(b) - 1 - n]:
        n += 1
    return n


class XbcFillUnit:
    """Builds XBs into the storage array and registers their variants."""

    def __init__(
        self,
        config: XbcConfig,
        storage: XbcStorage,
        xbtb: Xbtb,
        stats: FrontendStats,
    ) -> None:
        self.config = config
        self.storage = storage
        self.xbtb = xbtb
        self.stats = stats

    def install(
        self,
        xb_ip: int,
        end_kind: Optional[InstrKind],
        uops: Sequence[int],
        avoid_mask: int = 0,
        _depth: int = 0,
    ) -> Tuple[XbtbEntry, Optional[XbPointer]]:
        """Install one built XB occurrence.

        Returns the XB's XBTB entry and a pointer locating this
        occurrence's entry point (``None`` when placement failed — the
        occurrence stays IC-served until rebuilt).
        """
        entry = self.xbtb.get_or_create(xb_ip, end_kind)
        offset = len(uops)
        uops = list(uops)

        # Classify against live variants.
        containing: Optional[XbVariant] = None
        extendable: Optional[Tuple[XbVariant, List[int]]] = None
        best_overlap: Optional[Tuple[XbVariant, List[int], int]] = None
        alive: List[XbVariant] = []
        for variant in entry.variants:
            stored = variant.read(self.storage, xb_ip)
            if stored is None or len(stored) < variant.length:
                continue  # stale record: storage evicted part of it
            alive.append(variant)
            sfx = common_suffix_len(stored, uops)
            if sfx == offset:
                if containing is None:
                    containing = variant
            elif sfx == len(stored):
                if extendable is None or len(stored) > len(extendable[1]):
                    extendable = (variant, stored)
            elif sfx > 0:
                if best_overlap is None or sfx > best_overlap[2]:
                    best_overlap = (variant, stored, sfx)
        entry.variants = alive

        if containing is not None:
            # Case 1: already stored; only the XBTB needs the pointer.
            self.stats.bump("xfu_case1_contained")
            return entry, XbPointer(xb_ip, containing.mask, offset)

        if extendable is not None:
            variant, stored = extendable
            added = uops[: offset - len(stored)]
            new_mask = self.storage.extend_xb(
                xb_ip, variant.mask, len(stored), added,
                mapping=variant.locate(self.storage, xb_ip),
            )
            if new_mask is not None:
                variant.mask = new_mask
                variant.length = offset
                variant.lines = list(self.storage.last_lines)
                self.stats.bump("xfu_case2_extended")
                return entry, XbPointer(xb_ip, new_mask, offset)
            # Extension could not claim a bank; fall through to storing
            # the occurrence as a sibling variant sharing the suffix.
            best_overlap = (variant, stored, len(stored))

        if best_overlap is not None:
            variant, stored, sfx = best_overlap
            if self.config.overlap_policy == "split" and _depth == 0:
                return entry, self._install_split(
                    entry, uops, variant, sfx, avoid_mask
                )
            mapping = variant.locate(self.storage, xb_ip)
            if mapping is not None:
                mask = self.storage.add_variant(
                    xb_ip, uops, mapping, reuse_len=sfx,
                    reuse_mask=variant.mask,
                )
                if mask is None:
                    mask = self._truncate_and_retry(
                        entry, xb_ip, uops, mapping, sfx
                    )
                if mask is not None:
                    entry.variants.append(XbVariant(
                        mask, offset, self.storage.last_lines
                    ))
                    self.stats.bump("xfu_case3_complex")
                    return entry, XbPointer(xb_ip, mask, offset)
            self.stats.bump("xfu_unplaced")
            return entry, None

        # Case 0: no live copy at all — fresh insert.
        mask = self.storage.insert_xb(xb_ip, uops, avoid_mask)
        if mask is None:
            self.stats.bump("xfu_unplaced")
            return entry, None
        entry.variants = [XbVariant(mask, offset, self.storage.last_lines)]
        self.stats.bump("xfu_fresh_inserts")
        return entry, XbPointer(xb_ip, mask, offset)

    # ------------------------------------------------------------------

    def _truncate_and_retry(
        self,
        entry: XbtbEntry,
        xb_ip: int,
        uops: List[int],
        mapping,
        sfx: int,
    ) -> Optional[int]:
        """Free same-tag banks beyond the shared suffix and retry.

        A prefix variant can be unplaceable when the tag's other lines
        (deep prefixes of this or sibling variants) occupy the banks it
        needs.  Hardware must evict something; we keep exactly the
        shared suffix lines — which every surviving entry offset <=
        *sfx* still uses — and drop the rest, then retry the placement.
        Pointers into the dropped prefixes heal via set search or a
        rebuild.
        """
        line_uops = self.config.line_uops
        shared_lines = sfx // line_uops
        keep_mask = 0
        for order in range(shared_lines):
            if order not in mapping:
                return None
            keep_mask |= 1 << mapping[order][0]
        self.storage.truncate_tag(xb_ip, keep_mask)
        self.stats.bump("xfu_truncations")
        # Every recorded variant now extends at most to the kept lines.
        kept_len = shared_lines * line_uops
        set_idx = self.storage.index_of(xb_ip)
        kept_lines = [
            self.storage._sets[set_idx][mapping[o][0]][mapping[o][1]]
            for o in range(shared_lines)
        ]
        entry.variants = (
            [XbVariant(keep_mask, kept_len, kept_lines)]
            if shared_lines else []
        )
        if shared_lines == 0:
            # Nothing shared survived: store the occurrence whole.
            return self.storage.insert_xb(xb_ip, uops)
        return self.storage.add_variant(
            xb_ip, uops, mapping, reuse_len=sfx, reuse_mask=keep_mask
        )

    def _install_split(
        self,
        entry: XbtbEntry,
        uops: List[int],
        suffix_variant: XbVariant,
        sfx: int,
        avoid_mask: int,
    ) -> Optional[XbPointer]:
        """§3.3 alternative: store the differing prefix as its own XB.

        The prefix ends with the instruction just before the shared
        suffix (typically an unconditional jump); its XBTB entry chains
        to the suffix entry point via the fall-through pointer.  The
        paper notes the cost: two short fetch units instead of one long
        one, and an extra XBTB entry.
        """
        prefix = uops[: len(uops) - sfx]
        if not prefix:
            self.stats.bump("xfu_unplaced")
            return None
        prefix_ip = uop_uid_ip(prefix[-1])
        prefix_entry, prefix_ptr = self.install(
            prefix_ip, None, prefix, avoid_mask, _depth=1
        )
        if prefix_ptr is None:
            self.stats.bump("xfu_unplaced")
            return None
        prefix_entry.nt_ptr = XbPointer(
            entry.xb_ip, suffix_variant.mask, sfx
        )
        self.stats.bump("xfu_case3_split")
        return prefix_ptr
