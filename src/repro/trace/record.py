"""Dynamic trace records.

A trace is a dynamic instruction stream.  Since the columnar rewrite it
is stored as parallel packed-integer columns (``array('q')``/``'b'``),
one entry per dynamic instruction:

- ``ips`` — instruction address;
- ``takens`` — 1 when the branch was taken, else 0;
- ``next_ips`` — address control actually went to next;
- ``kinds`` — integer kind code (see :data:`repro.isa.instruction.KIND_CODE`);
- ``nuops`` — uops the decoder produces for the instruction;
- ``snexts`` — static fall-through address (``ip + size``).

The frontends iterate these columns directly; the classic
object-per-record view (:class:`DynInstr` — the layout the paper's own
trace-driven simulator consumes) is materialized lazily via
:attr:`Trace.records` and kept only for tests, debugging and the text
trace format.  ``instr_table`` maps each static ip to its
:class:`~repro.isa.instruction.Instruction`, which is all the view (and
the occasional cold-path lookup, e.g. BTB targets) needs.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, NamedTuple, Optional

from repro.isa.instruction import Instruction, KIND_CODE


class DynInstr(NamedTuple):
    """One dynamically executed instruction (legacy per-record view)."""

    instr: Instruction
    taken: bool
    next_ip: int

    @property
    def ip(self) -> int:
        """Address of the executed instruction."""
        return self.instr.ip

    @property
    def num_uops(self) -> int:
        """Uops this instruction contributes to the stream."""
        return self.instr.num_uops


class Trace:
    """A dynamic instruction stream plus its provenance metadata.

    Two construction paths:

    - ``Trace(records, ...)`` — legacy: a list of :class:`DynInstr`.
      Columns are derived from it and the given list *is* the records
      view, so hand-built test traces round-trip exactly.
    - :meth:`Trace.from_columns` — the fast path the executor and the
      binary trace codec use; the records view is rebuilt lazily from
      ``instr_table`` only if something asks for it.
    """

    def __init__(
        self,
        records: Optional[List[DynInstr]] = None,
        name: str = "",
        suite: str = "",
        seed: int = 0,
    ) -> None:
        self.name = name
        self.suite = suite
        self.seed = seed
        #: scratch space for derived, memoized structures (e.g. the XB
        #: step stream); never serialized, dropped on pickling.
        self._derived: Dict[object, object] = {}
        records = list(records) if records is not None else []
        self._records: Optional[List[DynInstr]] = records
        self._build_columns(records)

    # -- construction ----------------------------------------------------------

    def _build_columns(self, records: Iterable[DynInstr]) -> None:
        ips = array("q")
        takens = array("b")
        next_ips = array("q")
        kinds = array("b")
        nuops = array("b")
        snexts = array("q")
        instr_table: Dict[int, Instruction] = {}
        kind_code = KIND_CODE
        for record in records:
            instr = record.instr
            ips.append(instr.ip)
            takens.append(1 if record.taken else 0)
            next_ips.append(record.next_ip)
            kinds.append(kind_code[instr.kind])
            nuops.append(instr.num_uops)
            snexts.append(instr.next_ip)
            instr_table[instr.ip] = instr
        self.ips = ips
        self.takens = takens
        self.next_ips = next_ips
        self.kinds = kinds
        self.nuops = nuops
        self.snexts = snexts
        self.instr_table = instr_table

    @classmethod
    def from_columns(
        cls,
        ips: array,
        takens: array,
        next_ips: array,
        kinds: array,
        nuops: array,
        snexts: array,
        instr_table: Dict[int, Instruction],
        name: str = "",
        suite: str = "",
        seed: int = 0,
    ) -> "Trace":
        """Build a trace directly from its columns (no record objects)."""
        trace = cls.__new__(cls)
        trace.name = name
        trace.suite = suite
        trace.seed = seed
        trace._derived = {}
        trace._records = None
        trace.ips = ips
        trace.takens = takens
        trace.next_ips = next_ips
        trace.kinds = kinds
        trace.nuops = nuops
        trace.snexts = snexts
        trace.instr_table = instr_table
        return trace

    # -- legacy record view ----------------------------------------------------

    @property
    def records(self) -> List[DynInstr]:
        """The per-record :class:`DynInstr` view (materialized lazily)."""
        view = self._records
        if view is None:
            table = self.instr_table
            view = [
                DynInstr(instr=table[ip], taken=bool(taken), next_ip=nxt)
                for ip, taken, nxt in zip(self.ips, self.takens, self.next_ips)
            ]
            self._records = view
        return view

    def __len__(self) -> int:
        return len(self.ips)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    # -- hot-path view ---------------------------------------------------------

    def hot_columns(self):
        """The six columns as plain lists, memoized on :attr:`_derived`.

        ``array('q')`` subscripting boxes a fresh ``int`` per access;
        a ``list`` holds the already-boxed objects, which is what the
        flat frontend loops index millions of times.  Costs one extra
        in-memory copy of the columns per trace — acceptable because
        traces are bounded by the experiment uop budget.

        Returns ``(ips, takens, next_ips, kinds, nuops, snexts)``.
        """
        cols = self._derived.get("hot_columns")
        if cols is None:
            cols = (
                list(self.ips),
                list(self.takens),
                list(self.next_ips),
                list(self.kinds),
                list(self.nuops),
                list(self.snexts),
            )
            self._derived["hot_columns"] = cols
        return cols

    # -- summary ---------------------------------------------------------------

    @property
    def total_uops(self) -> int:
        """Total uops in the stream (the unit the paper reports in)."""
        return sum(self.nuops)

    @property
    def dynamic_instructions(self) -> int:
        """Total dynamic instruction count."""
        return len(self.ips)

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        return (
            f"trace {self.name or '?'} (suite={self.suite or '?'}): "
            f"{self.dynamic_instructions} instructions, "
            f"{self.total_uops} uops"
        )

    def content_hash(self) -> str:
        """Stable hex digest of the dynamic stream (all six columns).

        Two traces with the same hash executed the same instructions
        with the same outcomes in the same order, which is the replay
        identity the fuzz findings corpus records and re-checks.
        """
        import hashlib

        digest = hashlib.sha256()
        for column in (
            self.ips, self.takens, self.next_ips,
            self.kinds, self.nuops, self.snexts,
        ):
            digest.update(column.tobytes())
        return digest.hexdigest()[:32]

    # -- pickling --------------------------------------------------------------

    def __getstate__(self):
        # Drop memoized/derived state: workers and caches only need the
        # columns plus the static instruction table.
        return {
            "name": self.name,
            "suite": self.suite,
            "seed": self.seed,
            "ips": self.ips,
            "takens": self.takens,
            "next_ips": self.next_ips,
            "kinds": self.kinds,
            "nuops": self.nuops,
            "snexts": self.snexts,
            "instr_table": self.instr_table,
        }

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._derived = {}
        self._records = None
