"""Dynamic trace records.

A trace is a list of :class:`DynInstr` records, each pairing a static
:class:`~repro.isa.instruction.Instruction` with its dynamic outcome:
whether a branch was taken and the address control actually went to
next.  That is the entire interface the frontend simulators need — the
same record layout the paper's own trace-driven simulator consumes.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.isa.instruction import Instruction


class DynInstr(NamedTuple):
    """One dynamically executed instruction."""

    instr: Instruction
    taken: bool
    next_ip: int

    @property
    def ip(self) -> int:
        """Address of the executed instruction."""
        return self.instr.ip

    @property
    def num_uops(self) -> int:
        """Uops this instruction contributes to the stream."""
        return self.instr.num_uops


class Trace:
    """A dynamic instruction stream plus its provenance metadata."""

    def __init__(
        self,
        records: List[DynInstr],
        name: str = "",
        suite: str = "",
        seed: int = 0,
    ) -> None:
        self.records = records
        self.name = name
        self.suite = suite
        self.seed = seed

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    @property
    def total_uops(self) -> int:
        """Total uops in the stream (the unit the paper reports in)."""
        return sum(r.instr.num_uops for r in self.records)

    @property
    def dynamic_instructions(self) -> int:
        """Total dynamic instruction count."""
        return len(self.records)

    def describe(self) -> str:
        """One-line summary used by the CLI and examples."""
        return (
            f"trace {self.name or '?'} (suite={self.suite or '?'}): "
            f"{self.dynamic_instructions} instructions, "
            f"{self.total_uops} uops"
        )
