"""Block-length statistics — the data behind the paper's Figure 1.

Figure 1 plots the length distribution (in uops, capped at 16) of four
instruction-block definitions:

- **basic block** — ends on *any* branch;
- **XB** — ends on a conditional branch, indirect branch, return or
  call; unconditional direct jumps do **not** end it (§3.1);
- **XB with promotion** — like XB, but conditional branches that are
  ≥99% biased (measured over the trace itself, mirroring the 7-bit
  promotion counters of §3.8) also do not end a block;
- **dual XB** — two consecutive XBs fetched as one unit.

All four respect the 16-uop quota: a block that would exceed 16 uops is
cut and the next block starts at the first instruction that did not
fit.  Instructions are atomic — their uops never split across blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Tuple

from repro.common.histogram import Histogram
from repro.isa.instruction import (
    CODE_CALL,
    CODE_COND_BRANCH,
    KIND_ENDS_BB,
    KIND_ENDS_XB,
    InstrKind,
)
from repro.trace.record import DynInstr, Trace

#: The quota every block definition respects (uops).
QUOTA = 16

#: Bias above which a conditional branch is considered monotonic
#: (the paper's 7-bit counter saturates at >= 99.2%).
PROMOTION_BIAS = 0.99

#: Executions below which a branch is never considered monotonic
#: (a branch seen twice is not "99% biased" in any meaningful sense).
PROMOTION_MIN_EXECUTIONS = 16


@dataclass
class BlockLengthStats:
    """The four Figure-1 distributions plus their means."""

    basic_block: Histogram = field(default_factory=Histogram)
    xb: Histogram = field(default_factory=Histogram)
    xb_promoted: Histogram = field(default_factory=Histogram)
    dual_xb: Histogram = field(default_factory=Histogram)

    def means(self) -> Dict[str, float]:
        """Mean block length per series, keyed like the paper's legend."""
        return {
            "basic block": self.basic_block.mean,
            "XB": self.xb.mean,
            "XB w/ promotion": self.xb_promoted.mean,
            "dual XB": self.dual_xb.mean,
        }

    def merged_with(self, other: "BlockLengthStats") -> "BlockLengthStats":
        """Combine two traces' statistics."""
        return BlockLengthStats(
            basic_block=self.basic_block.merged_with(other.basic_block),
            xb=self.xb.merged_with(other.xb),
            xb_promoted=self.xb_promoted.merged_with(other.xb_promoted),
            dual_xb=self.dual_xb.merged_with(other.dual_xb),
        )


def measure_branch_bias(records: Iterable[DynInstr]) -> Dict[int, float]:
    """Per-static-conditional-branch taken rate over the trace."""
    taken: Dict[int, int] = {}
    total: Dict[int, int] = {}
    for record in records:
        if record.instr.kind is InstrKind.COND_BRANCH:
            ip = record.instr.ip
            total[ip] = total.get(ip, 0) + 1
            if record.taken:
                taken[ip] = taken.get(ip, 0) + 1
    return {
        ip: taken.get(ip, 0) / count for ip, count in total.items()
    }


def monotonic_branches(
    bias: Dict[int, float],
    counts: Dict[int, int],
    threshold: float = PROMOTION_BIAS,
    min_executions: int = PROMOTION_MIN_EXECUTIONS,
) -> Dict[int, bool]:
    """Which static branches qualify for promotion under *threshold*."""
    result = {}
    for ip, rate in bias.items():
        seen_enough = counts.get(ip, 0) >= min_executions
        result[ip] = seen_enough and (rate >= threshold or rate <= 1 - threshold)
    return result


def _execution_counts(records: Iterable[DynInstr]) -> Dict[int, int]:
    counts: Dict[int, int] = {}
    for record in records:
        if record.instr.kind is InstrKind.COND_BRANCH:
            ip = record.instr.ip
            counts[ip] = counts.get(ip, 0) + 1
    return counts


class _BlockAccumulator:
    """Streams instructions into quota-limited blocks for one definition.

    Closed block lengths go to *histogram* and, when *lengths* is given,
    are also appended there in stream order (used for dual-XB pairing).
    """

    def __init__(self, histogram: Histogram, lengths=None):
        self.histogram = histogram
        self.lengths = lengths
        self._length = 0

    def _close(self) -> None:
        self.histogram.add(self._length)
        if self.lengths is not None:
            self.lengths.append(self._length)
        self._length = 0

    def feed(self, num_uops: int, ends_block: bool) -> None:
        if self._length + num_uops > QUOTA:
            # Quota cut: the current block closes *before* this instruction.
            self._close()
        self._length += num_uops
        if ends_block or self._length == QUOTA:
            self._close()

    def flush(self) -> None:
        if self._length:
            self._close()


def compute_block_stats(
    trace: Trace,
    promotion_threshold: float = PROMOTION_BIAS,
) -> BlockLengthStats:
    """Compute all four Figure-1 distributions for one trace.

    Runs two passes: the first measures per-branch bias (standing in for
    the promotion counters warmed over the run), the second accumulates
    the block-length histograms.
    """
    ips = trace.ips
    takens = trace.takens
    kinds = trace.kinds
    nuops = trace.nuops

    # Pass 1: per-branch taken rates and execution counts, off the columns.
    taken_counts: Dict[int, int] = {}
    counts: Dict[int, int] = {}
    for i in range(len(ips)):
        if kinds[i] == CODE_COND_BRANCH:
            ip = ips[i]
            counts[ip] = counts.get(ip, 0) + 1
            if takens[i]:
                taken_counts[ip] = taken_counts.get(ip, 0) + 1
    bias = {
        ip: taken_counts.get(ip, 0) / count for ip, count in counts.items()
    }
    promoted = monotonic_branches(bias, counts, promotion_threshold)

    stats = BlockLengthStats()
    xb_lengths: list = []
    bb = _BlockAccumulator(stats.basic_block)
    xb = _BlockAccumulator(stats.xb, lengths=xb_lengths)
    xbp = _BlockAccumulator(stats.xb_promoted)

    for i in range(len(ips)):
        code = kinds[i]
        uops = nuops[i]
        bb.feed(uops, ends_block=KIND_ENDS_BB[code])

        ends_xb = KIND_ENDS_XB[code] or code == CODE_CALL
        xb.feed(uops, ends_block=ends_xb)

        ends_promoted = ends_xb
        if code == CODE_COND_BRANCH and promoted.get(ips[i], False):
            ends_promoted = False
        xbp.feed(uops, ends_block=ends_promoted)

    bb.flush()
    xb.flush()
    xbp.flush()

    # Dual XB: consecutive non-overlapping XB pairs, capped at the quota
    # (a 16-uop fetch window delivers at most 16 uops of a pair).
    for first, second in zip(xb_lengths[0::2], xb_lengths[1::2]):
        stats.dual_xb.add(min(QUOTA, first + second))
    if len(xb_lengths) % 2:
        stats.dual_xb.add(xb_lengths[-1])

    return stats
